//! The `aaa-audit` binary: run the full static-analysis pass over the
//! workspace.
//!
//! ```text
//! cargo run -p aaa-audit                     # audit; exit 1 on findings,
//!                                            # exit 2 on stale allowlist
//! cargo run -p aaa-audit -- --fix-allowlist  # snapshot today's findings
//!                                            # as intentional exceptions
//! cargo run -p aaa-audit -- --fix-pub-api    # regenerate the aaa-mom
//!                                            # public-API baseline
//! cargo run -p aaa-audit -- --root <dir>     # audit another tree
//! cargo run -p aaa-audit -- --metrics        # also print the Prometheus
//!                                            # rendering of the findings
//! cargo run -p aaa-audit -- --sarif out.sarif # write SARIF 2.1.0 for CI
//!                                             # diff annotation
//! cargo run -p aaa-audit -- --no-cache       # bypass the per-file result
//!                                            # cache under target/
//! cargo run -p aaa-audit -- --no-parallel    # single-threaded per-file
//!                                            # pass (byte-identical output)
//! cargo run -p aaa-audit -- --diff REF       # incremental: per-file rules
//!                                            # only on files changed vs REF
//! cargo run -p aaa-audit -- --explain RULE   # print the long-form doc
//!                                            # for one rule (or `all`)
//! ```

use std::collections::BTreeSet;
use std::io;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

use aaa_audit::{
    audit_workspace_opts, fix_allowlist, fix_pub_api, record_model_states, rules, sarif,
    AuditOptions, Config,
};
use aaa_obs::{Meter, Registry};

fn usage() -> ! {
    eprintln!(
        "usage: aaa-audit [--root DIR] [--fix-allowlist] [--fix-pub-api] [--metrics] \
         [--sarif FILE] [--no-cache] [--no-parallel] [--diff REF] [--quiet] \
         [--explain RULE|all]\n\
         exit codes: 0 clean, 1 findings, 2 stale allowlist, 3 usage/io error"
    );
    std::process::exit(3)
}

/// Workspace-relative `.rs` paths changed against `git_ref` (the `--diff`
/// scope), straight from `git diff --name-only`.
fn changed_files(root: &Path, git_ref: &str) -> io::Result<BTreeSet<String>> {
    let out = std::process::Command::new("git")
        .arg("-C")
        .arg(root)
        .args(["diff", "--name-only", git_ref])
        .output()?;
    if !out.status.success() {
        return Err(io::Error::other(format!(
            "git diff --name-only {git_ref}: {}",
            String::from_utf8_lossy(&out.stderr).trim()
        )));
    }
    Ok(String::from_utf8_lossy(&out.stdout)
        .lines()
        .map(str::trim)
        .filter(|l| l.ends_with(".rs"))
        .map(str::to_owned)
        .collect())
}

/// `--explain RULE`: print the long-form doc for one rule, or every rule
/// when `RULE` is `all`. The same text ships as SARIF `help` so CI
/// annotations and the CLI agree.
fn explain(rule: &str) -> ExitCode {
    if rule == "all" {
        for (i, r) in rules::ALL_RULES.iter().enumerate() {
            if i > 0 {
                println!();
            }
            println!("{r}\n{}", rules::explain(r));
        }
        return ExitCode::SUCCESS;
    }
    if rules::ALL_RULES.contains(&rule) {
        println!("{}", rules::explain(rule));
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "aaa-audit: unknown rule `{rule}` — known rules: {}",
            rules::ALL_RULES.join(", ")
        );
        ExitCode::from(3)
    }
}

fn workspace_root(explicit: Option<PathBuf>) -> PathBuf {
    if let Some(r) = explicit {
        return r;
    }
    // When run via `cargo run -p aaa-audit`, the manifest dir is
    // `<root>/crates/audit`.
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(|p| p.parent())
        .map(|p| p.to_path_buf())
        .unwrap_or_else(|| PathBuf::from("."))
}

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut fix = false;
    let mut fix_api = false;
    let mut metrics = false;
    let mut quiet = false;
    let mut use_cache = true;
    let mut parallel = true;
    let mut diff_ref: Option<String> = None;
    let mut sarif_out: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => usage(),
            },
            "--fix-allowlist" => fix = true,
            "--fix-pub-api" => fix_api = true,
            "--metrics" => metrics = true,
            "--sarif" => match args.next() {
                Some(path) => sarif_out = Some(PathBuf::from(path)),
                None => usage(),
            },
            "--no-cache" => use_cache = false,
            "--no-parallel" => parallel = false,
            "--diff" => match args.next() {
                Some(r) => diff_ref = Some(r),
                None => usage(),
            },
            "--quiet" | "-q" => quiet = true,
            "--explain" => match args.next() {
                Some(rule) => return explain(&rule),
                None => usage(),
            },
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }
    let root = workspace_root(root);
    let config = Config::for_aaa_workspace();

    if fix_api {
        return match fix_pub_api(&root, &config) {
            Ok(n) => {
                println!("{} regenerated: {n} pub item(s)", config.api_golden);
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("aaa-audit: {e}");
                ExitCode::from(3)
            }
        };
    }

    if fix {
        return match fix_allowlist(&root, &config) {
            Ok(report) => {
                println!(
                    "allowlist refreshed: {} intentional exception(s) across {} rule(s)",
                    report.suppressed_allowlist.len(),
                    report
                        .suppressed_allowlist
                        .iter()
                        .map(|f| f.rule)
                        .collect::<std::collections::BTreeSet<_>>()
                        .len()
                );
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("aaa-audit: {e}");
                ExitCode::from(3)
            }
        };
    }

    let mut opts = AuditOptions {
        use_cache,
        parallel,
        diff_files: None,
    };
    if let Some(r) = &diff_ref {
        match changed_files(&root, r) {
            Ok(set) => {
                if !quiet {
                    eprintln!("aaa-audit: --diff {r}: {} changed .rs file(s)", set.len());
                }
                opts.diff_files = Some(set);
            }
            Err(e) => {
                eprintln!("aaa-audit: {e}");
                return ExitCode::from(3);
            }
        }
    }

    let report = match audit_workspace_opts(&root, &config, &opts) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("aaa-audit: {e}");
            return ExitCode::from(3);
        }
    };

    // Export findings through the observability layer. The wall-time and
    // model-coverage gauges only render under `--metrics` — the model
    // runs cost a few seconds and the timings are inherently unstable, so
    // the default (quiet, deterministic) path skips both.
    let registry = Registry::new();
    let meter = Meter::new(&registry);
    report.record_metrics(&meter);
    if metrics {
        report.record_timings(&meter);
        record_model_states(&meter);
    }

    // SARIF export happens before the exit-code decision so CI can upload
    // the artifact even when the job fails on findings.
    if let Some(path) = &sarif_out {
        if let Err(e) = std::fs::write(path, sarif::render(&report.findings)) {
            eprintln!("aaa-audit: writing {}: {e}", path.display());
            return ExitCode::from(3);
        }
    }

    for f in &report.findings {
        println!("{f}");
    }
    for e in &report.stale_allowlist {
        println!("stale allowlist entry (no matching finding): {e}");
    }
    if !quiet {
        let per_rule = report.per_rule();
        eprintln!(
            "aaa-audit: scanned {} files — {} finding(s), {} allowlisted, {} inline-allowed, \
             {} stale allowlist entr(ies)",
            report.files_scanned,
            report.findings.len(),
            report.suppressed_allowlist.len(),
            report.suppressed_inline.len(),
            report.stale_allowlist.len(),
        );
        for rule in rules::ALL_RULES {
            let active = per_rule.get(rule).copied().unwrap_or(0);
            let allowed = report
                .suppressed_allowlist
                .iter()
                .filter(|f| f.rule == *rule)
                .count();
            eprintln!("  {rule:<18} active {active:>3}   allowlisted {allowed:>3}");
        }
    }
    if metrics {
        print!("{}", registry.snapshot().render_prometheus());
    }

    if !report.findings.is_empty() {
        ExitCode::from(1)
    } else if !report.stale_allowlist.is_empty() {
        ExitCode::from(2)
    } else {
        ExitCode::SUCCESS
    }
}
