//! Token-tree and function-span analysis over the total [lexer](crate::lexer).
//!
//! PR 3's rules were token-window scanners; the dataflow rules added here
//! (stamp-flow, block-in-step, error-swallow's `#[must_use]` leg) need
//! *structure*: which function a token lives in, who owns that function
//! (`impl` block), what it returns, and which other functions it calls.
//! This module builds exactly that — and nothing more — on top of the
//! comment-stripped token stream:
//!
//! - a tolerant brace/bracket/paren **delimiter tree** ([`delim_tree`]),
//!   never panicking on unbalanced byte soup (see `tests/tree_props.rs`);
//! - **function spans** ([`fn_spans`]): every `fn name` with its body
//!   token range, enclosing `impl` owner, return-type tokens and
//!   test-gating;
//! - **call sites** ([`calls_in`]) and an intra-workspace, simple-name
//!   **call graph** ([`CallGraph`]) with forward/backward reachability.
//!
//! The call graph is deliberately name-based (no type resolution — the
//! vendor tree is offline, `syn` is unavailable). Rules built on it err
//! toward *fewer* false positives: a name collision merges nodes, which
//! only ever widens the set of functions considered "covered".

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use crate::lexer::{Tok, TokKind};
use crate::source::{match_brace, SourceFile};

/// A delimiter class tracked by the tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Delim {
    /// `( ... )`
    Paren,
    /// `[ ... ]`
    Bracket,
    /// `{ ... }`
    Brace,
}

impl Delim {
    fn open(c: char) -> Option<Delim> {
        match c {
            '(' => Some(Delim::Paren),
            '[' => Some(Delim::Bracket),
            '{' => Some(Delim::Brace),
            _ => None,
        }
    }

    fn close(c: char) -> Option<Delim> {
        match c {
            ')' => Some(Delim::Paren),
            ']' => Some(Delim::Bracket),
            '}' => Some(Delim::Brace),
            _ => None,
        }
    }
}

/// One node of the delimiter tree.
#[derive(Debug, Clone)]
pub struct Node {
    /// Which delimiter pair this group uses.
    pub delim: Delim,
    /// Token index of the opening delimiter.
    pub open: usize,
    /// Token index of the closing delimiter; `None` when the group is
    /// unterminated (runs to end of file).
    pub close: Option<usize>,
    /// Nested groups, in source order.
    pub children: Vec<Node>,
}

/// Builds a brace-matched tree over `toks`.
///
/// Total and tolerant: a closer that does not match the innermost open
/// group closes every intervening group (treating them as unterminated at
/// that point only if no matching opener exists on the stack — a stray
/// closer with no opener is ignored). Unclosed groups at end of input get
/// `close: None`. Never panics, for any token stream.
pub fn delim_tree(toks: &[Tok]) -> Vec<Node> {
    // Stack of open groups; each frame owns its already-finished children.
    let mut stack: Vec<Node> = Vec::new();
    let mut roots: Vec<Node> = Vec::new();
    let finish = |stack: &mut Vec<Node>, roots: &mut Vec<Node>, mut node: Node| {
        node.children.shrink_to_fit();
        match stack.last_mut() {
            Some(parent) => parent.children.push(node),
            None => roots.push(node),
        }
    };
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Punct {
            continue;
        }
        let Some(c) = t.text.chars().next() else {
            continue;
        };
        if let Some(d) = Delim::open(c) {
            stack.push(Node {
                delim: d,
                open: i,
                close: None,
                children: Vec::new(),
            });
        } else if let Some(d) = Delim::close(c) {
            // Only unwind if a matching opener is somewhere on the stack;
            // otherwise this closer is stray and ignored.
            if stack.iter().any(|n| n.delim == d) {
                while let Some(mut top) = stack.pop() {
                    let matched = top.delim == d;
                    if matched {
                        top.close = Some(i);
                    }
                    finish(&mut stack, &mut roots, top);
                    if matched {
                        break;
                    }
                }
            }
        }
    }
    while let Some(top) = stack.pop() {
        finish(&mut stack, &mut roots, top);
    }
    roots
}

/// Given `toks[open]` == `(`, returns the index of the matching `)`.
pub fn match_paren(toks: &[Tok], open: usize) -> Option<usize> {
    let mut depth = 0i32;
    for (j, t) in toks.iter().enumerate().skip(open) {
        if t.is_punct('(') {
            depth += 1;
        } else if t.is_punct(')') {
            depth -= 1;
            if depth == 0 {
                return Some(j);
            }
        }
    }
    None
}

/// Counts the comma-separated arguments between `toks[open]` == `(` and
/// its matching `)`. Returns `None` when the paren is unterminated.
/// An empty argument list counts as 0.
pub fn arg_count(toks: &[Tok], open: usize) -> Option<usize> {
    let close = match_paren(toks, open)?;
    if close == open + 1 {
        return Some(0);
    }
    let mut commas = 0usize;
    let (mut p, mut b, mut br) = (0i32, 0i32, 0i32);
    for t in &toks[open + 1..close] {
        if t.is_punct('(') {
            p += 1;
        } else if t.is_punct(')') {
            p -= 1;
        } else if t.is_punct('[') {
            b += 1;
        } else if t.is_punct(']') {
            b -= 1;
        } else if t.is_punct('{') {
            br += 1;
        } else if t.is_punct('}') {
            br -= 1;
        } else if t.is_punct(',') && p == 0 && b == 0 && br == 0 {
            commas += 1;
        }
    }
    Some(commas + 1)
}

/// One `fn` item found in a file.
#[derive(Debug, Clone)]
pub struct FnSpan {
    /// The function's simple name.
    pub name: String,
    /// Type name of the enclosing `impl` block, when there is one.
    pub owner: Option<String>,
    /// Token index of the `fn` keyword.
    pub fn_tok: usize,
    /// Token range of the body including both braces: `[start, end)`,
    /// `toks[start]` == `{`. `None` for bodyless declarations
    /// (`fn f(..);` in traits).
    pub body: Option<(usize, usize)>,
    /// Return-type tokens (text between `->` and the body/`;`), joined
    /// with single spaces. Empty for `()`-returning functions.
    pub ret: String,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// `true` when the span lies inside test-gated code.
    pub is_test: bool,
}

impl FnSpan {
    /// `true` when the declared return type mentions `Result`.
    pub fn returns_result(&self) -> bool {
        self.ret.split_whitespace().any(|w| w == "Result")
    }

    /// `true` when `tok` lies inside this span's body.
    pub fn contains(&self, tok: usize) -> bool {
        self.body.map(|(s, e)| s <= tok && tok < e).unwrap_or(false)
    }
}

/// Keywords that introduce control flow / items, never call sites.
const NON_CALL_KEYWORDS: &[&str] = &[
    "if", "else", "while", "for", "loop", "match", "return", "break", "continue", "fn", "impl",
    "let", "const", "static", "mod", "use", "pub", "in", "as", "ref", "mut", "move", "where",
    "struct", "enum", "trait", "type", "unsafe", "extern", "dyn",
];

/// Extracts every `fn` span in `file`, with `impl` owners.
///
/// Nested functions get their own spans (the outer span still covers
/// them); closures do not — their tokens belong to the enclosing `fn`,
/// which is exactly what the dataflow rules want.
pub fn fn_spans(file: &SourceFile) -> Vec<FnSpan> {
    let toks = &file.toks;
    let mut spans = Vec::new();
    // Stack of (impl owner name, close index of the impl's brace).
    let mut owners: Vec<(String, usize)> = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        while let Some(&(_, close)) = owners.last() {
            if i > close {
                owners.pop();
            } else {
                break;
            }
        }
        let t = &toks[i];
        if t.is_ident("impl") {
            if let Some((owner, body_open)) = impl_owner(toks, i) {
                if let Some(close) = match_brace(toks, body_open) {
                    owners.push((owner, close));
                }
                // Continue scanning *inside* the impl body for fns.
                i = body_open + 1;
                continue;
            }
        }
        if t.is_ident("fn") && i + 1 < toks.len() && toks[i + 1].kind == TokKind::Ident {
            let name = toks[i + 1].text.clone();
            // Scan the signature to the body `{` or a terminating `;`,
            // collecting return-type tokens after `->`.
            let mut j = i + 2;
            let mut ret_toks: Vec<&str> = Vec::new();
            let mut in_ret = false;
            let mut angle = 0i32; // `<...>` depth inside the signature
            let mut paren = 0i32;
            let body_open = loop {
                if j >= toks.len() {
                    break None;
                }
                let s = &toks[j];
                if s.is_punct('(') {
                    paren += 1;
                } else if s.is_punct(')') {
                    paren -= 1;
                } else if s.is_punct('<') {
                    angle += 1;
                } else if s.is_punct('>') {
                    // `->` is lexed as `-` then `>`: don't count the arrow
                    // head as a closing angle.
                    if j > 0 && toks[j - 1].is_punct('-') {
                        in_ret = true;
                    } else {
                        angle -= 1;
                    }
                } else if s.is_punct('{') && paren == 0 && angle <= 0 {
                    break Some(j);
                } else if s.is_punct(';') && paren == 0 {
                    break None;
                } else if in_ret && s.kind != TokKind::Comment {
                    // `where` ends the return type.
                    if s.is_ident("where") {
                        in_ret = false;
                    } else {
                        ret_toks.push(&s.text);
                    }
                }
                j += 1;
            };
            let body = body_open.map(|open| {
                let close = match_brace(toks, open).unwrap_or(toks.len().saturating_sub(1));
                (open, close + 1)
            });
            spans.push(FnSpan {
                name,
                owner: owners.last().map(|(o, _)| o.clone()),
                fn_tok: i,
                body,
                ret: ret_toks.join(" "),
                line: t.line,
                is_test: file.test_mask.get(i).copied().unwrap_or(false),
            });
            // Keep scanning from just after the signature so nested fns
            // are discovered too.
            i = j.saturating_add(1).max(i + 2);
            continue;
        }
        i += 1;
    }
    spans
}

/// Parses an `impl` header starting at `toks[at]` == `impl`; returns the
/// implemented type's simple name and the index of the body `{`.
fn impl_owner(toks: &[Tok], at: usize) -> Option<(String, usize)> {
    let mut j = at + 1;
    // Skip the generic parameter list `impl<...>`.
    if toks.get(j).map(|t| t.is_punct('<')).unwrap_or(false) {
        let mut depth = 0i32;
        while j < toks.len() {
            if toks[j].is_punct('<') {
                depth += 1;
            } else if toks[j].is_punct('>') {
                depth -= 1;
                if depth == 0 {
                    j += 1;
                    break;
                }
            }
            j += 1;
        }
    }
    // Collect header idents up to `{`; `for` switches to the self type
    // (`impl Trait for Type`).
    let mut first: Option<String> = None;
    let mut after_for: Option<String> = None;
    let mut saw_for = false;
    while j < toks.len() {
        let t = &toks[j];
        if t.is_punct('{') {
            let owner = if saw_for { after_for } else { first };
            return owner.map(|o| (o, j));
        }
        if t.is_punct(';') {
            return None; // `impl Trait for Type;` — nothing to own
        }
        if t.is_ident("for") {
            saw_for = true;
        } else if t.kind == TokKind::Ident && !t.is_ident("where") && !t.is_ident("dyn") {
            if saw_for {
                after_for.get_or_insert_with(|| t.text.clone());
            } else {
                first.get_or_insert_with(|| t.text.clone());
            }
        }
        j += 1;
    }
    None
}

/// The innermost function span containing token index `tok`.
pub fn enclosing_fn(spans: &[FnSpan], tok: usize) -> Option<&FnSpan> {
    spans
        .iter()
        .filter(|s| s.contains(tok))
        .min_by_key(|s| s.body.map(|(st, en)| en - st).unwrap_or(usize::MAX))
}

/// One call site inside a function body.
#[derive(Debug, Clone)]
pub struct Call {
    /// Simple name of the callee.
    pub name: String,
    /// Token index of the callee identifier.
    pub tok: usize,
    /// Token index of the `(` opening the argument list.
    pub open: usize,
    /// 1-based source line.
    pub line: u32,
    /// `true` for `.name(...)` method-call syntax.
    pub is_method: bool,
}

/// Extracts call sites in the half-open token range `[start, end)`:
/// `name(...)` and `.name(...)`, excluding keywords, macro invocations
/// (`name!(...)`) and `fn` definitions.
pub fn calls_in(file: &SourceFile, start: usize, end: usize) -> Vec<Call> {
    let toks = &file.toks;
    let end = end.min(toks.len());
    let mut out = Vec::new();
    for i in start..end {
        let t = &toks[i];
        if t.kind != TokKind::Ident || NON_CALL_KEYWORDS.contains(&t.text.as_str()) {
            continue;
        }
        // Next non-turbofish token must open the argument list.
        let mut j = i + 1;
        // `name::<T>(...)` — skip the turbofish.
        if j + 1 < end && toks[j].is_punct(':') && toks[j + 1].is_punct(':') {
            if j + 2 < end && toks[j + 2].is_punct('<') {
                let mut depth = 0i32;
                let mut k = j + 2;
                while k < end {
                    if toks[k].is_punct('<') {
                        depth += 1;
                    } else if toks[k].is_punct('>') {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    k += 1;
                }
                j = k + 1;
            } else {
                continue; // `path::segment` — the *last* segment will match
            }
        }
        if j >= end || !toks[j].is_punct('(') {
            continue;
        }
        if i > 0 && (toks[i - 1].is_punct('!') || toks[i - 1].is_ident("fn")) {
            continue;
        }
        if i + 1 < toks.len() && toks[i + 1].is_punct('!') {
            continue; // macro
        }
        out.push(Call {
            name: t.text.clone(),
            tok: i,
            open: j,
            line: t.line,
            is_method: i > 0 && toks[i - 1].is_punct('.'),
        });
    }
    out
}

/// An intra-workspace call graph over simple function names.
#[derive(Debug, Default)]
pub struct CallGraph {
    /// callee names by caller name.
    pub callees: BTreeMap<String, BTreeSet<String>>,
    /// caller names by callee name.
    pub callers: BTreeMap<String, BTreeSet<String>>,
    /// Names with at least one *non-test* `fn` definition in the graph's
    /// file set, mapped to whether **every** such definition returns
    /// `Result` (used by the error-swallow `#[must_use]` leg).
    pub always_result: BTreeMap<String, bool>,
}

impl CallGraph {
    /// Builds the graph from every non-test `fn` span in `files`.
    pub fn build<'a>(files: impl IntoIterator<Item = &'a SourceFile>) -> CallGraph {
        let mut g = CallGraph::default();
        for file in files {
            let spans = fn_spans(file);
            for s in &spans {
                if s.is_test {
                    continue;
                }
                let entry = g.always_result.entry(s.name.clone()).or_insert(true);
                *entry = *entry && s.returns_result();
                let Some((bs, be)) = s.body else { continue };
                // Attribute calls to the innermost span only, so a nested
                // fn's calls are not double-counted for the outer fn.
                for c in calls_in(file, bs + 1, be.saturating_sub(1)) {
                    let inner = enclosing_fn(&spans, c.tok);
                    let owner_name = inner.map(|f| f.name.as_str()).unwrap_or(&s.name);
                    if owner_name != s.name {
                        continue;
                    }
                    g.callees
                        .entry(s.name.clone())
                        .or_default()
                        .insert(c.name.clone());
                    g.callers.entry(c.name).or_default().insert(s.name.clone());
                }
            }
        }
        g
    }

    /// Fixpoint: the set of function names that (transitively, through
    /// their callees) reach any of `seeds` — including functions that
    /// *are* seeds themselves when defined or called in the graph.
    pub fn reaching(&self, seeds: &[&str]) -> BTreeSet<String> {
        self.reaching_excluding(seeds, &[])
    }

    /// [`CallGraph::reaching`] with *barrier* names: reachability does not
    /// propagate through any name in `blocked` — its callers are not added
    /// on its account and it never enters the result set.
    ///
    /// The stamp-flow rule needs this to stop the name-merged graph from
    /// laundering coverage through the send methods themselves: without
    /// the barrier, `fn f { ep.send(..) }` would count as "stamping"
    /// whenever *some* workspace function named `send` reaches a stamping
    /// seed, making every raw send site self-covering.
    pub fn reaching_excluding(&self, seeds: &[&str], blocked: &[&str]) -> BTreeSet<String> {
        let mut set: BTreeSet<String> = seeds
            .iter()
            .filter(|s| !blocked.contains(s))
            .map(|s| (*s).to_owned())
            .collect();
        let mut queue: VecDeque<String> = set.iter().cloned().collect();
        while let Some(name) = queue.pop_front() {
            if let Some(callers) = self.callers.get(&name) {
                for c in callers {
                    if blocked.iter().any(|b| b == c) {
                        continue;
                    }
                    if set.insert(c.clone()) {
                        queue.push_back(c.clone());
                    }
                }
            }
        }
        set
    }

    /// Forward reachability: every function name reachable from `seeds`
    /// through callee edges (seeds included).
    pub fn reachable_from(&self, seeds: &[&str]) -> BTreeSet<String> {
        let mut set: BTreeSet<String> = seeds.iter().map(|s| (*s).to_owned()).collect();
        let mut queue: VecDeque<String> = set.iter().cloned().collect();
        while let Some(name) = queue.pop_front() {
            if let Some(callees) = self.callees.get(&name) {
                for c in callees {
                    if set.insert(c.clone()) {
                        queue.push_back(c.clone());
                    }
                }
            }
        }
        set
    }

    /// Transitive *callers* of `name` (not including `name` itself unless
    /// it calls itself).
    pub fn transitive_callers(&self, name: &str) -> BTreeSet<String> {
        let mut set = BTreeSet::new();
        let mut queue: VecDeque<&str> = VecDeque::new();
        queue.push_back(name);
        while let Some(n) = queue.pop_front() {
            if let Some(callers) = self.callers.get(n) {
                for c in callers {
                    if set.insert(c.clone()) {
                        queue.push_back(c.as_str());
                    }
                }
            }
        }
        set
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(src: &str) -> SourceFile {
        SourceFile::parse("crates/net/src/x.rs", src)
    }

    #[test]
    fn delim_tree_nests_and_tolerates_soup() {
        let f = file("fn a() { b(c[0]); }");
        let roots = delim_tree(&f.toks);
        // `()` of the signature and `{}` of the body at top level.
        assert_eq!(roots.len(), 2);
        assert_eq!(roots[0].delim, Delim::Paren);
        assert_eq!(roots[1].delim, Delim::Brace);
        assert_eq!(roots[1].children.len(), 1); // b(...)
        assert_eq!(roots[1].children[0].children.len(), 1); // c[...]

        // Unbalanced input: never panics, unclosed groups flagged.
        let f = file("{ ( ] }");
        let roots = delim_tree(&f.toks);
        assert_eq!(roots.len(), 1);
        assert!(roots[0].close.is_some());
        assert!(roots[0].children.iter().any(|c| c.close.is_none()));
    }

    #[test]
    fn fn_spans_finds_owner_ret_and_test_gate() {
        let src = "\
impl Codec for Encoder {
    fn stamp(&mut self) -> Result<(), Error> { self.u8(1); }
}
fn free() { }
#[cfg(test)]
mod tests { fn t() -> Result<u8, ()> { Ok(1) } }
";
        let f = file(src);
        let spans = fn_spans(&f);
        assert_eq!(spans.len(), 3);
        assert_eq!(spans[0].name, "stamp");
        assert_eq!(spans[0].owner.as_deref(), Some("Encoder"));
        assert!(spans[0].returns_result());
        assert!(!spans[0].is_test);
        assert_eq!(spans[1].name, "free");
        assert_eq!(spans[1].owner, None);
        assert!(!spans[1].returns_result());
        assert_eq!(spans[2].name, "t");
        assert!(spans[2].is_test);
    }

    #[test]
    fn fn_spans_handles_generics_and_where() {
        let src = "fn g<T: Into<Vec<u8>>>(x: T) -> Option<T> where T: Clone { x.into() }";
        let f = file(src);
        let spans = fn_spans(&f);
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].name, "g");
        assert!(spans[0].ret.contains("Option"));
        assert!(!spans[0].ret.contains("Clone"));
        assert!(spans[0].body.is_some());
    }

    #[test]
    fn calls_in_skips_macros_keywords_and_defs() {
        let src = "fn f() { g(); h.i(j); println!(\"x\"); if (a) { } let k = m::n(); }";
        let f = file(src);
        let spans = fn_spans(&f);
        let (s, e) = spans[0].body.unwrap();
        let names: Vec<String> = calls_in(&f, s, e).into_iter().map(|c| c.name).collect();
        assert_eq!(names, vec!["g", "i", "n"]);
    }

    #[test]
    fn call_graph_reaches_through_layers() {
        let src = "\
fn stamp_send() { }
fn take_batched(&mut self) { self.clock.stamp_send(); }
fn flush(&mut self) { let ts = self.take_batched(); }
fn other(&self) { }
";
        let f = file(src);
        let g = CallGraph::build([&f]);
        let s = g.reaching(&["stamp_send"]);
        assert!(s.contains("take_batched"));
        assert!(s.contains("flush"));
        assert!(!s.contains("other"));
        let fwd = g.reachable_from(&["flush"]);
        assert!(fwd.contains("stamp_send"));
        assert!(g.transitive_callers("stamp_send").contains("flush"));
    }

    #[test]
    fn arg_count_counts_top_level_commas() {
        let f = file("f(a, g(b, c), [d, e]) g() h(x)");
        let toks = &f.toks;
        let opens: Vec<usize> = toks
            .iter()
            .enumerate()
            .filter(|(i, t)| t.is_punct('(') && *i > 0 && toks[i - 1].kind == TokKind::Ident)
            .map(|(i, _)| i)
            .collect();
        let counts: Vec<Option<usize>> = opens.iter().map(|&o| arg_count(toks, o)).collect();
        assert_eq!(counts[0], Some(3));
        // inner g(b, c)
        assert_eq!(counts[1], Some(2));
        assert_eq!(counts[2], Some(0));
        assert_eq!(counts[3], Some(1));
    }

    #[test]
    fn enclosing_fn_prefers_innermost() {
        let src = "fn outer() { fn inner() { leaf(); } }";
        let f = file(src);
        let spans = fn_spans(&f);
        assert_eq!(spans.len(), 2);
        let call = calls_in(&f, 0, f.toks.len())
            .into_iter()
            .find(|c| c.name == "leaf")
            .unwrap();
        assert_eq!(enclosing_fn(&spans, call.tok).unwrap().name, "inner");
    }
}
