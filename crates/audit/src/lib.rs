#![warn(missing_docs)]
#![forbid(unsafe_code)]

//! `aaa-audit` — the workspace's static-analysis pass and
//! protocol-invariant auditor.
//!
//! The paper's guarantee (local causal delivery in every domain plus an
//! acyclic domain graph implies global causal delivery, §4.3) is enforced
//! by *code discipline* as much as by the protocol: a panic on a hot path
//! aborts a half-committed channel transaction, a wall-clock read inside
//! the deterministic simulator makes replay diverge, and a wire-enum
//! variant handled in `encode` but not `decode` silently breaks
//! cross-version exactly-once delivery. This crate walks every workspace
//! source file with a tiny self-contained Rust [lexer] (no `syn`; the
//! vendor tree is offline) and enforces a growing rule set, including:
//!
//! | rule id | guards |
//! |---|---|
//! | `panic-freedom` | no `unwrap`/`expect`/`panic!`-family/indexing-by-literal in non-test code of `net`, `mom`, `clocks`, `storage`, bench drivers and examples |
//! | `determinism` | no `Instant`/`SystemTime`/`thread_rng` in `sim` and `clocks` |
//! | `match-drift` | every wire-enum variant appears in both its serializer and deserializer |
//! | `metric-drift` | the `aaa_*` metric vocabulary in code, README table and Prometheus golden file agree |
//! | `lock-order` | the interprocedural lock-acquisition graph across `mom`/`net`/`obs`/`storage` is a DAG |
//! | `guard-across-blocking` | no `Mutex`/`RwLock` guard *live* (real spans, guards returned by helpers included) across a blocking primitive, channel `recv` or transport `send*` |
//! | `atomic-protocol` | gate-shaped atomics use Acquire/Release+; `Relaxed` only on counters; `SeqCst` carries a why-comment |
//!
//! Intentional exceptions live in per-rule allowlist files
//! (`crates/audit/allow/<rule>.allow`, refreshed with
//! `cargo run -p aaa-audit -- --fix-allowlist`) or inline as
//! `// audit:allow(rule)` on (or directly above) the offending line.
//! Active findings are counted into the observability layer as
//! `aaa_audit_findings_total{rule=...}`.

pub mod allowlist;
pub mod cache;
pub mod guards;
pub mod interleave;
pub mod lexer;
pub mod rules;
pub mod sarif;
pub mod source;
pub mod tree;

use std::collections::{BTreeMap, BTreeSet};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

use aaa_obs::Meter;

use allowlist::Allowlist;
use source::SourceFile;

/// One diagnostic produced by a rule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule identifier (`panic-freedom`, `determinism`, ...).
    pub rule: &'static str,
    /// Path relative to the workspace root.
    pub file: String,
    /// 1-based line number.
    pub line: u32,
    /// Human-readable description of the violation.
    pub message: String,
    /// The trimmed source line the finding points at (the allowlist key).
    pub line_text: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// A wire enum whose serializer/deserializer pair must cover every
/// variant (the `match-drift` rule).
#[derive(Debug, Clone)]
pub struct EnumPair {
    /// The enum's type name (e.g. `Stamp`).
    pub enum_name: &'static str,
    /// Workspace-relative path of the file defining the enum.
    pub def: &'static str,
    /// `(file, fn name)` of the serializer side.
    pub encode: (&'static str, &'static str),
    /// `(file, fn name)` of the deserializer side.
    pub decode: (&'static str, &'static str),
}

/// What the auditor checks and where.
#[derive(Debug, Clone)]
pub struct Config {
    /// Path prefixes subject to the `panic-freedom` rule.
    pub panic_scopes: Vec<&'static str>,
    /// Path prefixes subject to the `determinism` rule.
    pub determinism_scopes: Vec<&'static str>,
    /// Path prefixes subject to the concurrency rules (`lock-order`,
    /// `guard-across-blocking`): the crates whose locks interleave at
    /// runtime.
    pub concurrency_scopes: Vec<&'static str>,
    /// Function names considered blocking while a guard is live
    /// (`guard-across-blocking`): primitives, channel receives and
    /// transport sends.
    pub guard_blocking: Vec<&'static str>,
    /// Path prefixes subject to the `atomic-protocol` rule.
    pub atomic_scopes: Vec<&'static str>,
    /// Wire enums whose codec pairs must not drift.
    pub enum_pairs: Vec<EnumPair>,
    /// Workspace-relative path of the README holding the metric table.
    pub readme: &'static str,
    /// Workspace-relative paths of Prometheus golden files.
    pub golden: Vec<&'static str>,
    /// Workspace-relative directory holding `<rule>.allow` files.
    pub allow_dir: &'static str,
    /// Path prefixes where raw transport sends must be stamp-dominated
    /// (`stamp-flow`); deliberately excludes `aaa-net`, which *is* the
    /// transport.
    pub stamp_scopes: Vec<&'static str>,
    /// Function names that perform causal stamping (`stamp-flow` seeds).
    pub stamp_seeds: Vec<&'static str>,
    /// Path prefixes subject to `wire-cast-truncation` (codec/wire code).
    pub cast_scopes: Vec<&'static str>,
    /// Path prefixes subject to `clock-overflow`.
    pub clock_scopes: Vec<&'static str>,
    /// Field names holding clock state (`clock-overflow` targets).
    pub clock_cells: Vec<&'static str>,
    /// Path prefixes subject to `error-swallow`.
    pub swallow_scopes: Vec<&'static str>,
    /// Path prefixes forming the batched server step's deterministic core
    /// (`block-in-step` call-graph scope). Excludes transport endpoints
    /// and the runtime thread shell, which own their blocking.
    pub step_scopes: Vec<&'static str>,
    /// Step entry-point function names (`block-in-step` seeds).
    pub step_entries: Vec<&'static str>,
    /// Function names considered blocking inside the step.
    pub step_blocking: Vec<&'static str>,
    /// Path prefix whose `pub` items are pinned by `pub-api-drift`.
    pub api_scope: &'static str,
    /// Workspace-relative path of the public-API baseline file.
    pub api_golden: &'static str,
    /// Workspace-relative path of the evented runtime file whose
    /// shared-memory access set the `model-drift` rule checks against
    /// [`interleave::COVERED_ACCESSES`].
    pub model_file: &'static str,
    /// Entry-point function names from which `model-drift` computes the
    /// modeled window (forward reachability, stopping at `drop`).
    pub model_entries: Vec<&'static str>,
    /// Path prefixes subject to `persist-before-deliver`.
    pub persist_scopes: Vec<&'static str>,
    /// Function names that constitute a stable-store write
    /// (`persist-before-deliver` seeds).
    pub persist_seeds: Vec<&'static str>,
}

impl Config {
    /// The rule set codified for this workspace.
    pub fn for_aaa_workspace() -> Config {
        Config {
            panic_scopes: vec![
                "crates/net/src/",
                "crates/mom/src/",
                "crates/clocks/src/",
                "crates/storage/src/",
                // Bench drivers and examples feed BENCH_*.json and the
                // README walkthroughs; a panicking bench is a silent
                // perf-trajectory hole.
                "src/bin/",
                "examples/",
            ],
            determinism_scopes: vec!["crates/sim/src/", "crates/clocks/src/"],
            concurrency_scopes: vec![
                "crates/mom/src/",
                "crates/net/src/",
                "crates/obs/src/",
                "crates/storage/src/",
            ],
            guard_blocking: vec![
                "sleep",
                "recv",
                "recv_timeout",
                "park",
                "wait",
                "wait_timeout",
                "block_on",
                "accept",
                "send",
                "send_batch",
                "send_to",
                "write_all",
                "connect",
                "connect_timeout",
            ],
            atomic_scopes: vec![
                "crates/mom/src/",
                "crates/net/src/",
                "crates/obs/src/",
                "crates/storage/src/",
            ],
            enum_pairs: vec![
                EnumPair {
                    enum_name: "Stamp",
                    def: "crates/clocks/src/stamp.rs",
                    encode: ("crates/net/src/wire.rs", "stamp"),
                    decode: ("crates/net/src/wire.rs", "stamp_tagged"),
                },
                EnumPair {
                    enum_name: "Datagram",
                    def: "crates/net/src/link.rs",
                    encode: ("crates/net/src/link.rs", "encode"),
                    decode: ("crates/net/src/link.rs", "decode"),
                },
                EnumPair {
                    enum_name: "DeliveryPolicy",
                    def: "crates/mom/src/message.rs",
                    encode: ("crates/mom/src/persist.rs", "encode_envelope"),
                    decode: ("crates/mom/src/persist.rs", "decode_envelope"),
                },
            ],
            readme: "README.md",
            golden: vec!["tests/golden/metrics.prom"],
            allow_dir: "crates/audit/allow",
            stamp_scopes: vec!["crates/mom/src/", "crates/sim/src/"],
            stamp_seeds: vec!["stamp_send"],
            cast_scopes: vec![
                "crates/net/src/",
                "crates/clocks/src/matrix.rs",
                "crates/clocks/src/protocol.rs",
                "crates/clocks/src/engine.rs",
                "crates/clocks/src/engines.rs",
                "crates/clocks/src/vector.rs",
                "crates/mom/src/persist.rs",
                "crates/mom/src/pubsub.rs",
                "crates/storage/src/file.rs",
                "src/bin/",
                "examples/",
            ],
            clock_scopes: vec!["crates/clocks/src/"],
            clock_cells: vec![
                "cells",
                "deliv",
                "counts",
                "state",
                "now",
                "delivered",
                "sent",
            ],
            swallow_scopes: vec![
                "crates/net/src/",
                "crates/mom/src/",
                "crates/clocks/src/",
                "crates/storage/src/",
            ],
            step_scopes: vec![
                "crates/mom/src/server.rs",
                "crates/mom/src/channel.rs",
                "crates/mom/src/engine.rs",
                "crates/mom/src/persist.rs",
                "crates/mom/src/pubsub.rs",
                "crates/mom/src/agent.rs",
                // The evented runtime's shard loop and the shared server
                // driver: one blocking call here stalls a whole shard —
                // every server multiplexed onto that worker, not just one.
                "crates/mom/src/runtime/driver.rs",
                "crates/mom/src/runtime/evented.rs",
                "crates/net/src/link.rs",
                "crates/net/src/wire.rs",
                "crates/clocks/src/",
                "crates/storage/src/",
            ],
            step_entries: vec![
                "on_datagram",
                "on_datagram_batch",
                "on_tick",
                "client_send_with",
                "client_send_batch",
                "flush_links",
                "run_ready_server",
            ],
            step_blocking: vec![
                "sleep",
                "recv",
                "recv_timeout",
                "park",
                "wait",
                "wait_timeout",
                "block_on",
                "accept",
                "read_line",
                "read_to_end",
            ],
            api_scope: "crates/mom/src/",
            api_golden: "crates/mom/PUBLIC_API.txt",
            model_file: "crates/mom/src/runtime/evented.rs",
            model_entries: vec![
                "run_ready_server",
                "schedule",
                "worker",
                "timer",
                "send_cmd",
            ],
            // The relay's durable queues put `crates/storage/src/` on the
            // redelivery path: queue mutations there must persist through
            // the segment writer (`append_record`) just as mom-side
            // deliveries must reach `put`/group-commit.
            persist_scopes: vec!["crates/mom/src/", "crates/storage/src/"],
            persist_seeds: vec!["put", "append_record"],
        }
    }
}

/// A loaded workspace: every `.rs` file under `crates/*/src` and the root
/// package's `src/`, lexed and annotated.
#[derive(Debug)]
pub struct Workspace {
    /// Workspace root directory.
    pub root: PathBuf,
    /// Parsed source files, sorted by relative path.
    pub files: Vec<SourceFile>,
}

impl Workspace {
    /// Reads and lexes the workspace rooted at `root`.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors; unreadable UTF-8 files are skipped.
    pub fn load(root: &Path) -> io::Result<Workspace> {
        let mut rels: Vec<PathBuf> = Vec::new();
        let crates_dir = root.join("crates");
        if crates_dir.is_dir() {
            for entry in fs::read_dir(&crates_dir)? {
                let entry = entry?;
                let src = entry.path().join("src");
                if src.is_dir() {
                    collect_rs(&src, &mut rels)?;
                }
            }
        }
        let root_src = root.join("src");
        if root_src.is_dir() {
            collect_rs(&root_src, &mut rels)?;
        }
        let examples = root.join("examples");
        if examples.is_dir() {
            collect_rs(&examples, &mut rels)?;
        }
        let mut files = Vec::with_capacity(rels.len());
        for path in rels {
            let Ok(text) = fs::read_to_string(&path) else {
                continue; // non-UTF-8 or vanished; nothing for a lexer here
            };
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            files.push(SourceFile::parse(rel, text));
        }
        files.sort_by(|a, b| a.rel.cmp(&b.rel));
        Ok(Workspace {
            root: root.to_path_buf(),
            files,
        })
    }

    /// Looks up a file by workspace-relative path.
    pub fn file(&self, rel: &str) -> Option<&SourceFile> {
        self.files.iter().find(|f| f.rel == rel)
    }
}

impl Workspace {
    /// Builds a workspace from in-memory files (tests / synthetic trees).
    pub fn from_files(files: Vec<(String, String)>) -> Workspace {
        let mut parsed: Vec<SourceFile> = files
            .into_iter()
            .map(|(rel, text)| SourceFile::parse(rel, text))
            .collect();
        parsed.sort_by(|a, b| a.rel.cmp(&b.rel));
        Workspace {
            root: PathBuf::new(),
            files: parsed,
        }
    }
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name == "vendor" || name.starts_with('.') {
                continue;
            }
            collect_rs(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// The result of one full audit pass.
#[derive(Debug)]
pub struct AuditReport {
    /// Findings still active after inline escapes and the allowlist.
    pub findings: Vec<Finding>,
    /// Findings suppressed by `// audit:allow(rule)` comments.
    pub suppressed_inline: Vec<Finding>,
    /// Findings suppressed by allowlist entries.
    pub suppressed_allowlist: Vec<Finding>,
    /// Allowlist entries that matched nothing (stale; CI fails on these).
    pub stale_allowlist: Vec<allowlist::AllowEntry>,
    /// Number of source files scanned.
    pub files_scanned: usize,
    /// Wall time per audit phase in milliseconds (`load`, `per-file`,
    /// `global`, `suppress`). Empty when the report was assembled without
    /// the timed driver ([`apply_suppressions`] directly).
    pub timings: Vec<(&'static str, u64)>,
}

impl AuditReport {
    /// Active findings for `rule`.
    pub fn count(&self, rule: &str) -> usize {
        self.findings.iter().filter(|f| f.rule == rule).count()
    }

    /// Active finding counts per rule (only rules with findings appear).
    pub fn per_rule(&self) -> BTreeMap<&'static str, usize> {
        let mut map = BTreeMap::new();
        for f in &self.findings {
            *map.entry(f.rule).or_insert(0) += 1;
        }
        map
    }

    /// Records active finding counts into the observability layer as
    /// `aaa_audit_findings_total{rule=...}` — every rule gets a sample,
    /// so a clean pass exports explicit zeros.
    pub fn record_metrics(&self, meter: &Meter) {
        let per_rule = self.per_rule();
        for rule in rules::ALL_RULES {
            let c = meter.counter_with(
                "aaa_audit_findings_total",
                "Static-analysis findings by audit rule",
                &[("rule", (*rule).to_owned())],
            );
            c.add(per_rule.get(rule).copied().unwrap_or(0) as u64);
        }
    }

    /// `true` when the tree is clean: no active findings and no stale
    /// allowlist entries.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty() && self.stale_allowlist.is_empty()
    }

    /// Records phase wall times as `aaa_audit_elapsed_ms{phase=...}`.
    ///
    /// Deliberately separate from [`record_metrics`](Self::record_metrics):
    /// finding counts are deterministic and byte-stable across runs (the
    /// test suite pins that), wall times are not — mixing them would make
    /// every `--metrics` rendering unique.
    pub fn record_timings(&self, meter: &Meter) {
        for (phase, ms) in &self.timings {
            let g = meter.gauge_with(
                "aaa_audit_elapsed_ms",
                "Audit pass wall time by phase (milliseconds)",
                &[("phase", (*phase).to_owned())],
            );
            g.set(i64::try_from(*ms).unwrap_or(i64::MAX));
        }
    }
}

/// Runs the bounded model checks at CI shape and exports the explored
/// state-set sizes as `aaa_audit_model_states_explored{model=...}` — the
/// coverage denominator of the PR 8/9 interleaving proofs, visible to
/// the same dashboards that watch the finding counts.
pub fn record_model_states(meter: &Meter) {
    use aaa_clocks::StampMode;
    let mut runs: Vec<(&str, usize)> = Vec::new();
    let slot = interleave::SlotModel {
        cfg: interleave::SlotConfig::ci(),
    };
    runs.push((
        "slot",
        interleave::explore(&slot, interleave::Options::default())
            .map(|e| e.states)
            .unwrap_or(0),
    ));
    for (label, mode) in [
        ("engine-full", StampMode::Full),
        ("engine-updates", StampMode::Updates),
        ("engine-reduced", StampMode::Reduced),
        ("engine-hybrid", StampMode::Hybrid),
    ] {
        let m = interleave::EngineModel {
            cfg: interleave::EngineConfig::ci(mode),
        };
        runs.push((
            label,
            interleave::explore(&m, interleave::Options::default())
                .map(|e| e.states)
                .unwrap_or(0),
        ));
    }
    for (model, states) in runs {
        let g = meter.gauge_with(
            "aaa_audit_model_states_explored",
            "Distinct states explored by the bounded model checks at CI shape",
            &[("model", model.to_owned())],
        );
        g.set(i64::try_from(states).unwrap_or(i64::MAX));
    }
}

/// Runs the *per-file* rules over one file: findings depend only on the
/// file's own content and the config, which is what makes them cacheable
/// (see [`cache`]).
pub fn per_file_rules(file: &SourceFile, config: &Config) -> Vec<Finding> {
    let mut findings = Vec::new();
    if in_scope(&file.rel, &config.panic_scopes) {
        findings.extend(rules::panic_freedom::check(file));
    }
    if in_scope(&file.rel, &config.determinism_scopes) {
        findings.extend(rules::determinism::check(file));
    }
    if in_scope(&file.rel, &config.atomic_scopes) {
        findings.extend(rules::atomic_protocol::check(file));
    }
    if in_scope(&file.rel, &config.cast_scopes) {
        findings.extend(rules::wire_cast::check(file));
    }
    if in_scope(&file.rel, &config.clock_scopes) {
        findings.extend(rules::clock_overflow::check(file, &config.clock_cells));
    }
    if in_scope(&file.rel, &config.swallow_scopes) {
        findings.extend(rules::error_swallow::check(file));
    }
    findings
}

/// Runs the *cross-file* rules: anything needing the whole workspace
/// (enum codec pairs, the metric vocabulary, the call graph). Never
/// cached.
pub fn global_rules(ws: &Workspace, config: &Config) -> Vec<Finding> {
    let mut findings = Vec::new();
    findings.extend(rules::match_drift::check(ws, &config.enum_pairs));
    let readme_text = fs::read_to_string(ws.root.join(config.readme)).unwrap_or_default();
    let golden_texts: Vec<(&'static str, String)> = config
        .golden
        .iter()
        .map(|g| (*g, fs::read_to_string(ws.root.join(g)).unwrap_or_default()))
        .collect();
    findings.extend(rules::metric_drift::check(
        ws,
        config.readme,
        &readme_text,
        &golden_texts,
    ));
    findings.extend(rules::stamp_flow::check(ws, config));
    findings.extend(rules::error_swallow::check_global(ws, config));
    findings.extend(rules::block_in_step::check(ws, config));
    findings.extend(rules::lock_order::check(ws, config));
    findings.extend(rules::guard_across_blocking::check(ws, config));
    findings.extend(rules::model_drift::check(ws, config));
    findings.extend(rules::persist_before_deliver::check(ws, config));
    let api_text = fs::read_to_string(ws.root.join(config.api_golden)).unwrap_or_default();
    findings.extend(rules::pub_api::check(
        ws,
        config.api_scope,
        config.api_golden,
        &api_text,
    ));
    findings
}

/// Sorts findings into the canonical reporting order. The full key
/// (file, line, rule, line text, message) makes the order — and with it
/// every rendered artifact: allowlist, `--metrics`, SARIF — byte-stable
/// across filesystems and runs.
pub fn sort_findings(findings: &mut [Finding]) {
    findings.sort_by(|a, b| {
        (&a.file, a.line, a.rule, &a.line_text, &a.message).cmp(&(
            &b.file,
            b.line,
            b.rule,
            &b.line_text,
            &b.message,
        ))
    });
}

/// How to run the audit pass (cache, parallelism, incremental scope).
#[derive(Debug, Clone)]
pub struct AuditOptions {
    /// Consult and refresh the per-file result cache under `target/`.
    pub use_cache: bool,
    /// Fan the per-file rules out over a thread pool. Findings are
    /// gathered back in file order and pass through the same
    /// [`sort_findings`] full-key sort, so every rendered artifact is
    /// byte-identical to a sequential run.
    pub parallel: bool,
    /// When set (`--diff <ref>`), per-file rules run only over these
    /// workspace-relative paths; global rules still see the whole tree.
    /// Stale-allowlist detection is suppressed — entries for unscanned
    /// files would all look stale.
    pub diff_files: Option<BTreeSet<String>>,
}

impl Default for AuditOptions {
    fn default() -> AuditOptions {
        AuditOptions {
            use_cache: true,
            parallel: true,
            diff_files: None,
        }
    }
}

/// Indices of the files whose per-file rules should run under `opts`.
fn selected_indices(ws: &Workspace, opts: &AuditOptions) -> Vec<usize> {
    ws.files
        .iter()
        .enumerate()
        .filter(|(_, f)| {
            opts.diff_files
                .as_ref()
                .is_none_or(|diff| diff.contains(&f.rel))
        })
        .map(|(i, _)| i)
        .collect()
}

/// Runs [`per_file_rules`] over `indices` of `ws.files`, returning one
/// finding vector per index *in index order* regardless of execution
/// order. The parallel path is a work-stealing index counter over a
/// scoped thread pool — no extra dependencies, no locks on the hot path,
/// and a deterministic scatter at the end.
fn per_file_pass(
    ws: &Workspace,
    config: &Config,
    indices: &[usize],
    parallel: bool,
) -> Vec<Vec<Finding>> {
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(indices.len());
    if !parallel || workers < 2 {
        return indices
            .iter()
            .map(|&i| per_file_rules(&ws.files[i], config))
            .collect();
    }
    let next = AtomicUsize::new(0);
    let mut slots: Vec<Vec<Finding>> = vec![Vec::new(); indices.len()];
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                s.spawn(|| {
                    let mut got: Vec<(usize, Vec<Finding>)> = Vec::new();
                    loop {
                        let slot = next.fetch_add(1, Ordering::Relaxed);
                        let Some(&file_idx) = indices.get(slot) else {
                            break;
                        };
                        got.push((slot, per_file_rules(&ws.files[file_idx], config)));
                    }
                    got
                })
            })
            .collect();
        for h in handles {
            match h.join() {
                Ok(got) => {
                    for (slot, findings) in got {
                        slots[slot] = findings;
                    }
                }
                // A rule panicked on a worker: surface it on the driver
                // thread instead of silently dropping that file's findings.
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
    });
    slots
}

/// Raw per-file findings under `opts` (cache consulted sequentially —
/// the store is plain in-memory state — with misses computed on the
/// pool), in file order.
fn per_file_findings(ws: &Workspace, config: &Config, opts: &AuditOptions) -> Vec<Finding> {
    let indices = selected_indices(ws, opts);
    if !opts.use_cache {
        return per_file_pass(ws, config, &indices, opts.parallel)
            .into_iter()
            .flatten()
            .collect();
    }
    let mut store = cache::Store::open(&ws.root, config);
    let mut slots: Vec<Option<Vec<Finding>>> = indices
        .iter()
        .map(|&i| store.lookup(&ws.files[i]))
        .collect();
    let miss: Vec<usize> = slots
        .iter()
        .enumerate()
        .filter(|(_, s)| s.is_none())
        .map(|(pos, _)| indices[pos])
        .collect();
    let fresh = per_file_pass(ws, config, &miss, opts.parallel);
    let mut fresh_iter = fresh.into_iter();
    for (pos, slot) in slots.iter_mut().enumerate() {
        if slot.is_none() {
            let computed = fresh_iter.next().unwrap_or_default();
            store.insert(&ws.files[indices[pos]], &computed);
            *slot = Some(computed);
        }
    }
    store.persist();
    slots.into_iter().flatten().flatten().collect()
}

/// Runs every rule over `ws` under `opts`, returning *raw* findings
/// (before any allowlist or inline-escape filtering).
pub fn run_rules_opts(ws: &Workspace, config: &Config, opts: &AuditOptions) -> Vec<Finding> {
    let mut findings = per_file_findings(ws, config, opts);
    findings.extend(global_rules(ws, config));
    sort_findings(&mut findings);
    findings
}

/// Runs every rule over `ws`, returning *raw* findings (before any
/// allowlist or inline-escape filtering). Uncached; per-file rules run
/// on the thread pool.
pub fn run_rules(ws: &Workspace, config: &Config) -> Vec<Finding> {
    run_rules_opts(
        ws,
        config,
        &AuditOptions {
            use_cache: false,
            ..AuditOptions::default()
        },
    )
}

/// Like [`run_rules`], but consults and refreshes the per-file result
/// cache under `target/` (the global rules always run). Cache failures
/// of any kind silently fall back to computing.
pub fn run_rules_cached(ws: &Workspace, config: &Config) -> Vec<Finding> {
    run_rules_opts(ws, config, &AuditOptions::default())
}

fn in_scope(rel: &str, scopes: &[&'static str]) -> bool {
    scopes.iter().any(|s| rel.starts_with(s))
}

/// Runs the full audit over the workspace at `root`: load, lex, run every
/// rule (with the per-file cache), then apply inline escapes and the
/// committed allowlist.
///
/// # Errors
///
/// Propagates filesystem errors from loading the tree or the allowlist.
pub fn audit_workspace(root: &Path, config: &Config) -> io::Result<AuditReport> {
    audit_workspace_opts(root, config, &AuditOptions::default())
}

/// [`audit_workspace`] with explicit cache control (`--no-cache`).
///
/// # Errors
///
/// Propagates filesystem errors from loading the tree or the allowlist.
pub fn audit_workspace_with(
    root: &Path,
    config: &Config,
    use_cache: bool,
) -> io::Result<AuditReport> {
    audit_workspace_opts(
        root,
        config,
        &AuditOptions {
            use_cache,
            ..AuditOptions::default()
        },
    )
}

/// [`audit_workspace`] under explicit [`AuditOptions`] (cache control,
/// `--no-parallel`, `--diff` incremental scope), with per-phase wall
/// times recorded on the report.
///
/// # Errors
///
/// Propagates filesystem errors from loading the tree or the allowlist.
pub fn audit_workspace_opts(
    root: &Path,
    config: &Config,
    opts: &AuditOptions,
) -> io::Result<AuditReport> {
    let ms = |t: Instant| u64::try_from(t.elapsed().as_millis()).unwrap_or(u64::MAX);
    let mut timings: Vec<(&'static str, u64)> = Vec::new();

    let t = Instant::now();
    let ws = Workspace::load(root)?;
    timings.push(("load", ms(t)));

    let t = Instant::now();
    let mut raw = per_file_findings(&ws, config, opts);
    timings.push(("per-file", ms(t)));

    let t = Instant::now();
    raw.extend(global_rules(&ws, config));
    sort_findings(&mut raw);
    timings.push(("global", ms(t)));

    let allow = Allowlist::load(&root.join(config.allow_dir))?;
    let t = Instant::now();
    let mut report = apply_suppressions(&ws, raw, &allow);
    timings.push(("suppress", ms(t)));
    if opts.diff_files.is_some() {
        // Entries covering files outside the diff scope have no findings
        // to match; calling them stale would make every incremental run
        // fail spuriously.
        report.stale_allowlist.clear();
    }
    report.timings = timings;
    Ok(report)
}

/// Splits raw findings into active / inline-suppressed /
/// allowlist-suppressed, and computes stale allowlist entries.
pub fn apply_suppressions(ws: &Workspace, raw: Vec<Finding>, allow: &Allowlist) -> AuditReport {
    let files_scanned = ws.files.len();
    let mut findings = Vec::new();
    let mut suppressed_inline = Vec::new();
    let mut suppressed_allowlist = Vec::new();
    let mut matched = vec![false; allow.entries.len()];
    for f in raw {
        let inline = ws
            .file(&f.file)
            .map(|sf| sf.is_allowed_inline(f.line, f.rule))
            .unwrap_or(false);
        if inline {
            suppressed_inline.push(f);
            continue;
        }
        match allow.matches(&f) {
            Some(idx) => {
                matched[idx] = true;
                suppressed_allowlist.push(f);
            }
            None => findings.push(f),
        }
    }
    let stale_allowlist = allow
        .entries
        .iter()
        .zip(&matched)
        .filter(|(_, &m)| !m)
        .map(|(e, _)| e.clone())
        .collect();
    AuditReport {
        findings,
        suppressed_inline,
        suppressed_allowlist,
        stale_allowlist,
        files_scanned,
        timings: Vec::new(),
    }
}

/// Regenerates the public-API baseline from the live tree
/// (`--fix-pub-api`): the reviewed way to admit a `pub` surface change.
/// Returns the number of inventoried items.
///
/// # Errors
///
/// Propagates filesystem errors loading the tree or writing the baseline.
pub fn fix_pub_api(root: &Path, config: &Config) -> io::Result<usize> {
    let ws = Workspace::load(root)?;
    let inv = rules::pub_api::inventory(&ws, config.api_scope);
    fs::write(
        root.join(config.api_golden),
        rules::pub_api::render_baseline(&inv),
    )?;
    Ok(inv.len())
}

/// Rewrites the allowlist directory to exactly cover today's
/// (non-inline-suppressed) findings: the `--fix-allowlist` snapshot.
///
/// # Errors
///
/// Propagates filesystem errors writing the allow files.
pub fn fix_allowlist(root: &Path, config: &Config) -> io::Result<AuditReport> {
    let ws = Workspace::load(root)?;
    let raw = run_rules(&ws, config);
    let kept: Vec<Finding> = raw
        .into_iter()
        .filter(|f| {
            !ws.file(&f.file)
                .map(|sf| sf.is_allowed_inline(f.line, f.rule))
                .unwrap_or(false)
        })
        .collect();
    let allow = Allowlist::from_findings(&kept);
    allow.save(&root.join(config.allow_dir))?;
    // Re-run with the fresh allowlist: by construction everything is
    // suppressed and nothing is stale.
    let report = apply_suppressions(&ws, kept, &allow);
    Ok(report)
}
