//! The codified rule set.
//!
//! Every rule reports [`Finding`](crate::Finding)s with a stable rule id;
//! the engine maps those ids to allowlist files, to the
//! `aaa_audit_findings_total{rule=...}` metric and to SARIF `rules`
//! entries. PR 3's five rules are token-window scanners; PR 4 adds five
//! dataflow-aware rules built on the [tree](crate::tree) layer.

pub mod block_in_step;
pub mod clock_overflow;
pub mod determinism;
pub mod error_swallow;
pub mod lock_across_send;
pub mod match_drift;
pub mod metric_drift;
pub mod panic_freedom;
pub mod pub_api;
pub mod stamp_flow;
pub mod wire_cast;

/// Rule id: panic-freedom on delivery-critical crates.
pub const PANIC_FREEDOM: &str = "panic-freedom";
/// Rule id: no wall-clock / OS entropy in deterministic crates.
pub const DETERMINISM: &str = "determinism";
/// Rule id: wire-enum serializer/deserializer coverage.
pub const MATCH_DRIFT: &str = "match-drift";
/// Rule id: metric vocabulary consistency (code / README / golden file).
pub const METRIC_DRIFT: &str = "metric-drift";
/// Rule id: no lock guard held across a transport send.
pub const LOCK_ACROSS_SEND: &str = "lock-across-send";
/// Rule id: every transport send dominated by a `stamp_send*` call.
pub const STAMP_FLOW: &str = "stamp-flow";
/// Rule id: no unguarded narrowing casts on codec/wire paths.
pub const WIRE_CAST: &str = "wire-cast-truncation";
/// Rule id: no wrapping arithmetic on matrix/vector clock cells.
pub const CLOCK_OVERFLOW: &str = "clock-overflow";
/// Rule id: no discarded fallible results in protocol crates.
pub const ERROR_SWALLOW: &str = "error-swallow";
/// Rule id: no blocking calls reachable from the batched server step.
pub const BLOCK_IN_STEP: &str = "block-in-step";
/// Rule id: aaa-mom's `pub` surface matches its committed baseline.
pub const PUB_API: &str = "pub-api-drift";

/// Every rule id, in reporting order.
pub const ALL_RULES: &[&str] = &[
    PANIC_FREEDOM,
    DETERMINISM,
    MATCH_DRIFT,
    METRIC_DRIFT,
    LOCK_ACROSS_SEND,
    STAMP_FLOW,
    WIRE_CAST,
    CLOCK_OVERFLOW,
    ERROR_SWALLOW,
    BLOCK_IN_STEP,
    PUB_API,
];

/// One-line description per rule id (SARIF `shortDescription`, docs).
pub fn describe(rule: &str) -> &'static str {
    match rule {
        r if r == PANIC_FREEDOM => {
            "No unwrap/expect/panic-family/indexing-by-literal in non-test delivery-path code."
        }
        r if r == DETERMINISM => {
            "No wall-clock or OS entropy reads inside the deterministic simulator and clocks."
        }
        r if r == MATCH_DRIFT => {
            "Every wire-enum variant is covered by both its serializer and its deserializer."
        }
        r if r == METRIC_DRIFT => {
            "The aaa_* metric vocabulary agrees across code, README table and Prometheus golden."
        }
        r if r == LOCK_ACROSS_SEND => {
            "No Mutex/RwLock guard is held across a transport send in the same block."
        }
        r if r == STAMP_FLOW => {
            "Every transport send outside aaa-net is dominated by a stamp_send* call."
        }
        r if r == WIRE_CAST => "No unguarded narrowing casts (as u16/u32) on codec and wire paths.",
        r if r == CLOCK_OVERFLOW => {
            "Matrix/vector clock cell arithmetic uses saturating/checked operations."
        }
        r if r == ERROR_SWALLOW => {
            "No discarded fallible results (let _ =, .ok();, dropped Results) in protocol crates."
        }
        r if r == BLOCK_IN_STEP => {
            "No blocking calls or .await reachable from the batched server step."
        }
        r if r == PUB_API => {
            "Every pub item in aaa-mom is recorded in the committed PUBLIC_API.txt baseline."
        }
        _ => "Workspace protocol-invariant audit rule.",
    }
}
