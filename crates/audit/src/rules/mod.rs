//! The codified rule set.
//!
//! Every rule reports [`Finding`](crate::Finding)s with a stable rule id;
//! the engine maps those ids to allowlist files, to the
//! `aaa_audit_findings_total{rule=...}` metric and to SARIF `rules`
//! entries. PR 3's rules are token-window scanners; PR 4 added five
//! dataflow-aware rules built on the [tree](crate::tree) layer; PR 8's
//! concurrency pass adds three more on the [guards](crate::guards)
//! layer — `lock-order`, `guard-across-blocking` (which subsumed and
//! retired the proximity-based `lock-across-send`) and
//! `atomic-protocol` — plus the [interleave](crate::interleave) model
//! checker, which is not a rule but a test-time exhaustive explorer.
//! PR 9's verification pass ties the model checker back into the rule
//! set: `model-drift` fails when the evented runtime's shared-memory
//! access set outgrows the `SlotModel`'s declared coverage, and
//! `persist-before-deliver` requires recovery-critical delivery effects
//! to be dominated by a stable-store write.

pub mod atomic_protocol;
pub mod block_in_step;
pub mod clock_overflow;
pub mod determinism;
pub mod error_swallow;
pub mod guard_across_blocking;
pub mod lock_order;
pub mod match_drift;
pub mod metric_drift;
pub mod model_drift;
pub mod panic_freedom;
pub mod persist_before_deliver;
pub mod pub_api;
pub mod stamp_flow;
pub mod wire_cast;

/// Rule id: panic-freedom on delivery-critical crates.
pub const PANIC_FREEDOM: &str = "panic-freedom";
/// Rule id: no wall-clock / OS entropy in deterministic crates.
pub const DETERMINISM: &str = "determinism";
/// Rule id: wire-enum serializer/deserializer coverage.
pub const MATCH_DRIFT: &str = "match-drift";
/// Rule id: metric vocabulary consistency (code / README / golden file).
pub const METRIC_DRIFT: &str = "metric-drift";
/// Rule id: every transport send dominated by a `stamp_send*` call.
pub const STAMP_FLOW: &str = "stamp-flow";
/// Rule id: no unguarded narrowing casts on codec/wire paths.
pub const WIRE_CAST: &str = "wire-cast-truncation";
/// Rule id: no wrapping arithmetic on matrix/vector clock cells.
pub const CLOCK_OVERFLOW: &str = "clock-overflow";
/// Rule id: no discarded fallible results in protocol crates.
pub const ERROR_SWALLOW: &str = "error-swallow";
/// Rule id: no blocking calls reachable from the batched server step.
pub const BLOCK_IN_STEP: &str = "block-in-step";
/// Rule id: aaa-mom's `pub` surface matches its committed baseline.
pub const PUB_API: &str = "pub-api-drift";
/// Rule id: the interprocedural lock-acquisition graph is a DAG.
pub const LOCK_ORDER: &str = "lock-order";
/// Rule id: no guard live across a blocking primitive or transport send.
pub const GUARD_ACROSS_BLOCKING: &str = "guard-across-blocking";
/// Rule id: atomic memory orderings match the shape of the use.
pub const ATOMIC_PROTOCOL: &str = "atomic-protocol";
/// Rule id: the evented runtime's shared-memory access set is covered by
/// the interleaving model's declared actions.
pub const MODEL_DRIFT: &str = "model-drift";
/// Rule id: delivery/ack effects on recovery-critical paths are
/// dominated by a stable-store write.
pub const PERSIST_BEFORE_DELIVER: &str = "persist-before-deliver";

/// Every rule id, in reporting order.
pub const ALL_RULES: &[&str] = &[
    PANIC_FREEDOM,
    DETERMINISM,
    MATCH_DRIFT,
    METRIC_DRIFT,
    STAMP_FLOW,
    WIRE_CAST,
    CLOCK_OVERFLOW,
    ERROR_SWALLOW,
    BLOCK_IN_STEP,
    PUB_API,
    LOCK_ORDER,
    GUARD_ACROSS_BLOCKING,
    ATOMIC_PROTOCOL,
    MODEL_DRIFT,
    PERSIST_BEFORE_DELIVER,
];

/// One-line description per rule id (SARIF `shortDescription`, docs).
pub fn describe(rule: &str) -> &'static str {
    match rule {
        r if r == PANIC_FREEDOM => {
            "No unwrap/expect/panic-family/indexing-by-literal in non-test delivery-path code."
        }
        r if r == DETERMINISM => {
            "No wall-clock or OS entropy reads inside the deterministic simulator and clocks."
        }
        r if r == MATCH_DRIFT => {
            "Every wire-enum variant is covered by both its serializer and its deserializer."
        }
        r if r == METRIC_DRIFT => {
            "The aaa_* metric vocabulary agrees across code, README table and Prometheus golden."
        }
        r if r == STAMP_FLOW => {
            "Every transport send outside aaa-net is dominated by a stamp_send* call."
        }
        r if r == WIRE_CAST => "No unguarded narrowing casts (as u16/u32) on codec and wire paths.",
        r if r == CLOCK_OVERFLOW => {
            "Matrix/vector clock cell arithmetic uses saturating/checked operations."
        }
        r if r == ERROR_SWALLOW => {
            "No discarded fallible results (let _ =, .ok();, dropped Results) in protocol crates."
        }
        r if r == BLOCK_IN_STEP => {
            "No blocking calls or .await reachable from the batched server step."
        }
        r if r == PUB_API => {
            "Every pub item in aaa-mom is recorded in the committed PUBLIC_API.txt baseline."
        }
        r if r == LOCK_ORDER => {
            "The interprocedural lock-acquisition graph across mom/net/obs/storage is acyclic."
        }
        r if r == GUARD_ACROSS_BLOCKING => {
            "No Mutex/RwLock guard is live across a blocking primitive, channel recv or send*."
        }
        r if r == ATOMIC_PROTOCOL => {
            "Gate-shaped atomics use Acquire/Release+; Relaxed only on counters; SeqCst justified."
        }
        r if r == MODEL_DRIFT => {
            "The evented runtime's shared-memory accesses stay covered by the SlotModel's actions."
        }
        r if r == PERSIST_BEFORE_DELIVER => {
            "Every deliver/on_ack effect on recovery paths is dominated by a stable-store put."
        }
        _ => "Workspace protocol-invariant audit rule.",
    }
}

/// Long-form documentation per rule id: what the rule enforces, why the
/// middleware needs it, and how to fix or suppress a finding. Printed by
/// `aaa-audit --explain <rule>` and embedded as the SARIF `help` text.
pub fn explain(rule: &str) -> &'static str {
    match rule {
        r if r == PANIC_FREEDOM => {
            "A panic on the delivery path aborts a half-committed channel transaction and \
             tears down a whole shard worker. The rule flags `.unwrap()`, `.expect(..)`, \
             `panic!`-family macros and indexing by integer literal in non-test code of the \
             configured crates (net, mom, clocks, storage, plus bench drivers under src/bin \
             and examples/). Fix by propagating a `Result` or handling the `None`; suppress \
             a deliberate invariant with `// audit:allow(panic-freedom)` plus a comment \
             stating why the invariant holds."
        }
        r if r == DETERMINISM => {
            "The simulator's replay guarantee (same seed, same trace) dies the moment a \
             wall-clock or OS-entropy read sneaks into `sim` or `clocks`. The rule flags \
             `Instant::now`, `SystemTime`, `thread_rng` and friends there. Fix by threading \
             the simulated clock or seeded RNG through instead."
        }
        r if r == MATCH_DRIFT => {
            "A wire-enum variant handled in `encode` but not `decode` (or vice versa) \
             silently breaks cross-version delivery: the peer reads a valid-looking frame \
             and drops or misroutes it. The rule parses each configured enum definition and \
             checks every variant name appears in both the serializer and the deserializer \
             function bodies."
        }
        r if r == METRIC_DRIFT => {
            "Operators alert on metric names; a renamed counter that the README table or \
             the Prometheus golden file still lists the old way produces silent blind spots. \
             The rule cross-checks the `aaa_*` vocabulary across code, README and goldens."
        }
        r if r == STAMP_FLOW => {
            "The paper's causal guarantee needs every message stamped before it leaves the \
             process. The rule walks the call graph from each transport send site in mom/sim \
             and requires a dominating `stamp_send*` call — a raw send is a causality leak."
        }
        r if r == WIRE_CAST => {
            "`v.len() as u32` in a codec truncates silently past 2^32 and the peer decodes \
             a structurally valid, wrong value. The rule flags narrowing `as u16`/`as u32` \
             casts with runtime operands on wire paths (including bench drivers and \
             examples) unless the enclosing function already guards with `try_from` or an \
             explicit `::MAX` bound check."
        }
        r if r == CLOCK_OVERFLOW => {
            "Matrix/vector clock cells only ever grow; wrapping arithmetic would travel \
             back in causal time. The rule requires saturating/checked ops on configured \
             clock-cell fields."
        }
        r if r == ERROR_SWALLOW => {
            "`let _ = send(..)` on a protocol path turns a transport failure into silent \
             message loss. The rule flags discarded fallible results in protocol crates; \
             handle the error, log it through the obs layer, or justify inline."
        }
        r if r == BLOCK_IN_STEP => {
            "One blocking call inside the batched server step stalls a whole shard — every \
             server multiplexed onto that worker. The rule walks the call graph from the \
             step entry points and flags reachable blocking primitives and `.await`s."
        }
        r if r == PUB_API => {
            "aaa-mom's `pub` surface is a compatibility contract. The rule inventories pub \
             items and diffs them against the committed PUBLIC_API.txt; admit a deliberate \
             change by regenerating the baseline with `--fix-pub-api`."
        }
        r if r == LOCK_ORDER => {
            "Two threads taking the same pair of locks in opposite orders can deadlock, \
             and a deadlocked shard worker freezes every server multiplexed onto it. The \
             guard-tracking layer computes which guards are live at each call site — \
             including guards returned up the call chain — and builds an interprocedural \
             lock-order graph over mom/net/obs/storage: an edge A -> B whenever B is \
             acquired (directly or transitively through a call) while a guard on A is \
             live. Any cycle is reported with the full cycle path and the witness site \
             that closed it. Fix by acquiring locks in one global order (DESIGN.md §15 \
             documents the sanctioned DAG) or by shrinking the guard's span with an \
             explicit `drop(guard)`."
        }
        r if r == GUARD_ACROSS_BLOCKING => {
            "A blocking call under a lock couples unrelated peers: every thread contending \
             for that lock inherits the stall, acks miss retransmission deadlines, and the \
             retry storm collapses throughput. Using real liveness spans (not token \
             proximity — this rule subsumed PR 3's `lock-across-send`), the rule flags any \
             blocking primitive, channel `recv`, or transport `send*`/`write_all`/`connect*` \
             executed while a Mutex/RwLock guard is live, including guards returned by \
             helpers. Fix by dropping the guard first or staging the data out of the \
             critical section; a deliberate coupling (per-socket write serialization, \
             group-commit file I/O) takes an inline `// audit:allow(guard-across-blocking)` \
             with the reasoning."
        }
        r if r == ATOMIC_PROTOCOL => {
            "Atomic orderings must match the idiom: gate-shaped RMWs (`swap`, \
             `compare_exchange*`, `fetch_or`-family) and `store`s to AtomicBool flags \
             publish state transitions and need Acquire/Release or stronger — `Relaxed` \
             there is a lost wakeup on weak memory. Counter-shaped `fetch_add`/`fetch_sub` \
             sites are exempt (Relaxed is correct: nothing is published). `SeqCst` must \
             carry a nearby `// ...SeqCst...` why-comment or be downgraded — total order \
             costs a full fence and usually hides the real protocol. Single-writer state \
             machines document themselves with inline `// audit:allow(atomic-protocol)` \
             comments stating the single-writer argument (DESIGN.md §15 has the policy \
             table)."
        }
        r if r == MODEL_DRIFT => {
            "The interleaving model check (crates/audit/src/interleave.rs) proves the evented \
             shard runtime free of lost wakeups and step-after-dead races — but only for the \
             protocol as modeled. The proof rots silently the day an atomic, lock or channel \
             operation is added to the shard loop without a matching model action: the \
             explorer keeps passing, now about the wrong protocol. This rule statically \
             extracts every `field.method(..)` shared-memory access reachable from the \
             runtime's entry points (run_ready_server, schedule, the worker/timer loops, \
             send_cmd; reachability stops at `drop` so shutdown-only teardown stays out of \
             the modeled window) and fails unless `interleave::COVERED_ACCESSES` covers it. \
             Fix by adding a transition to the SlotModel and listing the access in \
             COVERED_ACCESSES — or justify a genuinely model-irrelevant access inline with \
             `// audit:allow(model-drift)`. The reverse drift (a declared access the code no \
             longer performs) is reported as a stale-coverage finding."
        }
        r if r == PERSIST_BEFORE_DELIVER => {
            "Delivery is an irreversible protocol effect: once a clock engine's DELIV row \
             advances (CausalState::deliver) or a hybrid-mode buffer entry is released \
             (on_ack), peers' matrix clocks may already encode that the message is consumed. \
             If the transition lives only in memory, a crash forks history — the reloaded \
             server re-admits the message and exactly-once dies on the recovery path. The \
             rule requires every `.deliver(from, pending)` / `.on_ack(from)` site in mom to \
             be dominated by a `put`/group-commit: in the enclosing function, a transitive \
             callee, or a transitive caller (batched group-commit in the drain loop counts). \
             Route the effect through the persistence path, or mark a deliberately volatile \
             path (pure-simulation harness) with `// audit:allow(persist-before-deliver)`."
        }
        _ => "Workspace protocol-invariant audit rule; see crates/audit/src/rules/.",
    }
}
