//! The codified rule set.
//!
//! Every rule reports [`Finding`](crate::Finding)s with a stable rule id;
//! the engine maps those ids to allowlist files and to the
//! `aaa_audit_findings_total{rule=...}` metric.

pub mod determinism;
pub mod lock_across_send;
pub mod match_drift;
pub mod metric_drift;
pub mod panic_freedom;

/// Rule id: panic-freedom on delivery-critical crates.
pub const PANIC_FREEDOM: &str = "panic-freedom";
/// Rule id: no wall-clock / OS entropy in deterministic crates.
pub const DETERMINISM: &str = "determinism";
/// Rule id: wire-enum serializer/deserializer coverage.
pub const MATCH_DRIFT: &str = "match-drift";
/// Rule id: metric vocabulary consistency (code / README / golden file).
pub const METRIC_DRIFT: &str = "metric-drift";
/// Rule id: no lock guard held across a transport send.
pub const LOCK_ACROSS_SEND: &str = "lock-across-send";

/// Every rule id, in reporting order.
pub const ALL_RULES: &[&str] = &[
    PANIC_FREEDOM,
    DETERMINISM,
    MATCH_DRIFT,
    METRIC_DRIFT,
    LOCK_ACROSS_SEND,
];
