//! `error-swallow`: protocol crates must not discard fallible results.
//!
//! The motivating bug (PR 4): `let _ = d.u32().unwrap()` on a decode path
//! reads past a truncated buffer and *drops the evidence* — the decoder
//! keeps going with garbage alignment and the corruption surfaces three
//! fields later as a plausible-looking value. A swallowed `Err` on the
//! router path is the same failure at a larger scale: the §4.3 causality
//! argument assumes every accepted message is actually processed, and a
//! dropped `Result` makes "accepted but not processed" invisible.
//!
//! Three legs, all in non-test code of the configured protocol crates:
//!
//! - **`let _ = f(..)`** — a call result explicitly discarded (the
//!   binding form that defeats `#[must_use]`);
//! - **`.ok();`** — converting an `Err` to `None` and dropping it in
//!   statement position;
//! - **discarded workspace `Result`s** — a statement-position call of a
//!   function that returns `Result` in *every* workspace definition of
//!   that name (the name-collision-safe approximation of `#[must_use]`;
//!   this leg lives in [`check_global`] because it needs the
//!   workspace-wide return-type map).
//!
//! Deliberate best-effort sends (e.g. replying to a client that may have
//! hung up) stay expressible via `// audit:allow(error-swallow)` with a
//! justification comment.

use crate::lexer::TokKind;
use crate::source::SourceFile;
use crate::tree::{calls_in, match_paren, CallGraph};
use crate::{Config, Finding, Workspace};

fn finding(file: &SourceFile, line: u32, message: String) -> Finding {
    Finding {
        rule: super::ERROR_SWALLOW,
        file: file.rel.clone(),
        line,
        message,
        line_text: file.trimmed_line(line).to_owned(),
    }
}

/// The per-file legs: `let _ = <call>` and statement-position `.ok();`.
pub fn check(file: &SourceFile) -> Vec<Finding> {
    let toks = &file.toks;
    let mut out = Vec::new();
    for i in file.non_test_indices().collect::<Vec<_>>() {
        // Leg 1: `let _ = <expr containing a call> ;`
        if toks[i].is_ident("let")
            && i + 2 < toks.len()
            && toks[i + 1].is_ident("_")
            && toks[i + 2].is_punct('=')
        {
            // Statement end: first `;` with all delimiters balanced.
            let (mut p, mut b, mut br) = (0i32, 0i32, 0i32);
            let mut end = i + 3;
            while end < toks.len() {
                let t = &toks[end];
                if t.is_punct('(') {
                    p += 1;
                } else if t.is_punct(')') {
                    p -= 1;
                } else if t.is_punct('[') {
                    b += 1;
                } else if t.is_punct(']') {
                    b -= 1;
                } else if t.is_punct('{') {
                    br += 1;
                } else if t.is_punct('}') {
                    br -= 1;
                } else if t.is_punct(';') && p <= 0 && b <= 0 && br <= 0 {
                    break;
                }
                end += 1;
            }
            if let Some(call) = calls_in(file, i + 3, end).first() {
                out.push(finding(
                    file,
                    toks[i].line,
                    format!(
                        "`let _ = ..{}(..)` discards a fallible result on a protocol path — \
                         handle or propagate the error, or `// audit:allow(error-swallow)` \
                         with a justification",
                        call.name
                    ),
                ));
            }
            continue;
        }
        // Leg 2: statement-position `.ok();`
        if toks[i].is_punct('.')
            && i + 4 < toks.len()
            && toks[i + 1].is_ident("ok")
            && toks[i + 2].is_punct('(')
            && toks[i + 3].is_punct(')')
            && toks[i + 4].is_punct(';')
        {
            out.push(finding(
                file,
                toks[i + 1].line,
                "`.ok();` swallows an `Err` in statement position — match on it, propagate \
                 it, or `// audit:allow(error-swallow)` with a justification"
                    .to_owned(),
            ));
        }
    }
    out
}

/// Names that collide with common *infallible* std methods (atomics'
/// `store`/`load`, map `remove`/`insert`/`get`, `Option::take`, ...).
/// The workspace-wide return-type map cannot see std, so a workspace
/// `fn store() -> Result<..>` would otherwise flag every
/// `AtomicU64::store(..)` statement. Discarding an `Option` from a map
/// mutation is idiomatic, so these names disarm the leg entirely.
const STD_COLLISIONS: &[&str] = &[
    "store", "load", "remove", "insert", "get", "take", "swap", "replace", "push", "pop", "set",
    "clear", "extend", "drain", "truncate", "reserve",
];

/// Leg 3: statement-position calls of functions that return `Result` in
/// every workspace definition of that simple name.
pub fn check_global(ws: &Workspace, config: &Config) -> Vec<Finding> {
    // Return-type map over the *whole* workspace: a name counts only when
    // every definition of it returns Result (collisions disarm the leg).
    let graph = CallGraph::build(ws.files.iter());
    let mut out = Vec::new();
    for file in &ws.files {
        if !config
            .swallow_scopes
            .iter()
            .any(|s| file.rel.starts_with(s))
        {
            continue;
        }
        let toks = &file.toks;
        for call in calls_in(file, 0, toks.len()) {
            if file.test_mask.get(call.tok).copied().unwrap_or(false) {
                continue;
            }
            if graph.always_result.get(&call.name) != Some(&true) {
                continue;
            }
            if STD_COLLISIONS.contains(&call.name.as_str()) {
                continue;
            }
            // Result must be discarded: the token after the matching `)`
            // is `;` (not `?`, `.`, an operator, ...).
            let Some(close) = match_paren(toks, call.open) else {
                continue;
            };
            if !toks
                .get(close + 1)
                .map(|t| t.is_punct(';'))
                .unwrap_or(false)
            {
                continue;
            }
            // ... and the call chain must start the statement: walk left
            // over the receiver chain; the token before it must end a
            // statement or open a block.
            let mut k = call.tok as isize - 1;
            loop {
                if k < 0 {
                    break;
                }
                let t = &toks[k as usize];
                if t.is_punct('.') {
                    k -= 1;
                    continue;
                }
                if t.kind == TokKind::Ident {
                    // part of the receiver chain (`self`, `store`, ...)
                    // only if linked by `.`/`::` on its left or it begins
                    // the statement.
                    if k >= 1 && toks[k as usize - 1].is_punct('.') {
                        k -= 2;
                        continue;
                    }
                    if k >= 2
                        && toks[k as usize - 1].is_punct(':')
                        && toks[k as usize - 2].is_punct(':')
                    {
                        k -= 3;
                        continue;
                    }
                    k -= 1;
                    break;
                }
                break;
            }
            let stmt_start = k < 0
                || toks
                    .get(k as usize)
                    .map(|t| t.is_punct(';') || t.is_punct('{') || t.is_punct('}'))
                    .unwrap_or(true);
            if !stmt_start {
                continue;
            }
            out.push(finding(
                file,
                call.line,
                format!(
                    "result of `{}(..)` is discarded, but every workspace definition of \
                     `{}` returns `Result` — add `?`, handle the error, or \
                     `// audit:allow(error-swallow)` with a justification",
                    call.name, call.name
                ),
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> Vec<Finding> {
        check(&SourceFile::parse("crates/mom/src/x.rs", src))
    }

    #[test]
    fn flags_let_underscore_call() {
        let f = run("fn f(&self) { let _ = self.ep.send(to, b); }");
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("send"));
    }

    #[test]
    fn let_underscore_without_call_is_fine() {
        let f = run("fn f(&self, id: u32) { let _ = id; let _ = (a, b); }");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn flags_statement_ok() {
        let f = run("fn f(&mut self) { self.store.put(k, v).ok(); }");
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains(".ok()"));
    }

    #[test]
    fn used_ok_is_fine() {
        let f = run("fn f(&mut self) -> Option<u8> { self.read().ok().map(|x| x) }");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn test_code_is_exempt() {
        let f = run("#[cfg(test)]\nmod t { fn f() { let _ = d.u32(); x.parse().ok(); } }");
        assert!(f.is_empty(), "{f:?}");
    }

    fn ws(files: &[(&str, &str)]) -> Workspace {
        Workspace::from_files(
            files
                .iter()
                .map(|(r, t)| ((*r).to_owned(), (*t).to_owned()))
                .collect(),
        )
    }

    #[test]
    fn global_leg_flags_discarded_workspace_result() {
        let w = ws(&[(
            "crates/mom/src/x.rs",
            "fn persist(&mut self) -> Result<(), E> { Ok(()) }\n\
             fn step(&mut self) { self.persist(); }",
        )]);
        let f = check_global(&w, &crate::Config::for_aaa_workspace());
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("persist"));
    }

    #[test]
    fn global_leg_ignores_used_and_mixed_names() {
        let w = ws(&[(
            "crates/mom/src/x.rs",
            "fn persist(&mut self) -> Result<(), E> { Ok(()) }\n\
             fn step(&mut self) -> Result<(), E> { self.persist()?; Ok(()) }\n\
             fn used(&mut self) { let r = self.persist(); drop(r); }",
        )]);
        let f = check_global(&w, &crate::Config::for_aaa_workspace());
        assert!(f.is_empty(), "{f:?}");

        // `u32` is both a fallible Decoder read and an infallible Encoder
        // write somewhere else: the mixed name disarms the leg.
        let w = ws(&[
            (
                "crates/net/src/y.rs",
                "impl Encoder { fn u32(&mut self, v: u32) -> &mut Self { self } }",
            ),
            (
                "crates/mom/src/x.rs",
                "fn u32(&mut self) -> Result<u32, E> { Ok(0) }\n\
                 fn enc(&mut self) { self.u32(); }",
            ),
        ]);
        let f = check_global(&w, &crate::Config::for_aaa_workspace());
        assert!(f.is_empty(), "{f:?}");
    }
}
