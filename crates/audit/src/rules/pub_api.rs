//! `pub-api-drift`: aaa-mom's public surface changes only by decision.
//!
//! PR 7 redesigned the `aaa-mom` builder API from thirteen accreted
//! setters into the typed config trio — and the lesson of how those
//! thirteen got there is that public items accrete one innocent `pub` at
//! a time, each skipping the "should the prelude re-export this? is it
//! documented?" conversation. This rule pins the crate's `pub` item
//! inventory to a committed baseline (`crates/mom/PUBLIC_API.txt`):
//! adding a `pub` item without touching the baseline fails the audit, so
//! every surface change shows up in review as an explicit baseline diff.
//!
//! Mechanically: scan every file under the configured scope for `pub`
//! items at module top level (brace depth zero — `impl` methods and
//! struct fields ride on their parent item's visibility and are not
//! separately inventoried), expand `pub use` trees into their re-exported
//! leaf names, and diff the sorted inventory against the baseline.
//! `pub(crate)`/`pub(super)` items are internal and exempt. Refresh the
//! baseline with `cargo run -p aaa-audit -- --fix-pub-api`.

use std::collections::BTreeMap;

use crate::lexer::TokKind;
use crate::source::SourceFile;
use crate::{Finding, Workspace};

/// Item keywords that can follow `pub` and carry a name.
const ITEM_KINDS: &[&str] = &[
    "fn", "struct", "enum", "trait", "type", "const", "static", "mod", "union",
];

/// Modifier keywords to skip between `pub` and the item keyword.
const MODIFIERS: &[&str] = &["unsafe", "async", "extern"];

/// One inventoried `pub` item: `(baseline entry, defining line)`.
type Inventory = BTreeMap<String, (String, u32)>;

/// Collects the `pub` item inventory of every in-scope file, keyed by the
/// baseline entry string (`<file>: <kind> <name>`).
pub fn inventory(ws: &Workspace, scope: &str) -> Inventory {
    let mut out = Inventory::new();
    for file in ws.files.iter().filter(|f| f.rel.starts_with(scope)) {
        scan_file(file, &mut out);
    }
    out
}

fn scan_file(file: &SourceFile, out: &mut Inventory) {
    let toks = &file.toks;
    let mut depth = 0i32;
    for i in 0..toks.len() {
        let t = &toks[i];
        if t.is_punct('{') {
            depth += 1;
            continue;
        }
        if t.is_punct('}') {
            depth -= 1;
            continue;
        }
        if depth != 0
            || !t.is_ident("pub")
            || file.test_mask.get(i).copied().unwrap_or(false)
            // `pub(crate)` / `pub(super)` / `pub(in ...)`: internal.
            || toks.get(i + 1).map(|n| n.is_punct('(')).unwrap_or(false)
        {
            continue;
        }
        let mut j = i + 1;
        while toks
            .get(j)
            .map(|t| MODIFIERS.contains(&t.text.as_str()))
            .unwrap_or(false)
        {
            j += 1;
            // `pub extern "C" fn`: step over the ABI string.
            if toks.get(j).map(|t| t.kind == TokKind::Str).unwrap_or(false) {
                j += 1;
            }
        }
        let Some(kind_tok) = toks.get(j) else {
            continue;
        };
        if kind_tok.is_ident("use") {
            for (name, line) in use_tree_names(file, j + 1) {
                out.entry(format!("{}: use {name}", file.rel))
                    .or_insert((file.rel.clone(), line));
            }
            continue;
        }
        let mut kind = kind_tok.text.clone();
        let mut name_at = j + 1;
        // `pub const fn f` is a fn; `pub const X` is a const.
        if kind == "const" && toks.get(j + 1).map(|t| t.is_ident("fn")).unwrap_or(false) {
            kind = "fn".to_owned();
            name_at = j + 2;
        }
        if !ITEM_KINDS.contains(&kind.as_str()) {
            continue; // `pub` in a position we do not inventory (macros etc.)
        }
        let Some(name_tok) = toks.get(name_at) else {
            continue;
        };
        if name_tok.kind != TokKind::Ident {
            continue;
        }
        out.entry(format!("{}: {kind} {}", file.rel, name_tok.text))
            .or_insert((file.rel.clone(), name_tok.line));
    }
}

/// Re-exported leaf names of one `pub use` tree starting at token `start`
/// (just after `use`), each with its line. `as` aliases export the alias;
/// `self` in a brace group exports the enclosing path segment; globs
/// export `<segment>::*`.
fn use_tree_names(file: &SourceFile, start: usize) -> Vec<(String, u32)> {
    let toks = &file.toks;
    let mut names = Vec::new();
    // Path segment owning each open brace group (`runtime::{...}` → the
    // `runtime` frame), so `self` resolves to its enclosing segment.
    let mut owners: Vec<Option<(String, u32)>> = Vec::new();
    let mut last: Option<(String, u32)> = None; // most recent path ident
    let mut j = start;
    while let Some(t) = toks.get(j) {
        if t.is_punct(';') {
            break;
        }
        if t.kind == TokKind::Ident {
            if t.is_ident("as") {
                // Alias: the next plain ident simply replaces the leaf.
            } else if t.is_ident("self") {
                // `x::y::{self, ..}` re-exports `y`.
                last = owners.last().cloned().flatten();
            } else {
                last = Some((t.text.clone(), t.line));
            }
        } else if t.is_punct('{') {
            owners.push(last.take());
        } else if t.is_punct('*') {
            let owner = last.take().or_else(|| owners.last().cloned().flatten());
            if let Some((seg, line)) = owner {
                names.push((format!("{seg}::*"), line));
            }
        } else if t.is_punct(',') {
            if let Some(leaf) = last.take() {
                names.push(leaf);
            }
        } else if t.is_punct('}') {
            if let Some(leaf) = last.take() {
                names.push(leaf);
            }
            owners.pop();
        }
        j += 1;
    }
    if let Some(leaf) = last.take() {
        names.push(leaf);
    }
    names
}

/// Parses the committed baseline: one entry per line, `#` comments and
/// blanks skipped. Returns entry → 1-based line.
fn baseline_entries(text: &str) -> BTreeMap<String, u32> {
    let mut out = BTreeMap::new();
    for (idx, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        out.entry(line.to_owned()).or_insert(idx as u32 + 1);
    }
    out
}

/// Renders the baseline file content for the current inventory
/// (`--fix-pub-api`).
pub fn render_baseline(inv: &Inventory) -> String {
    let mut out = String::from(
        "# aaa-mom public API baseline — one `pub` item per line.\n\
         # The pub-api-drift audit rule fails when the crate's `pub` surface\n\
         # diverges from this file: adding a public item is a reviewed decision\n\
         # (prelude re-export? documented?), not a side effect. Refresh with\n\
         #     cargo run -p aaa-audit -- --fix-pub-api\n",
    );
    for entry in inv.keys() {
        out.push_str(entry);
        out.push('\n');
    }
    out
}

/// Runs the rule: diffs the live inventory against `golden_text` (the
/// committed baseline at `golden_path`).
pub fn check(ws: &Workspace, scope: &str, golden_path: &str, golden_text: &str) -> Vec<Finding> {
    let inv = inventory(ws, scope);
    let baseline = baseline_entries(golden_text);
    let mut out = Vec::new();
    for (entry, (file, line)) in &inv {
        if !baseline.contains_key(entry) {
            let sf = ws.file(file);
            out.push(Finding {
                rule: super::PUB_API,
                file: file.clone(),
                line: *line,
                message: format!(
                    "new public item `{entry}` is not in the {golden_path} baseline — decide \
                     its exposure (prelude re-export? docs?) and refresh with \
                     `cargo run -p aaa-audit -- --fix-pub-api`"
                ),
                line_text: sf
                    .map(|s| s.trimmed_line(*line).to_owned())
                    .unwrap_or_default(),
            });
        }
    }
    for (entry, line) in &baseline {
        if !inv.contains_key(entry) {
            out.push(Finding {
                rule: super::PUB_API,
                file: golden_path.to_owned(),
                line: *line,
                message: format!(
                    "baseline records `{entry}` but the item no longer exists — stale after \
                     a removal or rename; refresh with `cargo run -p aaa-audit -- --fix-pub-api`"
                ),
                line_text: entry.clone(),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ws(src: &str) -> Workspace {
        Workspace::from_files(vec![("crates/mom/src/lib.rs".into(), src.into())])
    }

    #[test]
    fn inventory_covers_items_and_use_trees() {
        let w = ws("pub struct A;\n\
                    pub fn go() {}\n\
                    pub const fn cf() {}\n\
                    pub const MAX: u8 = 1;\n\
                    pub use runtime::{Mom, config::RuntimeConfig as RC, kinds::{self}};\n\
                    pub(crate) fn hidden() {}\n\
                    fn private() {}\n");
        let inv = inventory(&w, "crates/mom/src/");
        let keys: Vec<&String> = inv.keys().collect();
        assert_eq!(
            keys,
            vec![
                "crates/mom/src/lib.rs: const MAX",
                "crates/mom/src/lib.rs: fn cf",
                "crates/mom/src/lib.rs: fn go",
                "crates/mom/src/lib.rs: struct A",
                "crates/mom/src/lib.rs: use Mom",
                "crates/mom/src/lib.rs: use RC",
                "crates/mom/src/lib.rs: use kinds",
            ],
            "{inv:?}"
        );
    }

    #[test]
    fn impl_methods_and_fields_are_not_inventoried() {
        let w = ws("pub struct A { pub field: u8 }\n\
                    impl A { pub fn method(&self) {} }\n");
        let inv = inventory(&w, "crates/mom/src/");
        assert_eq!(inv.len(), 1, "{inv:?}");
        assert!(inv.contains_key("crates/mom/src/lib.rs: struct A"));
    }

    #[test]
    fn matching_baseline_is_clean() {
        let w = ws("pub struct A;\npub fn go() {}\n");
        let golden = "# header\ncrates/mom/src/lib.rs: fn go\ncrates/mom/src/lib.rs: struct A\n";
        let f = check(&w, "crates/mom/src/", "PUBLIC_API.txt", golden);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn new_item_without_baseline_entry_is_flagged() {
        let w = ws("pub struct A;\npub fn sneaky_new_api() {}\n");
        let golden = "crates/mom/src/lib.rs: struct A\n";
        let f = check(&w, "crates/mom/src/", "PUBLIC_API.txt", golden);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("sneaky_new_api"));
        assert_eq!(f[0].file, "crates/mom/src/lib.rs");
        assert!(f[0].line > 0);
    }

    #[test]
    fn stale_baseline_entry_is_flagged() {
        let w = ws("pub struct A;\n");
        let golden = "crates/mom/src/lib.rs: struct A\ncrates/mom/src/lib.rs: fn removed\n";
        let f = check(&w, "crates/mom/src/", "PUBLIC_API.txt", golden);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("no longer exists"));
        assert_eq!(f[0].file, "PUBLIC_API.txt");
    }

    #[test]
    fn render_roundtrips_through_check() {
        let w = ws("pub struct A;\npub use x::{Y, z::W as V};\n");
        let inv = inventory(&w, "crates/mom/src/");
        let golden = render_baseline(&inv);
        let f = check(&w, "crates/mom/src/", "PUBLIC_API.txt", &golden);
        assert!(f.is_empty(), "{f:?}");
    }
}
