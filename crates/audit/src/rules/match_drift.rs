//! `match-drift`: wire-enum codecs must cover every variant.
//!
//! The wire format is hand-rolled (the paper reasons about bytes on the
//! wire, so no serde framework) — which means a new enum variant added to
//! the serializer but not the deserializer compiles cleanly and only fails
//! when a peer receives the new tag, *dropping the frame and with it the
//! causal past it carries*. PR 2's `Datagram::Batch` and `Stamp::GroupNext`
//! are exactly the kind of variant this rule exists for: each configured
//! enum's variant list is extracted from its definition and required to
//! appear, by name, in both the encode and decode function bodies.

use std::collections::BTreeSet;

use crate::lexer::TokKind;
use crate::source::{fn_bodies, match_brace, SourceFile};
use crate::{EnumPair, Finding, Workspace};

/// Extracts `(variant name, line)` pairs for `enum_name` in `file`.
pub fn enum_variants(file: &SourceFile, enum_name: &str) -> Option<Vec<(String, u32)>> {
    let toks = &file.toks;
    let mut i = 0usize;
    while i + 1 < toks.len() {
        if toks[i].is_ident("enum") && toks[i + 1].is_ident(enum_name) {
            // Scan to the opening brace (skipping generics).
            let mut j = i + 2;
            while j < toks.len() && !toks[j].is_punct('{') {
                j += 1;
            }
            if j >= toks.len() {
                return None;
            }
            let close = match_brace(toks, j)?;
            let mut variants = Vec::new();
            let mut paren = 0i32;
            let mut brace = 0i32;
            let mut bracket = 0i32;
            let mut prev_top: Option<char> = Some('{');
            for t in &toks[j + 1..close] {
                if t.is_punct('(') {
                    paren += 1;
                } else if t.is_punct(')') {
                    paren -= 1;
                } else if t.is_punct('{') {
                    brace += 1;
                } else if t.is_punct('}') {
                    brace -= 1;
                } else if t.is_punct('[') {
                    bracket += 1;
                } else if t.is_punct(']') {
                    bracket -= 1;
                }
                let top = paren == 0 && brace == 0 && bracket == 0;
                if top {
                    if t.kind == TokKind::Ident
                        && matches!(prev_top, Some('{') | Some(',') | Some(']'))
                    {
                        variants.push((t.text.clone(), t.line));
                    }
                    if t.kind == TokKind::Punct {
                        prev_top = t.text.chars().next();
                    } else {
                        prev_top = None;
                    }
                } else if t.is_punct(')') && paren == 0
                    || t.is_punct('}') && brace == 0
                    || t.is_punct(']') && bracket == 0
                {
                    prev_top = t.text.chars().next();
                }
            }
            return Some(variants);
        }
        i += 1;
    }
    None
}

/// Union of identifier names inside every `fn <name>` body in `file`.
fn idents_in_fns(file: &SourceFile, fn_name: &str) -> Option<BTreeSet<String>> {
    let bodies = fn_bodies(file, fn_name);
    if bodies.is_empty() {
        return None;
    }
    let mut set = BTreeSet::new();
    for (start, end) in bodies {
        for t in &file.toks[start..end] {
            if t.kind == TokKind::Ident {
                set.insert(t.text.clone());
            }
        }
    }
    Some(set)
}

fn config_finding(pair: &EnumPair, file: &str, message: String) -> Finding {
    Finding {
        rule: super::MATCH_DRIFT,
        file: file.to_owned(),
        line: 1,
        message,
        line_text: format!("[auditor config] {}", pair.enum_name),
    }
}

/// Runs the rule over the whole workspace for the configured enum pairs.
pub fn check(ws: &Workspace, pairs: &[EnumPair]) -> Vec<Finding> {
    let mut out = Vec::new();
    for pair in pairs {
        let Some(def_file) = ws.file(pair.def) else {
            out.push(config_finding(
                pair,
                pair.def,
                format!(
                    "match-drift config is stale: file `{}` (definition of `{}`) not found",
                    pair.def, pair.enum_name
                ),
            ));
            continue;
        };
        let Some(variants) = enum_variants(def_file, pair.enum_name) else {
            out.push(config_finding(
                pair,
                pair.def,
                format!(
                    "match-drift config is stale: `enum {}` not found in `{}`",
                    pair.enum_name, pair.def
                ),
            ));
            continue;
        };
        for (side, (path, fn_name)) in [("encode", pair.encode), ("decode", pair.decode)] {
            let Some(codec_file) = ws.file(path) else {
                out.push(config_finding(
                    pair,
                    path,
                    format!(
                        "match-drift config is stale: {side} file `{path}` for `{}` not found",
                        pair.enum_name
                    ),
                ));
                continue;
            };
            let Some(idents) = idents_in_fns(codec_file, fn_name) else {
                out.push(config_finding(
                    pair,
                    path,
                    format!(
                        "match-drift config is stale: no `fn {fn_name}` ({side} side of `{}`) \
                         in `{path}`",
                        pair.enum_name
                    ),
                ));
                continue;
            };
            for (variant, line) in &variants {
                if !idents.contains(variant) {
                    out.push(Finding {
                        rule: super::MATCH_DRIFT,
                        file: pair.def.to_owned(),
                        line: *line,
                        message: format!(
                            "wire-enum variant `{}::{variant}` is missing from the {side} \
                             side (`fn {fn_name}` in {path}) — a peer {} this variant would \
                             drop the frame and the causal past it carries",
                            pair.enum_name,
                            if side == "encode" {
                                "sending"
                            } else {
                                "receiving"
                            },
                        ),
                        line_text: def_file.trimmed_line(*line).to_owned(),
                    });
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pair() -> EnumPair {
        EnumPair {
            enum_name: "Wire",
            def: "crates/x/src/def.rs",
            encode: ("crates/x/src/codec.rs", "enc"),
            decode: ("crates/x/src/codec.rs", "dec"),
        }
    }

    fn ws(def: &str, codec: &str) -> Workspace {
        Workspace::from_files(vec![
            ("crates/x/src/def.rs".into(), def.into()),
            ("crates/x/src/codec.rs".into(), codec.into()),
        ])
    }

    #[test]
    fn variant_extraction_handles_payloads_attrs_and_discriminants() {
        let f = SourceFile::parse(
            "d.rs",
            r#"
pub enum Wire {
    /// doc
    Plain,
    Tuple(Vec<u8>, u32),
    Struct { a: u8, b: Inner<Vec<u8>> },
    #[allow(dead_code)]
    Attributed = 7,
}
"#,
        );
        let names: Vec<String> = enum_variants(&f, "Wire")
            .expect("enum found")
            .into_iter()
            .map(|(n, _)| n)
            .collect();
        assert_eq!(names, vec!["Plain", "Tuple", "Struct", "Attributed"]);
    }

    #[test]
    fn covered_codec_is_clean() {
        let findings = check(
            &ws(
                "pub enum Wire { A, B(u8) }",
                "fn enc(w: &Wire) { match w { Wire::A => {}, Wire::B(x) => {} } }\n\
                 fn dec(t: u8) { if t == 0 { Wire::A } else { Wire::B(t) }; }",
            ),
            &[pair()],
        );
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn encode_only_variant_is_flagged_on_decode_side() {
        let findings = check(
            &ws(
                "pub enum Wire { A, B }",
                "fn enc(w: &Wire) { match w { Wire::A => {}, Wire::B => {} } }\n\
                 fn dec(t: u8) { if t == 0 { Wire::A } else { err() }; }",
            ),
            &[pair()],
        );
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("`Wire::B`"));
        assert!(findings[0].message.contains("decode"));
    }

    #[test]
    fn stale_config_is_itself_a_finding() {
        let findings = check(&ws("pub enum Other { A }", "fn nothing() {}"), &[pair()]);
        assert!(!findings.is_empty());
        assert!(findings[0].message.contains("stale"));
    }
}
