//! `wire-cast-truncation`: no unguarded narrowing casts on codec paths.
//!
//! `v.len() as u32` in an encoder silently truncates once the collection
//! crosses 2³² entries; the decoder then reads a *valid-looking* length
//! prefix and deserializes a structurally consistent but wrong value — the
//! worst kind of wire bug, because nothing errors. The hybrid-buffering
//! literature (PAPERS.md) places exactly this class of protocol-soundness
//! bug at the root of causal-delivery failures in scalable systems.
//!
//! The rule flags every `<expr> as u16` / `<expr> as u32` in non-test
//! code of the configured codec/wire paths, **unless** the enclosing
//! function already guards the narrowing: a `try_from` call or an
//! explicit `::MAX` bound check earlier in the same function body
//! suppresses the finding (`n > u16::MAX` rejects, `u32::try_from`
//! checks). Literal casts (`0 as u32`) are constant and skipped.

use crate::lexer::TokKind;
use crate::source::SourceFile;
use crate::tree::{enclosing_fn, fn_spans};
use crate::Finding;

/// Narrowing target types the rule cares about on the wire.
const NARROW_TARGETS: &[&str] = &["u16", "u32"];

/// Runs the rule over one in-scope file.
pub fn check(file: &SourceFile) -> Vec<Finding> {
    let toks = &file.toks;
    let spans = fn_spans(file);
    let mut out = Vec::new();
    for i in file.non_test_indices().collect::<Vec<_>>() {
        if !toks[i].is_ident("as") {
            continue;
        }
        let Some(target) = toks.get(i + 1) else {
            continue;
        };
        if target.kind != TokKind::Ident || !NARROW_TARGETS.contains(&target.text.as_str()) {
            continue;
        }
        // The cast must have a runtime operand: an identifier, `)` or `]`
        // directly to the left. `0 as u32` and `u16::MAX as usize` style
        // constant casts are irrelevant here.
        let Some(prev) = i.checked_sub(1).map(|p| &toks[p]) else {
            continue;
        };
        let operand_ok = prev.kind == TokKind::Ident || prev.is_punct(')') || prev.is_punct(']');
        if !operand_ok {
            continue;
        }
        // Guarded? `try_from` or a `::MAX` bound check earlier in the
        // enclosing fn body suppresses.
        let guarded = enclosing_fn(&spans, i)
            .and_then(|f| f.body.map(|(s, _)| s))
            .map(|body_start| {
                toks[body_start..i]
                    .iter()
                    .any(|t| t.is_ident("try_from") || t.is_ident("MAX"))
            })
            .unwrap_or(false);
        if guarded {
            continue;
        }
        out.push(Finding {
            rule: super::WIRE_CAST,
            file: file.rel.clone(),
            line: toks[i].line,
            message: format!(
                "unguarded narrowing `as {}` on a codec path silently truncates out-of-range \
                 values on the wire — use `{}::try_from(..)` (or an explicit `::MAX` bound \
                 check) so oversized input fails loudly instead of decoding wrong",
                target.text, target.text
            ),
            line_text: file.trimmed_line(toks[i].line).to_owned(),
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> Vec<Finding> {
        check(&SourceFile::parse("crates/net/src/x.rs", src))
    }

    #[test]
    fn flags_len_cast() {
        let f = run("fn enc(&mut self, v: &[u8]) { self.u32(v.len() as u32); }");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "wire-cast-truncation");
        assert!(f[0].message.contains("u32"));
    }

    #[test]
    fn try_from_guard_suppresses() {
        let f = run(
            "fn enc(&mut self, v: &[u8]) { let n = u32::try_from(v.len()).unwrap_or(u32::MAX); \
             self.u32(n); let w = v.len() as u32; }",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn max_bound_check_suppresses() {
        let f = run("fn dec(&mut self, n: usize) -> Result<u16> { \
             if n > u16::MAX as usize { return Err(Error::Codec); } Ok(n as u16) }");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn literal_and_widening_casts_ignored() {
        let f = run("fn f(x: u8) -> usize { let a = 0 as u32; let b = x as usize; b }");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn guard_must_precede_the_cast() {
        let f = run("fn f(n: usize) -> u16 { let x = n as u16; let _ = u16::try_from(n); x }");
        assert_eq!(f.len(), 1, "guard after the cast does not help");
    }

    #[test]
    fn test_code_is_exempt() {
        let f = run("#[cfg(test)]\nmod t { fn f(n: usize) -> u16 { n as u16 } }");
        assert!(f.is_empty(), "{f:?}");
    }
}
