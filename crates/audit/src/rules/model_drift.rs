//! `model-drift`: the evented runtime may not outgrow its model check.
//!
//! PR 8's `interleave::SlotModel` proves the `Slot` wakeup protocol
//! (`crates/mom/src/runtime/evented.rs`) free of lost wakeups and
//! step-after-dead races — but only for the protocol *as modeled*. The
//! proof rots silently the day someone adds an atomic flag, a lock or a
//! queue operation to the shard loop without teaching the model about
//! it: the explorer still passes, now proving the wrong protocol.
//!
//! This rule closes that gap structurally. It statically extracts the
//! shared-memory access set of the runtime — every `field.method(..)`
//! call where `field` is a struct field of atomic/lock/channel type and
//! `method` is a synchronization operation — restricted to functions
//! reachable from the configured entry points (`run_ready_server`,
//! `schedule`, the worker/timer loops, `send_cmd`), and fails if
//! [`COVERED_ACCESSES`](crate::interleave::COVERED_ACCESSES) — the
//! model's declared action list — no longer covers it. The reverse
//! drift (a declared access that vanished from the code) is reported as
//! a stale-coverage finding, the same contract as a stale allowlist
//! entry.
//!
//! Reachability deliberately stops at `drop`: `std::mem::drop(guard)`
//! shares its simple name with every `Drop` impl in the name-merged
//! call graph, and following it would pull shutdown-only teardown
//! accesses (`stop.store` in `halt`) into the modeled window.

use std::collections::{BTreeSet, VecDeque};

use crate::interleave::COVERED_ACCESSES;
use crate::lexer::TokKind;
use crate::source::{match_brace, SourceFile};
use crate::tree::{enclosing_fn, fn_spans, CallGraph};
use crate::{Config, Finding, Workspace};

/// Method names that constitute a shared-memory protocol access when
/// called on an atomic / lock / channel field.
const ACCESS_METHODS: &[&str] = &[
    "compare_exchange",
    "compare_exchange_weak",
    "fetch_add",
    "fetch_and",
    "fetch_or",
    "fetch_sub",
    "fetch_update",
    "fetch_xor",
    "is_empty",
    "load",
    "lock",
    "read",
    "recv",
    "recv_timeout",
    "send",
    "store",
    "swap",
    "try_lock",
    "try_read",
    "try_recv",
    "try_send",
    "try_write",
    "write",
];

/// Type-name fragments that mark a struct field as shared protocol
/// state.
const SHARED_TYPE_MARKERS: &[&str] =
    &["Atomic", "Condvar", "Mutex", "Receiver", "RwLock", "Sender"];

/// Struct fields of `file` whose declared type mentions an atomic, lock
/// or channel marker.
fn shared_fields(file: &SourceFile) -> BTreeSet<String> {
    let toks = &file.toks;
    let mut out = BTreeSet::new();
    let mut i = 0usize;
    while i < toks.len() {
        if !toks[i].is_ident("struct") {
            i += 1;
            continue;
        }
        // Find the body `{` (tuple structs and unit structs have none).
        let mut j = i + 1;
        while j < toks.len()
            && !toks[j].is_punct('{')
            && !toks[j].is_punct(';')
            && !toks[j].is_punct('(')
        {
            j += 1;
        }
        if j >= toks.len() || !toks[j].is_punct('{') {
            i = j.max(i + 1);
            continue;
        }
        let Some(close) = match_brace(toks, j) else {
            i = j + 1;
            continue;
        };
        let mut k = j + 1;
        while k < close {
            // A field is `name :` where the colon is not part of `::`.
            let is_field = toks[k].kind == TokKind::Ident
                && toks.get(k + 1).map(|t| t.is_punct(':')).unwrap_or(false)
                && !toks.get(k + 2).map(|t| t.is_punct(':')).unwrap_or(false);
            if !is_field {
                k += 1;
                continue;
            }
            let name = toks[k].text.clone();
            // Scan the type to the field-separating comma, tracking
            // nesting so `HashMap<K, V>` commas don't end the field.
            let mut depth = 0i32;
            let mut t = k + 2;
            let mut shared = false;
            while t < close {
                let tok = &toks[t];
                if tok.is_punct('<') || tok.is_punct('(') || tok.is_punct('[') {
                    depth += 1;
                } else if tok.is_punct('>') || tok.is_punct(')') || tok.is_punct(']') {
                    depth -= 1;
                } else if tok.is_punct(',') && depth <= 0 {
                    break;
                } else if tok.kind == TokKind::Ident
                    && SHARED_TYPE_MARKERS.iter().any(|m| tok.text.contains(m))
                {
                    shared = true;
                }
                t += 1;
            }
            if shared {
                out.insert(name);
            }
            k = t + 1;
        }
        i = close + 1;
    }
    out
}

/// Forward reachability over callee edges with barrier names the walk
/// never crosses.
fn reachable_excluding(graph: &CallGraph, seeds: &[&str], blocked: &[&str]) -> BTreeSet<String> {
    let mut set: BTreeSet<String> = seeds
        .iter()
        .filter(|s| !blocked.contains(s))
        .map(|s| (*s).to_owned())
        .collect();
    let mut queue: VecDeque<String> = set.iter().cloned().collect();
    while let Some(name) = queue.pop_front() {
        if let Some(callees) = graph.callees.get(&name) {
            for c in callees {
                if blocked.iter().any(|b| b == c) {
                    continue;
                }
                if set.insert(c.clone()) {
                    queue.push_back(c.clone());
                }
            }
        }
    }
    set
}

/// Runs the rule over the workspace.
pub fn check(ws: &Workspace, config: &Config) -> Vec<Finding> {
    let Some(file) = ws.file(config.model_file) else {
        return Vec::new(); // synthetic trees without the runtime
    };
    let covered: BTreeSet<&str> = COVERED_ACCESSES.iter().copied().collect();
    let fields = shared_fields(file);
    let graph = CallGraph::build([file]);
    let reachable = reachable_excluding(&graph, &config.model_entries, &["drop"]);
    let spans = fn_spans(file);
    let toks = &file.toks;
    let mut seen: BTreeSet<String> = BTreeSet::new();
    let mut out = Vec::new();
    for i in file.non_test_indices().collect::<Vec<_>>() {
        let t = &toks[i];
        if t.kind != TokKind::Ident || !fields.contains(&t.text) {
            continue;
        }
        if !toks.get(i + 1).map(|x| x.is_punct('.')).unwrap_or(false) {
            continue;
        }
        let Some(m) = toks.get(i + 2) else { continue };
        if m.kind != TokKind::Ident || !ACCESS_METHODS.contains(&m.text.as_str()) {
            continue;
        }
        if !toks.get(i + 3).map(|x| x.is_punct('(')).unwrap_or(false) {
            continue;
        }
        let Some(f) = enclosing_fn(&spans, i) else {
            continue;
        };
        if f.is_test || !reachable.contains(&f.name) {
            continue;
        }
        let desc = format!("{}.{}", t.text, m.text);
        seen.insert(desc.clone());
        if !covered.contains(desc.as_str()) {
            out.push(Finding {
                rule: super::MODEL_DRIFT,
                file: file.rel.clone(),
                line: m.line,
                message: format!(
                    "shared-memory access `{desc}` is reachable from the evented shard loop \
                     (via `{}`) but has no covering action in `interleave::SlotModel` — the \
                     PR 8 interleaving proof no longer describes this protocol; model the \
                     access (add a transition and extend COVERED_ACCESSES in \
                     crates/audit/src/interleave.rs) or justify inline",
                    f.name
                ),
                line_text: file.trimmed_line(m.line).to_owned(),
            });
        }
    }
    for c in &covered {
        if !seen.contains(*c) {
            out.push(Finding {
                rule: super::MODEL_DRIFT,
                file: file.rel.clone(),
                line: 1,
                message: format!(
                    "`{c}` is declared covered by `interleave::COVERED_ACCESSES` but no such \
                     access is reachable from the evented entry points any more — the model \
                     checks a transition the code no longer has; remove the stale entry"
                ),
                line_text: file.trimmed_line(1).to_owned(),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const MODEL_FILE: &str = "crates/mom/src/runtime/evented.rs";

    fn config() -> Config {
        Config::for_aaa_workspace()
    }

    fn ws(files: &[(&str, &str)]) -> Workspace {
        Workspace::from_files(
            files
                .iter()
                .map(|(r, t)| ((*r).to_owned(), (*t).to_owned()))
                .collect(),
        )
    }

    /// A miniature evented runtime exercising every covered access, so
    /// the stale-coverage leg stays quiet and tests can add drift on top.
    fn covered_runtime(extra_field: &str, extra_body: &str) -> String {
        format!(
            "struct Slot {{\n\
                 scheduled: AtomicBool,\n\
                 dead: AtomicBool,\n\
                 cmd_tx: Sender<Command>,\n\
                 cmd_rx: Receiver<Command>,\n\
                 state: Mutex<SlotState>,\n\
                 deadline_us: AtomicU64,\n\
                 {extra_field}\n\
             }}\n\
             struct PoolShared {{\n\
                 runq_tx: Sender<usize>,\n\
                 runq_rx: Receiver<usize>,\n\
                 stop: AtomicBool,\n\
             }}\n\
             impl PoolShared {{\n\
                 fn schedule(&self, i: usize) {{\n\
                     if self.slots[i].dead.load(o) {{ return; }}\n\
                     if !self.slots[i].scheduled.swap(true, o) {{ let _ = self.runq_tx.send(i); }}\n\
                 }}\n\
                 fn run_ready_server(&self, slot: &Slot) {{\n\
                     slot.scheduled.store(false, o);\n\
                     if slot.dead.load(o) {{ return; }}\n\
                     let Some(mut g) = slot.state.try_lock() else {{ return; }};\n\
                     while let Ok(c) = slot.cmd_rx.try_recv() {{\n\
                         slot.dead.store(true, o);\n\
                         slot.deadline_us.store(0, o);\n\
                     }}\n\
                     {extra_body}\n\
                     if !slot.cmd_rx.is_empty() {{ self.schedule(0); }}\n\
                 }}\n\
                 fn worker(&self) {{\n\
                     while !self.stop.load(o) {{ let _ = self.runq_rx.recv_timeout(t); }}\n\
                 }}\n\
                 fn timer(&self, slot: &Slot) {{\n\
                     while !self.stop.load(o) {{\n\
                         let due = slot.deadline_us.load(o);\n\
                         let _ = slot.deadline_us.compare_exchange(due, x, o, o);\n\
                     }}\n\
                 }}\n\
                 fn send_cmd(&self, slot: &Slot) {{\n\
                     if slot.dead.load(o) {{ return; }}\n\
                     let _ = slot.cmd_tx.send(c);\n\
                 }}\n\
             }}\n"
        )
    }

    #[test]
    fn covered_runtime_is_clean() {
        let w = ws(&[(MODEL_FILE, &covered_runtime("", ""))]);
        let f = check(&w, &config());
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn new_atomic_without_model_action_is_flagged() {
        let w = ws(&[(
            MODEL_FILE,
            &covered_runtime("paused: AtomicBool,", "slot.paused.store(true, o);"),
        )]);
        let f = check(&w, &config());
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "model-drift");
        assert!(f[0].message.contains("paused.store"), "{}", f[0].message);
        assert!(f[0].message.contains("run_ready_server"));
    }

    #[test]
    fn access_outside_the_modeled_window_is_ignored() {
        // `halt` is not reachable from the entry points (the only route
        // is through `drop`, which is a barrier), so its accesses are
        // not the model's problem.
        let extra = "";
        let src = format!(
            "{}impl PoolShared {{\n\
                 fn halt(&self) {{ self.stop.store(true, o); }}\n\
             }}\n\
             impl Drop for EventedPool {{\n\
                 fn drop(&mut self) {{ self.halt(); }}\n\
             }}\n",
            covered_runtime(extra, "")
        );
        let w = ws(&[(MODEL_FILE, &src)]);
        let f = check(&w, &config());
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn removed_access_makes_coverage_stale() {
        // Drop the timer fn entirely: the CAS and timer-load accesses
        // disappear, so their COVERED_ACCESSES entries go stale.
        let src = covered_runtime("", "").replace(
            "fn timer(&self, slot: &Slot) {",
            "fn timer_disabled(&self, slot: &Slot) {",
        );
        let w = ws(&[(MODEL_FILE, &src)]);
        let f = check(&w, &config());
        assert!(
            f.iter()
                .any(|x| x.message.contains("deadline_us.compare_exchange")
                    && x.message.contains("stale")),
            "{f:?}"
        );
    }

    #[test]
    fn local_variables_with_access_names_are_not_fields() {
        let src = format!(
            "{}impl PoolShared {{\n\
                 fn helper(&self) {{ let drained = Vec::new(); if drained.is_empty() {{ }} }}\n\
             }}\n",
            covered_runtime("", "self.helper();")
        );
        let w = ws(&[(MODEL_FILE, &src)]);
        let f = check(&w, &config());
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn absent_model_file_is_fine() {
        let w = ws(&[("crates/mom/src/other.rs", "fn f() {}")]);
        assert!(check(&w, &config()).is_empty());
    }
}
