//! `lock-across-send`: never hold a lock guard across a transport send.
//!
//! A `Mutex`/`RwLock` guard held while calling into the transport couples
//! unrelated peers: a slow or blocked TCP write to one neighbour stalls
//! every thread contending for that lock, which in the worst case delays
//! acknowledgements long enough to trigger spurious retransmissions —
//! duplicate suppression keeps delivery exactly-once, but throughput
//! collapses. The rule flags a `let guard = ...lock()/.read()/.write()`
//! binding whose enclosing block performs a `.send(...)`/`.send_batch(...)`
//! call (or names `LinkSender`/`Transport`) before the guard dies; an
//! intervening `drop(guard)` ends the window.

use crate::lexer::TokKind;
use crate::source::SourceFile;
use crate::Finding;

/// Guard-producing method calls (exact `.name()` with no arguments).
const GUARD_METHODS: &[&str] = &["lock", "read", "write"];
/// Transport entry points.
const SEND_METHODS: &[&str] = &["send", "send_batch"];
/// Type names whose mention inside the window also counts.
const SEND_TYPES: &[&str] = &["LinkSender", "Transport"];

/// Runs the rule over one in-scope file.
pub fn check(file: &SourceFile) -> Vec<Finding> {
    let toks = &file.toks;
    // Brace depth of each token (depth *before* processing the token).
    let mut depth_at = Vec::with_capacity(toks.len());
    let mut depth = 0i32;
    for t in toks {
        if t.is_punct('}') {
            depth -= 1;
        }
        depth_at.push(depth);
        if t.is_punct('{') {
            depth += 1;
        }
    }

    let mut out = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        if file.test_mask[i] || !toks[i].is_ident("let") {
            i += 1;
            continue;
        }
        // `let [mut] <guard> = ... ;` — find the bound name.
        let mut j = i + 1;
        if j < toks.len() && toks[j].is_ident("mut") {
            j += 1;
        }
        if j >= toks.len() || toks[j].kind != TokKind::Ident {
            i += 1;
            continue;
        }
        let guard_name = toks[j].text.clone();
        let let_line = toks[i].line;
        let let_depth = depth_at[i];
        // Statement end: first `;` back at the let's depth.
        let mut stmt_end = j;
        while stmt_end < toks.len() {
            if toks[stmt_end].is_punct(';') && depth_at[stmt_end] <= let_depth {
                break;
            }
            stmt_end += 1;
        }
        // Does the initializer acquire a guard? (`.lock()`, `.read()`,
        // `.write()` with empty argument lists.)
        let acquires = (j..stmt_end.saturating_sub(2)).any(|k| {
            toks[k].is_punct('.')
                && toks[k + 1].kind == TokKind::Ident
                && GUARD_METHODS.contains(&toks[k + 1].text.as_str())
                && toks[k + 2].is_punct('(')
                && toks.get(k + 3).map(|t| t.is_punct(')')).unwrap_or(false)
        });
        if !acquires {
            i = stmt_end.max(i) + 1;
            continue;
        }
        // Window: from the end of the statement to the close of the
        // enclosing block (depth drops below the let's depth), ended early
        // by `drop(<guard>)`.
        let mut k = stmt_end + 1;
        while k < toks.len() && depth_at[k] >= let_depth {
            let t = &toks[k];
            if t.is_ident("drop")
                && k + 2 < toks.len()
                && toks[k + 1].is_punct('(')
                && toks[k + 2].is_ident(&guard_name)
            {
                break;
            }
            let sendish = (t.kind == TokKind::Ident && SEND_TYPES.contains(&t.text.as_str()))
                || (t.is_punct('.')
                    && k + 2 < toks.len()
                    && toks[k + 1].kind == TokKind::Ident
                    && SEND_METHODS.contains(&toks[k + 1].text.as_str())
                    && toks[k + 2].is_punct('('));
            if sendish {
                out.push(Finding {
                    rule: super::LOCK_ACROSS_SEND,
                    file: file.rel.clone(),
                    line: t.line,
                    message: format!(
                        "transport send while lock guard `{guard_name}` (bound on line \
                         {let_line}) is still alive — drop the guard before sending, or a \
                         blocked peer stalls every thread behind this lock"
                    ),
                    line_text: file.trimmed_line(t.line).to_owned(),
                });
                break; // one finding per guard is enough
            }
            k += 1;
        }
        i = stmt_end + 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> Vec<Finding> {
        check(&SourceFile::parse("crates/net/src/x.rs", src))
    }

    #[test]
    fn flags_send_under_guard() {
        let f = run("fn f() { let g = self.conns.lock(); transport.send(to, bytes); }");
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains('g'));
    }

    #[test]
    fn drop_ends_the_window() {
        let f = run("fn f() { let g = self.conns.lock(); drop(g); transport.send(to, b); }");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn scope_end_ends_the_window() {
        let f = run("fn f() { { let g = m.lock(); g.touch(); } transport.send(to, b); }");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn rwlock_write_guard_counts() {
        let f = run("fn f() { let w = table.write(); link.send_batch(to, &w.bufs); }");
        assert_eq!(f.len(), 1);
    }

    #[test]
    fn io_read_with_args_is_not_a_guard() {
        let f = run("fn f() { let n = stream.read(&mut buf); transport.send(to, b); }");
        assert!(f.is_empty(), "{f:?}");
    }
}
