//! `stamp-flow`: every message leaving a server must carry a causal stamp.
//!
//! The paper's global-causality theorem (§4.3) quantifies over *messages*:
//! per-domain causal delivery composes into global causal delivery only if
//! every inter-server send flows through `CausalState::stamp_send` (the
//! single stamping entry point; batching is an argument, not a second
//! name). One raw `Transport::send` that bypasses the
//! stamping path produces a frame the receiver cannot order — delivery
//! still happens, causality silently does not. That failure mode is
//! invisible to tests that only count deliveries, which is why it gets a
//! structural rule instead of a code-review convention.
//!
//! The rule finds transport-shaped call sites outside `aaa-net` —
//! `.send(to, bytes)` / `.send_batch(to, batch)` (two arguments, which
//! distinguishes the transport from one-argument mpsc sends and
//! three-argument `Mom::send`) and `.buffer(payload, now)` — and demands
//! that each is *dominated by stamping*: the enclosing function, one of
//! its callees (transitively), or one of its transitive callers must call
//! a `stamp_send*` seed. The call graph is simple-name based
//! ([`CallGraph`]); name collisions only ever widen the covered set, so
//! the rule errs toward missing an exotic violation rather than crying
//! wolf on a sound one.

use std::collections::BTreeSet;

use crate::lexer::TokKind;
use crate::source::SourceFile;
use crate::tree::{arg_count, enclosing_fn, fn_spans, CallGraph};
use crate::{Config, Finding, Workspace};

/// Transport-shaped method names with the argument count that makes them
/// a raw send.
const SEND_METHODS: &[(&str, usize)] = &[("send", 2), ("send_batch", 2), ("buffer", 2)];

/// Runs the rule over the workspace.
pub fn check(ws: &Workspace, config: &Config) -> Vec<Finding> {
    let in_scope: Vec<&SourceFile> = ws
        .files
        .iter()
        .filter(|f| config.stamp_scopes.iter().any(|s| f.rel.starts_with(s)))
        .collect();
    let graph = CallGraph::build(in_scope.iter().copied());
    // Functions that (transitively) call a stamping seed. The send-method
    // names themselves are barriers: a workspace `fn send` that happens to
    // reach stamping must not make every raw `.send(..)` site look covered
    // through the name merge.
    let send_names: Vec<&str> = SEND_METHODS.iter().map(|(m, _)| *m).collect();
    let stamping: BTreeSet<String> = graph.reaching_excluding(&config.stamp_seeds, &send_names);

    let mut out = Vec::new();
    for file in &in_scope {
        let toks = &file.toks;
        let spans = fn_spans(file);
        for i in file.non_test_indices().collect::<Vec<_>>() {
            if !toks[i].is_punct('.') {
                continue;
            }
            let Some(name_tok) = toks.get(i + 1) else {
                continue;
            };
            if name_tok.kind != TokKind::Ident {
                continue;
            }
            let Some(&(_, want_args)) = SEND_METHODS.iter().find(|(m, _)| name_tok.is_ident(m))
            else {
                continue;
            };
            if !toks.get(i + 2).map(|t| t.is_punct('(')).unwrap_or(false) {
                continue;
            }
            if arg_count(toks, i + 2) != Some(want_args) {
                continue;
            }
            let covered = match enclosing_fn(&spans, i + 1) {
                Some(f) => {
                    stamping.contains(&f.name)
                        || graph
                            .transitive_callers(&f.name)
                            .iter()
                            .any(|c| stamping.contains(c))
                }
                None => false,
            };
            if covered {
                continue;
            }
            let enclosing = enclosing_fn(&spans, i + 1)
                .map(|f| format!("`{}`", f.name))
                .unwrap_or_else(|| "<no enclosing fn>".to_owned());
            out.push(Finding {
                rule: super::STAMP_FLOW,
                file: file.rel.clone(),
                line: name_tok.line,
                message: format!(
                    "`.{}(..)` reaches the transport from {enclosing} without a dominating \
                     `stamp_send*` call in this function, its callees or its callers — an \
                     unstamped frame breaks the §4.3 causality argument invisibly; route the \
                     message through the channel/stamping path",
                    name_tok.text
                ),
                line_text: file.trimmed_line(name_tok.line).to_owned(),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> Config {
        Config::for_aaa_workspace()
    }

    fn ws(files: &[(&str, &str)]) -> Workspace {
        Workspace::from_files(
            files
                .iter()
                .map(|(r, t)| ((*r).to_owned(), (*t).to_owned()))
                .collect(),
        )
    }

    #[test]
    fn unstamped_send_is_flagged() {
        let w = ws(&[(
            "crates/mom/src/x.rs",
            "fn sneaky(t: &dyn Transport) { t.send(to, bytes); }",
        )]);
        let f = check(&w, &config());
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "stamp-flow");
        assert!(f[0].message.contains("sneaky"));
    }

    #[test]
    fn stamping_in_same_fn_covers() {
        let w = ws(&[(
            "crates/mom/src/x.rs",
            "fn ok(&mut self) { let s = self.clock.stamp_send(to); self.link.send(to, s); }",
        )]);
        assert!(check(&w, &config()).is_empty());
    }

    #[test]
    fn stamping_in_callee_covers() {
        let w = ws(&[(
            "crates/mom/src/x.rs",
            "fn take(&mut self) { self.clock.stamp_send(to, Batching::Grouped); }\n\
             fn flush(&mut self) { let ts = self.take(); self.link.buffer(payload, now); }",
        )]);
        assert!(check(&w, &config()).is_empty());
    }

    #[test]
    fn stamping_in_caller_covers() {
        let w = ws(&[(
            "crates/mom/src/x.rs",
            "fn raw(&mut self) { self.ep.send(to, bytes); }\n\
             fn step(&mut self) { self.clock.stamp_send(to); self.raw(); }",
        )]);
        assert!(check(&w, &config()).is_empty());
    }

    #[test]
    fn arity_distinguishes_mpsc_and_mom_sends() {
        let w = ws(&[(
            "crates/mom/src/x.rs",
            "fn f(&self) { reply.send(result); mom.send(a, b, c); tx.send(Command::Go { x, y }); }",
        )]);
        assert!(check(&w, &config()).is_empty());
    }

    #[test]
    fn net_crate_is_exempt() {
        let w = ws(&[(
            "crates/net/src/x.rs",
            "fn raw(&mut self) { self.ep.send(to, bytes); }",
        )]);
        assert!(check(&w, &config()).is_empty());
    }

    #[test]
    fn test_code_is_exempt() {
        let w = ws(&[(
            "crates/mom/src/x.rs",
            "#[cfg(test)]\nmod t { fn f(tx: &L) { tx.send(payload, now); } }",
        )]);
        assert!(check(&w, &config()).is_empty());
    }
}
