//! `determinism`: the simulator and the clock algebra must be replayable.
//!
//! The discrete-event simulator proves causal-delivery properties by
//! replaying schedules deterministically, and the clock crate's stamp
//! algebra must be a pure function of its inputs (the paper's matrix-clock
//! maintenance, §3). A wall-clock read (`Instant::now`, `SystemTime`) or
//! OS entropy (`thread_rng`, `from_entropy`) smuggled into either crate
//! makes a counterexample unreproducible — route time through the virtual
//! clock (`VTime`) and randomness through a seeded generator instead.

use crate::source::SourceFile;
use crate::Finding;

/// Identifiers that pull in wall-clock time or OS entropy.
const FORBIDDEN: &[(&str, &str)] = &[
    (
        "Instant",
        "wall-clock time; use the virtual clock (`VTime`)",
    ),
    (
        "SystemTime",
        "wall-clock time; use the virtual clock (`VTime`)",
    ),
    (
        "thread_rng",
        "OS entropy; use a seeded `StdRng` owned by the caller",
    ),
    (
        "from_entropy",
        "OS entropy; use a seeded `StdRng` owned by the caller",
    ),
];

/// Runs the rule over one in-scope file.
pub fn check(file: &SourceFile) -> Vec<Finding> {
    let mut out = Vec::new();
    for i in file.non_test_indices() {
        let t = &file.toks[i];
        if t.kind != crate::lexer::TokKind::Ident {
            continue;
        }
        if let Some((name, why)) = FORBIDDEN.iter().find(|(n, _)| t.text == *n) {
            out.push(Finding {
                rule: super::DETERMINISM,
                file: file.rel.clone(),
                line: t.line,
                message: format!(
                    "`{name}` in deterministic code is {why} — replayed schedules must not \
                     observe the host"
                ),
                line_text: file.trimmed_line(t.line).to_owned(),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flags_wall_clock_and_entropy() {
        let src = "fn f() { let t = std::time::Instant::now(); let r = rand::thread_rng(); }";
        let f = check(&SourceFile::parse("crates/sim/src/x.rs", src));
        assert_eq!(f.len(), 2);
        assert!(f[0].message.contains("Instant"));
        assert!(f[1].message.contains("thread_rng"));
    }

    #[test]
    fn test_code_is_exempt() {
        let src = "#[cfg(test)]\nmod tests { fn t() { let t = Instant::now(); } }";
        let f = check(&SourceFile::parse("crates/sim/src/x.rs", src));
        assert!(f.is_empty());
    }
}
