//! `lock-order`: the interprocedural lock-acquisition graph must be a DAG.
//!
//! Two threads that take the same pair of locks in opposite orders can
//! deadlock — and in this middleware a deadlocked shard worker freezes
//! every server multiplexed onto it, which the chaos harness reads as
//! total message loss. The rule computes, from the guard-tracking layer
//! ([`guards`](crate::guards)), an edge `A → B` whenever some function
//! acquires resource `B` (directly, or anywhere in the call tree of a
//! function it calls) while a guard for resource `A` is live, then
//! reports every cycle in that graph, naming the full cycle and the
//! source location that closed it.
//!
//! Resources are name-merged (`guards` module docs). To keep the merge
//! from manufacturing phantom cycles, transitive edges only follow
//! calls whose callee name has **exactly one** definition in scope: a
//! call to `len`/`send`/`flush` merges dozens of unrelated methods and
//! would union their lock sets into every caller, so ambiguous names
//! contribute nothing transitively (direct acquisitions and guards
//! returned by helpers still count exactly). That is a deliberate
//! under-approximation — cycles it misses would need type resolution —
//! and every cycle it does report names concrete witness sites a
//! reviewer can check in minutes. Self-edges (`A → A`) are ignored:
//! re-acquiring the *same named* resource is almost always two distinct
//! locks merged by name, and `parking_lot` re-entrancy bugs deadlock
//! loudly in tests.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use crate::guards::{guard_spans_in, returned_guard_map, ACQUIRE_METHODS};
use crate::source::SourceFile;
use crate::tree::{calls_in, fn_spans};
use crate::{Config, Finding, Workspace};

/// One witness for an ordering edge: where the inner acquisition happens
/// while the outer guard is live.
#[derive(Debug, Clone)]
struct Witness {
    file: String,
    line: u32,
    in_fn: String,
    detail: String,
}

/// Runs the rule over the workspace.
pub fn check(ws: &Workspace, config: &Config) -> Vec<Finding> {
    let in_scope: Vec<&SourceFile> = ws
        .files
        .iter()
        .filter(|f| {
            config
                .concurrency_scopes
                .iter()
                .any(|s| f.rel.starts_with(s))
        })
        .collect();
    let returned = returned_guard_map(in_scope.iter().copied());

    // Direct acquisitions and outgoing calls per function name, plus how
    // many definitions share that name — ambiguous names are barred from
    // the transitive closure (see module docs).
    let mut direct: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    let mut body_calls: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    let mut def_count: BTreeMap<String, usize> = BTreeMap::new();
    // (file, fn span, guard spans), reused for the edge walk.
    let mut per_fn: Vec<(
        &SourceFile,
        crate::tree::FnSpan,
        Vec<crate::guards::GuardSpan>,
    )> = Vec::new();
    for file in &in_scope {
        for span in fn_spans(file) {
            if span.is_test {
                continue;
            }
            let gspans = guard_spans_in(file, &span, &returned);
            let entry = direct.entry(span.name.clone()).or_default();
            for g in &gspans {
                entry.insert(g.resource.clone());
            }
            *def_count.entry(span.name.clone()).or_insert(0) += 1;
            if let Some((s, e)) = span.body {
                let calls = body_calls.entry(span.name.clone()).or_default();
                for c in calls_in(file, s, e) {
                    if !ACQUIRE_METHODS.contains(&c.name.as_str()) {
                        calls.insert(c.name);
                    }
                }
            }
            per_fn.push((file, span, gspans));
        }
    }

    // Transitive acquisitions of a callee name: every resource acquired
    // in its forward call closure, following only unambiguous names.
    // Memoized per name; cycles in the call graph settle to their first
    // visit's partial set, which is enough for edge existence.
    let mut trans_cache: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    fn closure(
        name: &str,
        direct: &BTreeMap<String, BTreeSet<String>>,
        body_calls: &BTreeMap<String, BTreeSet<String>>,
        def_count: &BTreeMap<String, usize>,
        cache: &mut BTreeMap<String, BTreeSet<String>>,
    ) -> BTreeSet<String> {
        if let Some(hit) = cache.get(name) {
            return hit.clone();
        }
        if def_count.get(name).copied().unwrap_or(0) != 1 {
            cache.insert(name.to_owned(), BTreeSet::new());
            return BTreeSet::new();
        }
        // Seed the memo before recursing so call-graph cycles terminate.
        cache.insert(name.to_owned(), BTreeSet::new());
        let mut set = direct.get(name).cloned().unwrap_or_default();
        for callee in body_calls.get(name).into_iter().flatten() {
            set.extend(closure(callee, direct, body_calls, def_count, cache));
        }
        cache.insert(name.to_owned(), set.clone());
        set
    }
    let trans = |name: &str, cache: &mut BTreeMap<String, BTreeSet<String>>| {
        closure(name, &direct, &body_calls, &def_count, cache)
    };

    // Ordering edges A → B with their first witness (deterministic: files
    // and spans are walked in sorted order).
    let mut edges: BTreeMap<(String, String), Witness> = BTreeMap::new();
    for (file, span, gspans) in &per_fn {
        for outer in gspans {
            // Nested direct acquisitions inside the outer guard's span.
            for inner in gspans {
                if inner.acq_tok <= outer.acq_tok || inner.acq_tok >= outer.end {
                    continue;
                }
                add_edge(
                    &mut edges,
                    &outer.resource,
                    &inner.resource,
                    Witness {
                        file: file.rel.clone(),
                        line: inner.line,
                        in_fn: span.name.clone(),
                        detail: format!("acquires `{}` directly", inner.resource),
                    },
                );
            }
            // Calls under the guard: anything the callee's closure locks.
            for call in calls_in(file, outer.acq_tok, outer.end) {
                if ACQUIRE_METHODS.contains(&call.name.as_str()) {
                    continue;
                }
                for res in trans(&call.name, &mut trans_cache) {
                    add_edge(
                        &mut edges,
                        &outer.resource,
                        &res,
                        Witness {
                            file: file.rel.clone(),
                            line: call.line,
                            in_fn: span.name.clone(),
                            detail: format!("calls `{}`, whose call tree locks `{res}`", call.name),
                        },
                    );
                }
            }
        }
    }

    // Cycle detection over the resource graph: for each edge A → B, a
    // path B → … → A closes a cycle. Each cycle is reported once, keyed
    // on its canonical rotation.
    let mut succ: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    for (a, b) in edges.keys() {
        succ.entry(a.as_str()).or_default().insert(b.as_str());
    }
    let mut seen_cycles: BTreeSet<Vec<String>> = BTreeSet::new();
    let mut out = Vec::new();
    for ((a, b), w) in &edges {
        let Some(path) = shortest_path(&succ, b, a) else {
            continue;
        };
        // Cycle: a → b → … → a. `path` runs b → … → a; its last node is
        // `a` again, so strip it before closing the loop. Canonical form
        // rotates the smallest resource to the front so each cycle is
        // reported exactly once.
        let mut cycle: Vec<String> = Vec::with_capacity(path.len());
        cycle.push(a.clone());
        cycle.extend(
            path[..path.len().saturating_sub(1)]
                .iter()
                .map(|s| (*s).to_owned()),
        );
        let canon = canonical_rotation(&cycle);
        if !seen_cycles.insert(canon.clone()) {
            continue;
        }
        let mut names = canon.clone();
        names.push(canon[0].clone());
        let file = ws.file(&w.file);
        out.push(Finding {
            rule: super::LOCK_ORDER,
            file: w.file.clone(),
            line: w.line,
            message: format!(
                "lock-order cycle `{}`: `{}` {} while a `{}` guard is live — two threads \
                 taking these locks in opposite orders can deadlock; acquire them in one \
                 global order or shrink the guard's span (DESIGN.md §15)",
                names.join(" -> "),
                w.in_fn,
                w.detail,
                b
            ),
            line_text: file
                .map(|f| f.trimmed_line(w.line).to_owned())
                .unwrap_or_default(),
        });
    }
    out
}

fn add_edge(edges: &mut BTreeMap<(String, String), Witness>, a: &str, b: &str, witness: Witness) {
    if a == b {
        return;
    }
    edges.entry((a.to_owned(), b.to_owned())).or_insert(witness);
}

/// BFS shortest path `from → … → to` over the successor map (empty path
/// when `from == to` is *not* returned; the caller supplies the closing
/// edge). Returns the node sequence starting at `from`, ending at `to`.
fn shortest_path<'a>(
    succ: &BTreeMap<&'a str, BTreeSet<&'a str>>,
    from: &'a str,
    to: &str,
) -> Option<Vec<&'a str>> {
    let mut prev: BTreeMap<&str, &str> = BTreeMap::new();
    let mut queue = VecDeque::new();
    queue.push_back(from);
    prev.insert(from, from);
    while let Some(n) = queue.pop_front() {
        if n == to {
            let mut path = vec![n];
            let mut cur = n;
            while prev[cur] != cur {
                cur = prev[cur];
                path.push(cur);
            }
            path.reverse();
            return Some(path);
        }
        for next in succ.get(n).into_iter().flatten() {
            if !prev.contains_key(next) {
                prev.insert(next, n);
                queue.push_back(next);
            }
        }
    }
    None
}

/// Rotates `cycle` so its lexicographically smallest element leads.
fn canonical_rotation(cycle: &[String]) -> Vec<String> {
    let min_idx = cycle
        .iter()
        .enumerate()
        .min_by_key(|(_, s)| s.as_str())
        .map(|(i, _)| i)
        .unwrap_or(0);
    let mut out = Vec::with_capacity(cycle.len());
    out.extend_from_slice(&cycle[min_idx..]);
    out.extend_from_slice(&cycle[..min_idx]);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Config;

    fn ws(files: &[(&str, &str)]) -> Workspace {
        Workspace::from_files(
            files
                .iter()
                .map(|(r, t)| ((*r).to_owned(), (*t).to_owned()))
                .collect(),
        )
    }

    #[test]
    fn inversion_across_two_functions_is_a_cycle() {
        let w = ws(&[
            (
                "crates/mom/src/a.rs",
                "fn fwd(&self) { let g = self.routes.lock(); let h = self.peers.lock(); }",
            ),
            (
                "crates/net/src/b.rs",
                "fn rev(&self) { let h = self.peers.lock(); let g = self.routes.lock(); }",
            ),
        ]);
        let f = check(&w, &Config::for_aaa_workspace());
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("peers"), "{}", f[0].message);
        assert!(f[0].message.contains("routes"), "{}", f[0].message);
    }

    #[test]
    fn interprocedural_edge_through_a_callee() {
        let w = ws(&[(
            "crates/mom/src/a.rs",
            "fn outer(&self) { let g = self.routes.lock(); self.helper(); }\n\
             fn helper(&self) { let h = self.peers.lock(); }\n\
             fn rev(&self) { let h = self.peers.lock(); let g = self.routes.lock(); }",
        )]);
        let f = check(&w, &Config::for_aaa_workspace());
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("helper") || f[0].message.contains("directly"));
    }

    #[test]
    fn consistent_order_is_clean() {
        let w = ws(&[(
            "crates/mom/src/a.rs",
            "fn one(&self) { let g = self.routes.lock(); let h = self.peers.lock(); }\n\
             fn two(&self) { let g = self.routes.lock(); let h = self.peers.lock(); }",
        )]);
        let f = check(&w, &Config::for_aaa_workspace());
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn dropped_guard_opens_no_edge() {
        let w = ws(&[(
            "crates/mom/src/a.rs",
            "fn fwd(&self) { let g = self.routes.lock(); drop(g); let h = self.peers.lock(); }\n\
             fn rev(&self) { let h = self.peers.lock(); drop(h); let g = self.routes.lock(); }",
        )]);
        let f = check(&w, &Config::for_aaa_workspace());
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn returned_guard_counts_in_the_caller() {
        let w = ws(&[(
            "crates/net/src/a.rs",
            "fn table(&self) -> MutexGuard<'_, V> { self.routes.lock() }\n\
             fn fwd(&self) { let t = self.table(); let h = self.peers.lock(); }\n\
             fn rev(&self) { let h = self.peers.lock(); let t = self.table(); }",
        )]);
        let f = check(&w, &Config::for_aaa_workspace());
        assert_eq!(f.len(), 1, "{f:?}");
    }

    #[test]
    fn out_of_scope_files_are_exempt() {
        let w = ws(&[(
            "crates/topology/src/a.rs",
            "fn fwd(&self) { let g = self.a.lock(); let h = self.b.lock(); }\n\
             fn rev(&self) { let h = self.b.lock(); let g = self.a.lock(); }",
        )]);
        let f = check(&w, &Config::for_aaa_workspace());
        assert!(f.is_empty(), "{f:?}");
    }
}
