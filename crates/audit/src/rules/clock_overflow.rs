//! `clock-overflow`: clock-cell arithmetic must not silently wrap.
//!
//! Matrix/vector clock cells are the very counters whose growth "On
//! reducing the complexity of matrix clocks" bounds — but *bounded
//! storage* does not mean *bounded values*: a long-lived channel
//! increments `SENT[r][c]` on every send, and a wrapped cell makes a
//! *future* message compare as *past*, so the causality predicate
//! (`stamp == DELIV + 1`, paper §4.2) postpones it forever or, worse,
//! delivers it early. In release builds Rust's `+` wraps silently.
//!
//! The rule flags, in non-test code of the clocks crate:
//!
//! - `<cell> += ...` where the statement's left-hand side mentions a
//!   clock-cell field (`cells`, `deliv`, `counts`, ...);
//! - binary `<cell-expr> + ...` / `... + <cell-expr>` where the operand
//!   chain next to the `+` dereferences a clock-cell field.
//!
//! Remediation is `saturating_add` (a saturated clock stays causally
//! *late*, which only delays delivery — never reorders it) or
//! `checked_add` with an explicit protocol error.

use crate::lexer::{Tok, TokKind};
use crate::source::SourceFile;
use crate::Finding;

fn finding(file: &SourceFile, line: u32, what: &str) -> Finding {
    Finding {
        rule: super::CLOCK_OVERFLOW,
        file: file.rel.clone(),
        line,
        message: format!(
            "{what} on a clock cell can wrap in release builds, making future messages \
             compare as past — use `saturating_add` (late, never reordered) or `checked_add` \
             with a protocol error"
        ),
        line_text: file.trimmed_line(line).to_owned(),
    }
}

/// Walks left from `toks[idx]` (exclusive) over a postfix expression
/// chain (`a.b.c(..)[..]`) and collects the identifiers on the chain's
/// spine (not inside argument lists / index brackets).
fn left_chain_idents(toks: &[Tok], idx: usize) -> Vec<String> {
    let mut idents = Vec::new();
    let mut k = idx as isize - 1;
    while k >= 0 {
        let t = &toks[k as usize];
        if t.is_punct(']') {
            k = match back_match(toks, k as usize, '[', ']') {
                Some(open) => open as isize - 1,
                None => break,
            };
            continue;
        }
        if t.is_punct(')') {
            k = match back_match(toks, k as usize, '(', ')') {
                Some(open) => open as isize - 1,
                None => break,
            };
            continue;
        }
        if t.kind == TokKind::Ident || t.kind == TokKind::Number {
            if t.kind == TokKind::Ident {
                idents.push(t.text.clone());
            }
            // Continue only through `.` / `::` chain links.
            if k >= 1 && toks[k as usize - 1].is_punct('.') {
                k -= 2;
                continue;
            }
            if k >= 2 && toks[k as usize - 1].is_punct(':') && toks[k as usize - 2].is_punct(':') {
                k -= 3;
                continue;
            }
        }
        break;
    }
    idents
}

/// Walks right from `toks[idx]` (exclusive) over a postfix chain,
/// collecting spine identifiers.
fn right_chain_idents(toks: &[Tok], idx: usize) -> Vec<String> {
    let mut idents = Vec::new();
    let mut k = idx + 1;
    // Optional leading `self.` / path segments are part of the chain.
    while k < toks.len() {
        let t = &toks[k];
        if t.kind == TokKind::Ident {
            idents.push(t.text.clone());
            k += 1;
            // Postfix continuations: `.x`, `::x`, `( .. )`, `[ .. ]`.
            loop {
                if k < toks.len() && toks[k].is_punct('.') {
                    k += 1;
                    break; // next ident handled by outer loop
                }
                if k + 1 < toks.len() && toks[k].is_punct(':') && toks[k + 1].is_punct(':') {
                    k += 2;
                    break;
                }
                if k < toks.len() && toks[k].is_punct('(') {
                    match crate::tree::match_paren(toks, k) {
                        Some(close) => k = close + 1,
                        None => return idents,
                    }
                    continue;
                }
                if k < toks.len() && toks[k].is_punct('[') {
                    match crate::source::match_bracket(toks, k) {
                        Some(close) => k = close + 1,
                        None => return idents,
                    }
                    continue;
                }
                return idents;
            }
            continue;
        }
        if t.kind == TokKind::Number {
            k += 1;
            continue;
        }
        break;
    }
    idents
}

/// Given `toks[close]` is the closing delimiter, scans backward for the
/// matching opener.
fn back_match(toks: &[Tok], close: usize, open_c: char, close_c: char) -> Option<usize> {
    let mut depth = 0i32;
    for k in (0..=close).rev() {
        if toks[k].is_punct(close_c) {
            depth += 1;
        } else if toks[k].is_punct(open_c) {
            depth -= 1;
            if depth == 0 {
                return Some(k);
            }
        }
    }
    None
}

/// Runs the rule over one in-scope file. `cells` is the configured list
/// of clock-state field names.
pub fn check(file: &SourceFile, cells: &[&str]) -> Vec<Finding> {
    let toks = &file.toks;
    let hit = |idents: &[String]| idents.iter().any(|i| cells.contains(&i.as_str()));
    let mut out = Vec::new();
    for i in file.non_test_indices().collect::<Vec<_>>() {
        if !toks[i].is_punct('+') {
            continue;
        }
        let compound = toks.get(i + 1).map(|t| t.is_punct('=')).unwrap_or(false);
        if compound {
            // `lhs += rhs` — scan the statement's left-hand side back to
            // the statement boundary for a clock-cell field.
            let mut start = i;
            while start > 0 {
                let t = &toks[start - 1];
                if t.is_punct(';') || t.is_punct('{') || t.is_punct('}') {
                    break;
                }
                start -= 1;
            }
            let lhs: Vec<String> = toks[start..i]
                .iter()
                .filter(|t| t.kind == TokKind::Ident)
                .map(|t| t.text.clone())
                .collect();
            if hit(&lhs) {
                out.push(finding(file, toks[i].line, "unchecked `+=`"));
            }
            continue;
        }
        // Binary `+`: needs a runtime operand to its left (`ident`,
        // `)` or `]`) so unary `+x` and `1 + 2` in const contexts with
        // identifiers still work out naturally.
        let is_binary = i > 0
            && (toks[i - 1].kind == TokKind::Ident
                || toks[i - 1].kind == TokKind::Number
                || toks[i - 1].is_punct(')')
                || toks[i - 1].is_punct(']'));
        if !is_binary {
            continue;
        }
        if hit(&left_chain_idents(toks, i)) || hit(&right_chain_idents(toks, i)) {
            out.push(finding(file, toks[i].line, "unchecked `+`"));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const CELLS: &[&str] = &["cells", "deliv", "counts", "state", "now", "delivered"];

    fn run(src: &str) -> Vec<Finding> {
        check(&SourceFile::parse("crates/clocks/src/x.rs", src), CELLS)
    }

    #[test]
    fn flags_compound_increment() {
        let f = run("fn inc(&mut self, i: usize) { self.cells[i] += 1; }");
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("saturating_add"));
    }

    #[test]
    fn flags_plain_plus_on_cell_read() {
        let f = run("fn next(&self, f: usize) -> u64 { self.deliv[f] + 1 }");
        assert_eq!(f.len(), 1, "{f:?}");
    }

    #[test]
    fn flags_plus_after_method_chain() {
        let f = run("fn merge(&mut self, remote: u64) { self.now = self.now.max(remote) + 1; }");
        assert_eq!(f.len(), 1, "{f:?}");
    }

    #[test]
    fn flags_cell_on_right_of_plus() {
        let f = run("fn f(&self) -> u64 { 1 + self.state }");
        assert_eq!(f.len(), 1, "{f:?}");
    }

    #[test]
    fn cursor_and_index_arithmetic_is_fine() {
        let f = run(
            "fn idx(&self, r: usize, c: usize) -> u64 { self.cells[r * self.n + c] }\n\
             fn read(&mut self) { let mut at = 0; at += 1; let x = at + 4; }",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn saturating_add_is_fine() {
        let f =
            run("fn inc(&mut self, i: usize) { self.cells[i] = self.cells[i].saturating_add(1); }");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn test_code_is_exempt() {
        let f = run("#[cfg(test)]\nmod t { fn f(c: &mut C) { c.state += 1; } }");
        assert!(f.is_empty(), "{f:?}");
    }
}
