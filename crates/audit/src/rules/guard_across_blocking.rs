//! `guard-across-blocking`: no guard live across a blocking call.
//!
//! Subsumes and retires PR 3's proximity-based `lock-across-send`. Where
//! the old rule guessed from a `let g = ..lock()` and a `.send(..)` in
//! the same block, this one consumes real liveness spans from the
//! guard-tracking layer ([`guards`](crate::guards)) — including guards a
//! helper returns up the call chain — and flags any blocking primitive
//! (`sleep`, `recv`, `park`, `wait`, …), channel receive or transport
//! `send*`/`write_all`/`connect*` executed while a guard is live. A
//! blocked call under a lock couples unrelated peers: every thread
//! contending for that lock inherits the stall, acknowledgements slip
//! past the retransmission deadline, and duplicate-suppression turns the
//! storm into throughput collapse rather than corruption — the paper's
//! causal guarantee survives, its scalability claim does not.
//!
//! The check is intraprocedural over the guard's span (transitive
//! blocking through a whole call tree is `block-in-step`'s job, with its
//! scoped entry set); what makes it interprocedural is guard *liveness* —
//! a `MutexGuard` returned by a helper keeps its span alive in the
//! caller. Intentional couplings (a per-socket write lock serializing a
//! TCP stream, group-commit file I/O under the store lock) carry inline
//! `// audit:allow(guard-across-blocking)` justifications.

use crate::guards::{guard_spans_in, returned_guard_map};
use crate::source::SourceFile;
use crate::{Config, Finding, Workspace};

/// Runs the rule over the workspace.
pub fn check(ws: &Workspace, config: &Config) -> Vec<Finding> {
    let in_scope: Vec<&SourceFile> = ws
        .files
        .iter()
        .filter(|f| {
            config
                .concurrency_scopes
                .iter()
                .any(|s| f.rel.starts_with(s))
        })
        .collect();
    let returned = returned_guard_map(in_scope.iter().copied());
    let mut out = Vec::new();
    for file in &in_scope {
        let toks = &file.toks;
        for span in crate::tree::fn_spans(file) {
            if span.is_test {
                continue;
            }
            for g in guard_spans_in(file, &span, &returned) {
                let end = g.end.min(toks.len());
                for i in g.acq_tok + 1..end {
                    if file.test_mask.get(i).copied().unwrap_or(false) {
                        continue;
                    }
                    let t = &toks[i];
                    if !config.guard_blocking.iter().any(|b| t.is_ident(b)) {
                        continue;
                    }
                    // Must be a call, not a macro or a definition.
                    if !toks.get(i + 1).map(|n| n.is_punct('(')).unwrap_or(false) {
                        continue;
                    }
                    if i > 0 && (toks[i - 1].is_punct('!') || toks[i - 1].is_ident("fn")) {
                        continue;
                    }
                    let held = match &g.binding {
                        Some(b) => format!("guard `{b}` on `{}`", g.resource),
                        None => format!("temporary guard on `{}`", g.resource),
                    };
                    out.push(Finding {
                        rule: super::GUARD_ACROSS_BLOCKING,
                        file: file.rel.clone(),
                        line: t.line,
                        message: format!(
                            "blocking `{}` while {held} (acquired line {}) is live in `{}` — \
                             drop the guard first, or every thread contending for `{}` \
                             inherits this stall (DESIGN.md §15)",
                            t.text, g.line, span.name, g.resource
                        ),
                        line_text: file.trimmed_line(t.line).to_owned(),
                    });
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Config;

    fn run(src: &str) -> Vec<Finding> {
        let w = Workspace::from_files(vec![("crates/net/src/x.rs".to_owned(), src.to_owned())]);
        check(&w, &Config::for_aaa_workspace())
    }

    #[test]
    fn send_under_guard_is_flagged() {
        let f = run("fn f(&self) { let g = self.conns.lock(); self.ep.send(to, bytes); }");
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("send"));
        assert!(f[0].message.contains("conns"));
    }

    #[test]
    fn send_batch_under_rwlock_write_is_flagged() {
        let f = run("fn f(&self) { let w = self.table.write(); self.link.send_batch(to, &w.b); }");
        assert_eq!(f.len(), 1, "{f:?}");
    }

    #[test]
    fn drop_before_send_is_clean() {
        let f = run("fn f(&self) { let g = self.conns.lock(); drop(g); self.ep.send(to, b); }");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn scope_exit_before_send_is_clean() {
        let f = run("fn f(&self) { { let g = self.m.lock(); g.touch(); } self.ep.send(to, b); }");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn recv_under_guard_is_flagged() {
        let f = run("fn f(&self) { let g = self.state.lock(); let c = self.rx.recv(); }");
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("recv"));
    }

    #[test]
    fn try_recv_is_not_blocking() {
        let f = run("fn f(&self) { let g = self.state.lock(); let c = self.rx.try_recv(); }");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn returned_guard_keeps_span_alive_in_caller() {
        let f = run(
            "fn table(&self) -> MutexGuard<'_, V> { self.conns.lock() }\n\
             fn f(&self) { let t = self.table(); self.ep.send(to, b); }",
        );
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("conns"), "{}", f[0].message);
    }

    #[test]
    fn inline_allow_suppresses_via_engine() {
        // The rule itself still reports; suppression is apply_suppressions'
        // job — checked here only in so far as the finding carries the
        // line text the allowlist keys on.
        let f = run("fn f(&self) { let g = self.conns.lock(); self.ep.send(to, bytes); }");
        assert!(!f[0].line_text.is_empty());
    }
}
