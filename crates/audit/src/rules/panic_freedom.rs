//! `panic-freedom`: delivery-critical crates must not panic.
//!
//! A panic inside `net`, `mom`, `clocks` or `storage` tears down a server
//! mid-transaction: the channel's exactly-once hand-off (paper §5) assumes
//! a step either commits its whole group or recovers from the persisted
//! image — an `unwrap()` that fires halfway through neither commits nor
//! aborts cleanly. Flagged in non-test code:
//!
//! - `.unwrap()` and `.expect(...)` calls;
//! - the `panic!` / `unreachable!` / `todo!` / `unimplemented!` macros;
//! - indexing by an integer literal (`buf[0]`), the silent cousin of
//!   `unwrap` — prefer `get(..)` with a typed `Error::Codec` return.

use crate::source::SourceFile;
use crate::Finding;

/// Identifiers that look like `x[0]` but are keyword contexts, not
/// indexing expressions.
const NON_INDEX_KEYWORDS: &[&str] = &[
    "in", "return", "if", "else", "match", "break", "while", "loop", "as", "mut", "ref", "move",
    "let", "const", "static",
];

fn finding(file: &SourceFile, line: u32, message: String) -> Finding {
    Finding {
        rule: super::PANIC_FREEDOM,
        file: file.rel.clone(),
        line,
        message,
        line_text: file.trimmed_line(line).to_owned(),
    }
}

/// Runs the rule over one in-scope file.
pub fn check(file: &SourceFile) -> Vec<Finding> {
    let toks = &file.toks;
    let mut out = Vec::new();
    for i in file.non_test_indices().collect::<Vec<_>>() {
        // `.unwrap()` / `.expect(`
        if toks[i].is_punct('.') && i + 2 < toks.len() && toks[i + 2].is_punct('(') {
            let name = &toks[i + 1];
            if name.is_ident("unwrap") || name.is_ident("expect") {
                out.push(finding(
                    file,
                    name.line,
                    format!(
                        "`.{}()` on a delivery-critical path — return a typed `Error` instead \
                         (a panic here aborts a half-committed channel transaction)",
                        name.text
                    ),
                ));
                continue;
            }
        }
        // panic-family macros.
        if i + 1 < toks.len() && toks[i + 1].is_punct('!') {
            let t = &toks[i];
            if t.is_ident("panic")
                || t.is_ident("unreachable")
                || t.is_ident("todo")
                || t.is_ident("unimplemented")
            {
                out.push(finding(
                    file,
                    t.line,
                    format!(
                        "`{}!` on a delivery-critical path — surface a typed `Error` instead",
                        t.text
                    ),
                ));
                continue;
            }
        }
        // Indexing by literal: `ident[ <number> ]`.
        if toks[i].kind == crate::lexer::TokKind::Ident
            && !NON_INDEX_KEYWORDS.contains(&toks[i].text.as_str())
            && i + 3 < toks.len()
            && toks[i + 1].is_punct('[')
            && toks[i + 2].kind == crate::lexer::TokKind::Number
            && toks[i + 3].is_punct(']')
        {
            out.push(finding(
                file,
                toks[i].line,
                format!(
                    "indexing `{}[{}]` by literal can panic on truncated input — \
                     use `.get({})` and return `Error::Codec`",
                    toks[i].text,
                    toks[i + 2].text,
                    toks[i + 2].text
                ),
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> Vec<Finding> {
        check(&SourceFile::parse("crates/net/src/x.rs", src))
    }

    #[test]
    fn flags_unwrap_expect_and_macros() {
        let f = run("fn f() { a.unwrap(); b.expect(\"why\"); panic!(\"no\"); unreachable!() }");
        let rules: Vec<&str> = f.iter().map(|x| x.rule).collect();
        assert_eq!(rules.len(), 4);
        assert!(rules.iter().all(|r| *r == "panic-freedom"));
    }

    #[test]
    fn flags_literal_indexing_only() {
        let f = run("fn f(b: &[u8]) { let x = b[0]; let y = b[i]; let z = [0u8; 4]; }");
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("b[0]"));
    }

    #[test]
    fn ignores_test_code_and_similar_names() {
        let f = run(
            "fn f() { a.unwrap_or(0); a.unwrap_or_else(|| 1); a.expected(); }\n\
             #[cfg(test)]\nmod tests { fn t() { a.unwrap(); panic!(); } }",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn line_numbers_point_at_the_call() {
        let f = run("fn f() {\n    a\n        .unwrap();\n}");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].line, 3);
    }
}
