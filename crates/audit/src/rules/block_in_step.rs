//! `block-in-step`: the batched server step must never block.
//!
//! PR 2's group-commit pipeline made one server turn a *batch*: drain the
//! inbox, process, react, flush, one `StableStore::put` per turn. The
//! whole latency story (paper §6, Fig. 11) rests on that turn being
//! CPU-bound — a `thread::sleep`, a blocking `recv` or a thread `join`
//! anywhere in the step's call tree stalls *every* channel hosted by the
//! server and, transitively, every peer waiting on its acknowledgements.
//! PR 3's `lock-across-send` caught one member of this family (a lock
//! guard held across a send); this rule generalizes it to arbitrary
//! blocking calls, using the intra-workspace call graph.
//!
//! Mechanically: starting from the configured step entry points
//! (`on_datagram_batch`, `on_tick`, `client_send_with`, ...), compute the
//! forward closure over [`CallGraph`] callee edges, then scan the body of
//! every reachable function in the step scope for `.await` and for calls
//! of configured blocking names (`sleep`, `recv`, `recv_timeout`,
//! `park`, ...). The scope deliberately excludes the transport endpoints
//! and the runtime's own thread shell — those *own* their blocking; the
//! deterministic core must not.

use std::collections::BTreeSet;

use crate::source::SourceFile;
use crate::tree::{fn_spans, CallGraph};
use crate::{Config, Finding, Workspace};

/// Runs the rule over the workspace.
pub fn check(ws: &Workspace, config: &Config) -> Vec<Finding> {
    let in_scope: Vec<&SourceFile> = ws
        .files
        .iter()
        .filter(|f| config.step_scopes.iter().any(|s| f.rel.starts_with(s)))
        .collect();
    let graph = CallGraph::build(in_scope.iter().copied());
    // Per-entry forward closures, so diagnostics can name the entry point
    // whose call tree contains the blocking call.
    let closures: Vec<(&'static str, BTreeSet<String>)> = config
        .step_entries
        .iter()
        .map(|e| (*e, graph.reachable_from(&[e])))
        .collect();
    let reachable: BTreeSet<&String> = closures.iter().flat_map(|(_, s)| s.iter()).collect();

    let mut out = Vec::new();
    for file in &in_scope {
        let toks = &file.toks;
        for span in fn_spans(file) {
            if span.is_test || !reachable.contains(&span.name) {
                continue;
            }
            let Some((bs, be)) = span.body else { continue };
            let entry = closures
                .iter()
                .find(|(_, set)| set.contains(&span.name))
                .map(|(e, _)| *e)
                .unwrap_or("<step>");
            for i in bs..be.min(toks.len()) {
                if file.test_mask.get(i).copied().unwrap_or(false) {
                    continue;
                }
                // `.await` inside the step.
                if toks[i].is_ident("await") && i > 0 && toks[i - 1].is_punct('.') {
                    out.push(blocking_finding(
                        file,
                        toks[i].line,
                        "await",
                        &span.name,
                        entry,
                    ));
                    continue;
                }
                // A call of a configured blocking name.
                if config.step_blocking.iter().any(|b| toks[i].is_ident(b))
                    && toks.get(i + 1).map(|t| t.is_punct('(')).unwrap_or(false)
                    && !(i > 0 && toks[i - 1].is_punct('!'))
                {
                    out.push(blocking_finding(
                        file,
                        toks[i].line,
                        &toks[i].text,
                        &span.name,
                        entry,
                    ));
                }
            }
        }
    }
    out
}

fn blocking_finding(file: &SourceFile, line: u32, what: &str, in_fn: &str, entry: &str) -> Finding {
    Finding {
        rule: super::BLOCK_IN_STEP,
        file: file.rel.clone(),
        line,
        message: format!(
            "blocking `{what}` in `{in_fn}`, reachable from server-step entry `{entry}` — \
             the batched step must stay CPU-bound or one stalled call delays every channel \
             on this server (group-commit latency argument, DESIGN.md §9)"
        ),
        line_text: file.trimmed_line(line).to_owned(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Config;

    fn ws(files: &[(&str, &str)]) -> Workspace {
        Workspace::from_files(
            files
                .iter()
                .map(|(r, t)| ((*r).to_owned(), (*t).to_owned()))
                .collect(),
        )
    }

    #[test]
    fn sleep_reachable_from_step_is_flagged() {
        let w = ws(&[(
            "crates/mom/src/server.rs",
            "fn on_datagram_batch(&mut self) { self.helper(); }\n\
             fn helper(&mut self) { std::thread::sleep(d); }",
        )]);
        let f = check(&w, &Config::for_aaa_workspace());
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("sleep"));
        assert!(f[0].message.contains("on_datagram_batch"));
    }

    #[test]
    fn await_in_step_is_flagged() {
        let w = ws(&[(
            "crates/mom/src/server.rs",
            "fn on_tick(&mut self) { self.fut.await; }",
        )]);
        let f = check(&w, &Config::for_aaa_workspace());
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("await"));
    }

    #[test]
    fn blocking_outside_the_step_tree_is_fine() {
        let w = ws(&[(
            "crates/mom/src/server.rs",
            "fn on_tick(&mut self) { self.work(); }\n\
             fn unrelated(&mut self) { std::thread::sleep(d); }",
        )]);
        let f = check(&w, &Config::for_aaa_workspace());
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn out_of_scope_files_are_exempt() {
        let w = ws(&[(
            "crates/net/src/tcp.rs",
            "fn on_tick(&mut self) { std::thread::sleep(d); }",
        )]);
        let f = check(&w, &Config::for_aaa_workspace());
        assert!(f.is_empty(), "{f:?}");
    }
}
