//! `atomic-protocol`: memory orderings must match the shape of the use.
//!
//! The evented runtime's correctness argument (DESIGN.md §15) leans on
//! three atomic idioms, each with its own minimum ordering:
//!
//! * **Gates** — `swap` / `compare_exchange` / `fetch_or`-family RMWs
//!   that *publish* a state transition (`scheduled`, `dead`,
//!   `deadline_us`). These synchronize two threads: the side that won
//!   the gate reads state the loser wrote. `Relaxed` compiles and
//!   passes every x86 test, then reorders on ARM — the classic lost
//!   wakeup. The rule requires Acquire/Release (or stronger) on every
//!   gate-shaped RMW and on every `store` to an `AtomicBool` field.
//! * **Counters** — `fetch_add`/`fetch_sub` stat sites. `Relaxed` is
//!   the *correct* ordering here (nothing is published), so those are
//!   exempt; single-writer state machines that go further (all-`Relaxed`
//!   loads/stores, e.g. `PeerHealth`) document it with an inline
//!   `// audit:allow(atomic-protocol)` stating the single-writer
//!   argument.
//! * **`SeqCst`** — almost always a "not sure, go maximal" smell that
//!   hides the actual protocol and costs a full fence on weak memory.
//!   A `SeqCst` site must carry a nearby `// ... SeqCst ...` comment
//!   saying *why* total order is needed, or be downgraded.
//!
//! Like every rule here the check is name-shaped, not type-resolved:
//! it keys on the `Ordering::` variant idents at call sites and on
//! `field: AtomicBool` declarations in the same file. That misses
//! atomics behind type aliases and flags non-atomic `swap` calls never
//! (the ordering argument is what triggers), which is the right
//! trade-off for a dependency-free auditor.

use crate::lexer::TokKind;
use crate::source::SourceFile;
use crate::Finding;

/// RMW methods that act as publication gates: a `Relaxed` ordering on
/// any of these is (almost) never what the protocol means.
const GATE_RMWS: &[&str] = &[
    "swap",
    "compare_exchange",
    "compare_exchange_weak",
    "fetch_or",
    "fetch_and",
    "fetch_xor",
    "fetch_update",
];

/// Runs the rule over one in-scope file.
pub fn check(file: &SourceFile) -> Vec<Finding> {
    let toks = &file.toks;
    let bool_fields = atomic_bool_fields(file);
    let mut out = Vec::new();
    for i in file.non_test_indices().collect::<Vec<_>>() {
        let t = &toks[i];
        if t.kind != TokKind::Ident {
            continue;
        }
        // `SeqCst` anywhere needs a why-comment nearby.
        if t.text == "SeqCst" {
            if !seqcst_justified(file, t.line) {
                out.push(Finding {
                    rule: super::ATOMIC_PROTOCOL,
                    file: file.rel.clone(),
                    line: t.line,
                    message: "`SeqCst` without a justifying comment — total order costs a full \
                              fence and usually hides the real protocol; downgrade to \
                              Acquire/Release (or Relaxed for pure counters), or add a nearby \
                              `// ...SeqCst...` comment saying why total order is required \
                              (DESIGN.md §15)"
                        .to_owned(),
                    line_text: file.trimmed_line(t.line).to_owned(),
                });
            }
            continue;
        }
        // Gate-shaped call sites: `.swap(.., Relaxed)` etc., and
        // `.store(.., Relaxed)` on a declared `AtomicBool` field.
        let is_method = i > 0
            && toks[i - 1].is_punct('.')
            && toks.get(i + 1).map(|n| n.is_punct('(')).unwrap_or(false);
        if !is_method {
            continue;
        }
        let gate_rmw = GATE_RMWS.contains(&t.text.as_str());
        let bool_store = t.text == "store"
            && receiver_field(toks, i - 1).is_some_and(|f| bool_fields.contains(&f));
        if !gate_rmw && !bool_store {
            continue;
        }
        if let Some(line) = relaxed_in_args(toks, i + 1) {
            let what = if gate_rmw {
                format!("gate-shaped `{}`", t.text)
            } else {
                "`store` to an AtomicBool flag".to_owned()
            };
            out.push(Finding {
                rule: super::ATOMIC_PROTOCOL,
                file: file.rel.clone(),
                line,
                message: format!(
                    "{what} with `Ordering::Relaxed` — this publishes a state transition, and \
                     Relaxed lets the flag move independently of the state it guards (lost \
                     wakeup on weak memory); use Release/Acquire/AcqRel, or document a \
                     single-writer argument with `// audit:allow(atomic-protocol)` \
                     (DESIGN.md §15)"
                ),
                line_text: file.trimmed_line(line).to_owned(),
            });
        }
    }
    out
}

/// Field names declared `: AtomicBool` anywhere in this file.
fn atomic_bool_fields(file: &SourceFile) -> Vec<String> {
    let toks = &file.toks;
    let mut out = Vec::new();
    for i in 2..toks.len() {
        if toks[i].is_ident("AtomicBool")
            && toks[i - 1].is_punct(':')
            && toks[i - 2].kind == TokKind::Ident
        {
            out.push(toks[i - 2].text.clone());
        }
    }
    out.sort();
    out.dedup();
    out
}

/// Last path segment of the receiver left of the `.` at `dot`, skipping
/// one `[...]` index group (`self.slots[i].dead.store(..)`).
fn receiver_field(toks: &[crate::lexer::Tok], dot: usize) -> Option<String> {
    let mut i = dot.checked_sub(1)?;
    if toks[i].is_punct(']') {
        let mut depth = 1usize;
        while depth > 0 {
            i = i.checked_sub(1)?;
            if toks[i].is_punct(']') {
                depth += 1;
            } else if toks[i].is_punct('[') {
                depth -= 1;
            }
        }
        i = i.checked_sub(1)?;
    }
    (toks[i].kind == TokKind::Ident).then(|| toks[i].text.clone())
}

/// Scans the balanced paren group opening at `open` for a `Relaxed`
/// ordering ident; returns its line when found.
fn relaxed_in_args(toks: &[crate::lexer::Tok], open: usize) -> Option<u32> {
    let mut depth = 0usize;
    for t in toks.get(open..)?.iter() {
        if t.is_punct('(') {
            depth += 1;
        } else if t.is_punct(')') {
            depth -= 1;
            if depth == 0 {
                return None;
            }
        } else if t.is_ident("Relaxed") {
            return Some(t.line);
        }
    }
    None
}

/// `SeqCst` on `line` is justified when a comment on that line or within
/// the three lines above mentions `SeqCst` (a why-comment, not the code
/// itself — only text after `//` counts).
fn seqcst_justified(file: &SourceFile, line: u32) -> bool {
    let lines: Vec<&str> = file.text.lines().collect();
    let idx = line.saturating_sub(1) as usize;
    let lo = idx.saturating_sub(3);
    for l in lines
        .get(lo..=idx.min(lines.len().saturating_sub(1)))
        .into_iter()
        .flatten()
    {
        if let Some(pos) = l.find("//") {
            if l[pos..].contains("SeqCst") {
                return true;
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> Vec<Finding> {
        check(&SourceFile::parse("crates/mom/src/x.rs", src))
    }

    #[test]
    fn relaxed_swap_is_flagged() {
        let f = run("fn f(&self) { self.scheduled.swap(true, Ordering::Relaxed); }");
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("swap"), "{}", f[0].message);
    }

    #[test]
    fn acqrel_swap_is_clean() {
        let f = run("fn f(&self) { self.scheduled.swap(true, Ordering::AcqRel); }");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn relaxed_cas_failure_ordering_is_flagged() {
        let f = run(
            "fn f(&self) { self.d.compare_exchange(a, b, Ordering::AcqRel, \
             Ordering::Relaxed); }",
        );
        assert_eq!(f.len(), 1, "{f:?}");
    }

    #[test]
    fn relaxed_counter_fetch_add_is_clean() {
        let f = run("fn f(&self) { self.sent.fetch_add(1, Ordering::Relaxed); }");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn relaxed_store_on_bool_field_is_flagged() {
        let f = run("struct S { dead: AtomicBool }\n\
             fn f(s: &S) { s.dead.store(true, Ordering::Relaxed); }");
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("AtomicBool"), "{}", f[0].message);
    }

    #[test]
    fn relaxed_store_on_counter_field_is_clean() {
        let f = run("struct S { hits: AtomicU64 }\n\
             fn f(s: &S) { s.hits.store(0, Ordering::Relaxed); }");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn relaxed_load_on_bool_field_is_clean() {
        // Debug impls read flags with Relaxed by convention; loads never
        // publish, so only stores are gated.
        let f = run("struct S { dead: AtomicBool }\n\
             fn f(s: &S) -> bool { s.dead.load(Ordering::Relaxed) }");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn indexed_receiver_store_is_flagged() {
        let f = run("struct S { dead: AtomicBool }\n\
             fn f(v: &[S], i: usize) { v[i].dead.store(true, Ordering::Relaxed); }");
        assert_eq!(f.len(), 1, "{f:?}");
    }

    #[test]
    fn bare_seqcst_is_flagged() {
        let f = run("fn f(&self) { self.stop.store(true, Ordering::SeqCst); }");
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("SeqCst"), "{}", f[0].message);
    }

    #[test]
    fn commented_seqcst_is_clean() {
        let f = run("fn f(&self) {\n\
             // SeqCst: stop must totally order against the drain-complete flag\n\
             self.stop.store(true, Ordering::SeqCst); }");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn test_code_is_exempt() {
        let f = run("#[cfg(test)]\nmod t { fn f(s: &S) { s.x.swap(1, Ordering::Relaxed); } }");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn non_atomic_swap_without_ordering_is_clean() {
        let f = run("fn f(a: &mut Vec<u8>, b: &mut Vec<u8>) { std::mem::swap(a, b); }");
        assert!(f.is_empty(), "{f:?}");
    }
}
