//! `metric-drift`: the metric vocabulary must not silently fork.
//!
//! The observability layer (PR 1) is the operator's only window into the
//! causal machinery — `aaa_channel_postponed` staying at zero after
//! quiesce *is* the delivery invariant, rendered as a gauge. That only
//! holds while three artefacts agree on the vocabulary:
//!
//! 1. the `aaa_*` names **registered** in code (`meter.counter(...)` et al.),
//! 2. the README metric table (what operators alert on),
//! 3. the Prometheus golden file (what the exposition test pins).
//!
//! A metric registered but undocumented, documented but unregistered
//! (e.g. after a rename), referenced by a dashboard-style read without a
//! registration, or present in the golden file under a stale name — each
//! is a finding.

use std::collections::{BTreeMap, BTreeSet};

use crate::lexer::TokKind;
use crate::source::{match_brace, SourceFile};
use crate::{Finding, Workspace};

/// Registration methods on `Registry`/`Meter` whose first string literal
/// argument names a metric.
const REGISTER_METHODS: &[&str] = &[
    "counter",
    "counter_with",
    "gauge",
    "gauge_with",
    "histogram",
    "histogram_with",
];

/// `true` for a full metric name: the `aaa_` prefix plus at least one
/// `[a-z0-9_]` word character.
fn is_metric_name(s: &str) -> bool {
    let prefix = "aaa_";
    s.len() > prefix.len()
        && s.starts_with(prefix)
        && s.bytes()
            .all(|b| b.is_ascii_lowercase() || b.is_ascii_digit() || b == b'_')
}

/// Callee identifier of the innermost call `toks[i]` is an argument of.
///
/// Walks backward matching parentheses until the enclosing `(` at depth
/// zero; the identifier right before it names the call. Stops at a
/// statement boundary (`;`, `{`, `}`) when no call encloses the token.
fn enclosing_call_ident(file: &SourceFile, i: usize) -> Option<&str> {
    let toks = &file.toks;
    let mut depth = 0i32;
    let mut j = i;
    while j > 0 {
        j -= 1;
        let t = &toks[j];
        if t.is_punct(')') {
            depth += 1;
        } else if t.is_punct('(') {
            if depth == 0 {
                return (j > 0 && toks[j - 1].kind == TokKind::Ident)
                    .then(|| toks[j - 1].text.as_str());
            }
            depth -= 1;
        } else if depth == 0 && (t.is_punct(';') || t.is_punct('{') || t.is_punct('}')) {
            return None;
        }
    }
    None
}

/// Names of file-local helpers that forward a `name` parameter into a
/// registration method — e.g. `fn per_peer(meter, peers, name, help)`
/// calling `meter.counter_with(name, ...)` per peer. A metric literal
/// handed to such a helper *is* a registration, not a dangling reference.
///
/// Detection: a `fn` whose body contains `<register-method>(<ident>` —
/// the name argument is an identifier (forwarded), not a string literal.
fn forwarders(file: &SourceFile) -> BTreeSet<String> {
    let toks = &file.toks;
    let mut spans: Vec<(String, usize, usize)> = Vec::new();
    let mut i = 0usize;
    while i + 1 < toks.len() {
        if toks[i].is_ident("fn") && toks[i + 1].kind == TokKind::Ident {
            let name = toks[i + 1].text.clone();
            let mut j = i + 2;
            while j < toks.len() && !toks[j].is_punct('{') && !toks[j].is_punct(';') {
                j += 1;
            }
            if j < toks.len() && toks[j].is_punct('{') {
                let end = match_brace(toks, j).unwrap_or(toks.len() - 1);
                spans.push((name, j, end + 1));
                // Step *into* the body so nested fns are also collected.
                i = j + 1;
                continue;
            }
        }
        i += 1;
    }
    let mut out = BTreeSet::new();
    for (name, start, end) in &spans {
        for k in *start..end.saturating_sub(2) {
            if toks[k].kind == TokKind::Ident
                && REGISTER_METHODS.contains(&toks[k].text.as_str())
                && toks[k + 1].is_punct('(')
                && toks[k + 2].kind == TokKind::Ident
            {
                out.insert(name.clone());
                break;
            }
        }
    }
    out
}

/// Scans non-test code for metric registrations and references.
fn scan_code(
    file: &SourceFile,
    registered: &mut BTreeMap<String, (String, u32)>,
    referenced: &mut Vec<(String, String, u32)>,
) {
    let fwd = forwarders(file);
    let toks = &file.toks;
    for i in file.non_test_indices() {
        let t = &toks[i];
        if t.kind == TokKind::Str && is_metric_name(&t.text) {
            // A literal is a registration when the call it is an argument
            // of is a registration method (`meter.counter("aaa_...")`) or
            // a file-local forwarder of one (`per_peer(m, n, "aaa_...")`).
            let is_registration = enclosing_call_ident(file, i)
                .map(|callee| REGISTER_METHODS.contains(&callee) || fwd.contains(callee))
                .unwrap_or(false);
            if is_registration {
                registered
                    .entry(t.text.clone())
                    .or_insert_with(|| (file.rel.clone(), t.line));
            } else {
                referenced.push((t.text.clone(), file.rel.clone(), t.line));
            }
        }
    }
}

/// Extracts metric names from the README's table rows (lines starting
/// with `|`).
fn readme_names(text: &str) -> BTreeMap<String, u32> {
    let mut out = BTreeMap::new();
    for (idx, line) in text.lines().enumerate() {
        if !line.trim_start().starts_with('|') {
            continue;
        }
        for name in extract_metric_words(line) {
            out.entry(name).or_insert(idx as u32 + 1);
        }
    }
    out
}

/// Extracts base metric names from a Prometheus exposition golden file,
/// via its `# TYPE <name> <kind>` lines.
fn golden_names(text: &str) -> BTreeMap<String, u32> {
    let mut out = BTreeMap::new();
    for (idx, line) in text.lines().enumerate() {
        let rest = match line.strip_prefix("# TYPE ") {
            Some(r) => r,
            None => continue,
        };
        if let Some(name) = rest.split_whitespace().next() {
            if is_metric_name(name) {
                out.entry(name.to_owned()).or_insert(idx as u32 + 1);
            }
        }
    }
    out
}

/// All maximal `[a-z0-9_]` words starting with the metric prefix.
fn extract_metric_words(line: &str) -> Vec<String> {
    let bytes = line.as_bytes();
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        let b = bytes[i];
        if b.is_ascii_lowercase() || b.is_ascii_digit() || b == b'_' {
            let start = i;
            while i < bytes.len()
                && (bytes[i].is_ascii_lowercase() || bytes[i].is_ascii_digit() || bytes[i] == b'_')
            {
                i += 1;
            }
            let word = &line[start..i];
            if is_metric_name(word) {
                out.push(word.to_owned());
            }
        } else {
            i += 1;
        }
    }
    out
}

fn finding(file: &str, line: u32, message: String, line_text: String) -> Finding {
    Finding {
        rule: super::METRIC_DRIFT,
        file: file.to_owned(),
        line,
        message,
        line_text,
    }
}

fn text_line(text: &str, line: u32) -> String {
    text.lines()
        .nth(line.saturating_sub(1) as usize)
        .map(str::trim)
        .unwrap_or("")
        .to_owned()
}

/// Runs the rule: cross-checks registrations, references, the README
/// table (`readme_text`) and each `(path, text)` golden file.
pub fn check(
    ws: &Workspace,
    readme_path: &str,
    readme_text: &str,
    golden: &[(&'static str, String)],
) -> Vec<Finding> {
    let mut registered: BTreeMap<String, (String, u32)> = BTreeMap::new();
    let mut referenced: Vec<(String, String, u32)> = Vec::new();
    for file in &ws.files {
        scan_code(file, &mut registered, &mut referenced);
    }
    let documented = readme_names(readme_text);
    let mut out = Vec::new();

    // 1. Registered but undocumented.
    for (name, (file, line)) in &registered {
        if !documented.contains_key(name) {
            let sf = ws.file(file);
            out.push(finding(
                file,
                *line,
                format!(
                    "metric `{name}` is registered here but missing from the README metric \
                     table — operators cannot alert on what is not documented"
                ),
                sf.map(|s| s.trimmed_line(*line).to_owned())
                    .unwrap_or_default(),
            ));
        }
    }
    // 2. Documented but not registered (stale docs after a rename).
    for (name, line) in &documented {
        if !registered.contains_key(name) {
            out.push(finding(
                readme_path,
                *line,
                format!(
                    "README documents metric `{name}` but no registration exists in code — \
                     stale after a rename?"
                ),
                text_line(readme_text, *line),
            ));
        }
    }
    // 3. Referenced (read) but never registered: the read silently
    // returns zero forever.
    for (name, file, line) in &referenced {
        if !registered.contains_key(name) {
            let sf = ws.file(file);
            out.push(finding(
                file,
                *line,
                format!(
                    "code references metric `{name}` which is never registered — the read \
                     will observe zero forever"
                ),
                sf.map(|s| s.trimmed_line(*line).to_owned())
                    .unwrap_or_default(),
            ));
        }
    }
    // 4. Golden-file names must be registered and documented.
    for (path, text) in golden {
        for (name, line) in golden_names(text) {
            if !registered.contains_key(&name) {
                out.push(finding(
                    path,
                    line,
                    format!("golden file pins metric `{name}` which is not registered in code"),
                    text_line(text, line),
                ));
            } else if !documented.contains_key(&name) {
                out.push(finding(
                    path,
                    line,
                    format!(
                        "golden file pins metric `{name}` which is missing from the README \
                         metric table"
                    ),
                    text_line(text, line),
                ));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const README: &str = "\
# Doc\n\
| metric | kind |\n\
|---|---|\n\
| `aaa_x_total` | counter |\n\
| `aaa_y_us` | histogram |\n";

    fn ws(src: &str) -> Workspace {
        Workspace::from_files(vec![("crates/m/src/l.rs".into(), src.into())])
    }

    #[test]
    fn clean_vocabulary() {
        let src = "fn f(m: &Meter) { m.counter(\"aaa_x_total\", \"h\"); \
                   m.histogram(\"aaa_y_us\", \"h\", &[1]); }";
        let f = check(&ws(src), "README.md", README, &[]);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn unregistered_metric_in_code_is_flagged() {
        let src = "fn f(m: &Meter) { m.counter(\"aaa_x_total\", \"h\"); \
                   m.histogram(\"aaa_y_us\", \"h\", &[1]); \
                   m.gauge(\"aaa_new_thing\", \"h\"); }";
        let f = check(&ws(src), "README.md", README, &[]);
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("aaa_new_thing"));
        assert!(f[0].message.contains("README"));
    }

    #[test]
    fn stale_readme_row_is_flagged() {
        let src = "fn f(m: &Meter) { m.counter(\"aaa_x_total\", \"h\"); }";
        let f = check(&ws(src), "README.md", README, &[]);
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("aaa_y_us"));
        assert_eq!(f[0].file, "README.md");
    }

    #[test]
    fn read_of_unregistered_name_is_flagged() {
        let src = "fn f(m: &Meter, s: &Snap) { m.counter(\"aaa_x_total\", \"h\"); \
                   m.histogram(\"aaa_y_us\", \"h\", &[1]); \
                   s.sum_counter(\"aaa_renamed_total\"); }";
        let f = check(&ws(src), "README.md", README, &[]);
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("zero forever"));
    }

    #[test]
    fn golden_file_names_checked_both_ways() {
        let src = "fn f(m: &Meter) { m.counter(\"aaa_x_total\", \"h\"); \
                   m.histogram(\"aaa_y_us\", \"h\", &[1]); }";
        let golden = "# TYPE aaa_x_total counter\n# TYPE aaa_gone_total counter\n".to_owned();
        let f = check(&ws(src), "README.md", README, &[("g.prom", golden)]);
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("aaa_gone_total"));
        assert_eq!(f[0].file, "g.prom");
    }

    #[test]
    fn helper_forwarded_registration_is_recognized() {
        let src = "fn per_peer(m: &Meter, name: &'static str, h: &'static str) -> Counter {\n\
                       m.counter_with(name, h, &[(\"peer\", \"0\")])\n\
                   }\n\
                   fn f(m: &Meter) { per_peer(m, \"aaa_x_total\", \"h\"); \
                   m.histogram(\"aaa_y_us\", \"h\", &[1]); }";
        let f = check(&ws(src), "README.md", README, &[]);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn multiline_registration_call_is_recognized() {
        let src = "fn f(m: &Meter) {\n\
                       m.counter_with(\n\
                           \"aaa_x_total\",\n\
                           \"help text\",\n\
                           &[(\"peer\", \"0\")],\n\
                       );\n\
                       m.histogram(\"aaa_y_us\", \"h\", &[1]);\n\
                   }";
        let f = check(&ws(src), "README.md", README, &[]);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn test_code_is_exempt() {
        let src = "fn f(m: &Meter) { m.counter(\"aaa_x_total\", \"h\"); \
                   m.histogram(\"aaa_y_us\", \"h\", &[1]); }\n\
                   #[cfg(test)]\nmod tests { fn t(m: &Meter) { m.gauge(\"aaa_only_in_tests\", \"h\"); } }";
        let f = check(&ws(src), "README.md", README, &[]);
        assert!(f.is_empty(), "{f:?}");
    }
}
