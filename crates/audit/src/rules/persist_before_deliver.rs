//! `persist-before-deliver`: recovery-critical delivery effects must be
//! dominated by a stable-store write.
//!
//! The paper's recovery story (§5) assumes the causal state a server
//! reloads after a crash agrees with what its peers observed: once a
//! message is *delivered* (the clock engine's `DELIV` row advances) or an
//! ack is *consumed* (a hybrid-mode buffer entry is released), that
//! transition must be reconstructible from disk. A delivery that mutates
//! only in-memory clock state before anything reaches the
//! [`StableStore`](../../../storage) is exactly-once on the happy path
//! and at-least-twice after recovery — the peer's matrix says the message
//! is consumed, the reloaded server's says it is not, and the redelivery
//! is a causal-order violation the EngineModel (crate::interleave) would
//! flag if it could see the crash.
//!
//! The rule reuses the `stamp-flow` dominance machinery: every
//! `.deliver(from, pending)` / `.on_ack(from)` call site on the
//! configured mom/storage paths must have a dominating persistence call —
//! the enclosing function, one of its transitive callees, or one of its
//! transitive callers must reach a `put`/group-commit seed. Batched
//! group-commit is fine (the commit happens in the caller that drains the
//! batch); a delivery path with *no* persistence anywhere in its cone is
//! not. Deliberate volatile paths (pure-simulation harnesses) justify
//! themselves with `// audit:allow(persist-before-deliver)`.

use std::collections::BTreeSet;

use crate::lexer::TokKind;
use crate::source::SourceFile;
use crate::tree::{arg_count, enclosing_fn, fn_spans, CallGraph};
use crate::{Config, Finding, Workspace};

/// Delivery-effect method names with the argument count that makes them
/// the causal-protocol call (distinguishing `CausalState::deliver(from,
/// pending)` from e.g. a one-argument queue `deliver`).
const DELIVER_METHODS: &[(&str, usize)] = &[
    ("deliver", 2),
    ("on_ack", 1),
    // The relay's ack commit: releasing a subscriber's queue prefix is
    // recovery-critical exactly like a clock-engine delivery — an ack
    // consumed only in memory is re-offered after recovery and the
    // subscriber sees the window twice.
    ("ack_up_to", 1),
];

/// Runs the rule over the workspace.
pub fn check(ws: &Workspace, config: &Config) -> Vec<Finding> {
    let in_scope: Vec<&SourceFile> = ws
        .files
        .iter()
        .filter(|f| config.persist_scopes.iter().any(|s| f.rel.starts_with(s)))
        .collect();
    let graph = CallGraph::build(in_scope.iter().copied());
    // Functions that (transitively) reach a persistence seed. The
    // delivery-method names are barriers for the same reason as in
    // `stamp-flow`: a workspace `fn deliver` that itself persists must
    // not make every raw `.deliver(..)` site look covered through the
    // simple-name merge.
    let deliver_names: Vec<&str> = DELIVER_METHODS.iter().map(|(m, _)| *m).collect();
    let persisting: BTreeSet<String> =
        graph.reaching_excluding(&config.persist_seeds, &deliver_names);

    let mut out = Vec::new();
    for file in &in_scope {
        let toks = &file.toks;
        let spans = fn_spans(file);
        for i in file.non_test_indices().collect::<Vec<_>>() {
            if !toks[i].is_punct('.') {
                continue;
            }
            let Some(name_tok) = toks.get(i + 1) else {
                continue;
            };
            if name_tok.kind != TokKind::Ident {
                continue;
            }
            let Some(&(_, want_args)) = DELIVER_METHODS.iter().find(|(m, _)| name_tok.is_ident(m))
            else {
                continue;
            };
            if !toks.get(i + 2).map(|t| t.is_punct('(')).unwrap_or(false) {
                continue;
            }
            if arg_count(toks, i + 2) != Some(want_args) {
                continue;
            }
            let covered = match enclosing_fn(&spans, i + 1) {
                Some(f) => {
                    persisting.contains(&f.name)
                        || graph
                            .transitive_callers(&f.name)
                            .iter()
                            .any(|c| persisting.contains(c))
                }
                None => false,
            };
            if covered {
                continue;
            }
            let enclosing = enclosing_fn(&spans, i + 1)
                .map(|f| format!("`{}`", f.name))
                .unwrap_or_else(|| "<no enclosing fn>".to_owned());
            out.push(Finding {
                rule: super::PERSIST_BEFORE_DELIVER,
                file: file.rel.clone(),
                line: name_tok.line,
                message: format!(
                    "`.{}(..)` advances recovery-critical delivery state from {enclosing} with \
                     no dominating `put`/group-commit in this function, its callees or its \
                     callers — after a crash the reloaded clock state disagrees with the peers' \
                     and redelivery breaks exactly-once; route the effect through the \
                     persistence path or justify a volatile path inline",
                    name_tok.text
                ),
                line_text: file.trimmed_line(name_tok.line).to_owned(),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> Config {
        Config::for_aaa_workspace()
    }

    fn ws(files: &[(&str, &str)]) -> Workspace {
        Workspace::from_files(
            files
                .iter()
                .map(|(r, t)| ((*r).to_owned(), (*t).to_owned()))
                .collect(),
        )
    }

    #[test]
    fn undominated_deliver_is_flagged() {
        let w = ws(&[(
            "crates/mom/src/x.rs",
            "fn volatile(&mut self) { self.clock.deliver(from, &pending); }",
        )]);
        let f = check(&w, &config());
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "persist-before-deliver");
        assert!(f[0].message.contains("volatile"));
    }

    #[test]
    fn persistence_in_same_fn_covers() {
        let w = ws(&[(
            "crates/mom/src/x.rs",
            "fn commit(&mut self) { self.store.put(key, bytes); self.clock.deliver(from, &pending); }",
        )]);
        assert!(check(&w, &config()).is_empty());
    }

    #[test]
    fn persistence_in_caller_covers_group_commit() {
        let w = ws(&[(
            "crates/mom/src/x.rs",
            "fn pump(&mut self) { self.clock.deliver(from, &pending); }\n\
             fn step(&mut self) { self.store.put(key, bytes); self.pump(); }",
        )]);
        assert!(check(&w, &config()).is_empty());
    }

    #[test]
    fn on_ack_needs_dominance_too() {
        let w = ws(&[(
            "crates/mom/src/x.rs",
            "fn volatile(&mut self) { self.clock.on_ack(from); }",
        )]);
        let f = check(&w, &config());
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("on_ack"));
    }

    #[test]
    fn undominated_ack_up_to_is_flagged_in_relay_and_storage_scope() {
        // Sabotage: an ack commit with no persistence anywhere in its
        // cone, once on the mom path and once on the storage path.
        for rel in ["crates/mom/src/x.rs", "crates/storage/src/x.rs"] {
            let w = ws(&[(
                rel,
                "fn volatile(&mut self) { self.queue.ack_up_to(upto); }",
            )]);
            let f = check(&w, &config());
            assert_eq!(f.len(), 1, "{rel}: {f:?}");
            assert!(f[0].message.contains("ack_up_to"));
        }
    }

    #[test]
    fn append_record_seed_covers_storage_deliveries() {
        let w = ws(&[(
            "crates/storage/src/x.rs",
            "fn commit(&mut self) { self.append_record(&rec); self.queue.ack_up_to(upto); }",
        )]);
        assert!(check(&w, &config()).is_empty());
    }

    #[test]
    fn arity_distinguishes_other_delivers() {
        // A one-argument queue `deliver` and a three-argument helper are
        // not the causal-protocol call.
        let w = ws(&[(
            "crates/mom/src/x.rs",
            "fn f(&mut self) { self.queue.deliver(msg); self.helper.deliver(a, b, c); }",
        )]);
        assert!(check(&w, &config()).is_empty());
    }

    #[test]
    fn out_of_scope_and_test_code_are_exempt() {
        let w = ws(&[
            (
                "crates/sim/src/x.rs",
                "fn volatile(&mut self) { self.clock.deliver(from, &pending); }",
            ),
            (
                "crates/mom/src/y.rs",
                "#[cfg(test)]\nmod t { fn f(c: &mut C) { c.deliver(from, &pending); } }",
            ),
        ]);
        assert!(check(&w, &config()).is_empty());
    }
}
