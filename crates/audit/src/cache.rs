//! Incremental per-file result cache for the audit pass.
//!
//! The tier-1 gate (`tests/audit.rs`) runs the full pass inside
//! `cargo test`; as the workspace grows, lexing + per-file rules dominate
//! its wall time. Per-file findings depend on nothing but the file's own
//! bytes and the config, so they are cached under
//! `target/aaa-audit-cache/` keyed by an FNV-1a content hash plus a
//! config/rule-revision fingerprint. Cross-file rules (match-drift,
//! metric-drift, stamp-flow, error-swallow's global leg, block-in-step)
//! are never cached.
//!
//! The cache is strictly an accelerator: any miss, version skew, parse
//! failure or I/O error silently degrades to recomputation (`--no-cache`
//! forces that degradation for debugging). Entries are plain text so a
//! `git clean`-style wipe of `target/` is always safe.

use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};

use crate::source::SourceFile;
use crate::{rules, Config, Finding};

/// Bump when a per-file rule's behaviour changes without a crate version
/// bump, to invalidate stale caches.
const RULES_REV: &str = "pr10-relay-1";

/// FNV-1a 64-bit — tiny, dependency-free, good enough for content keys.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\t' => out.push_str("\\t"),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

fn unescape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('t') => out.push('\t'),
            Some('n') => out.push('\n'),
            Some(other) => out.push(other),
            None => break,
        }
    }
    out
}

/// Maps a serialized rule id back to its `&'static str` identity.
fn rule_id(name: &str) -> Option<&'static str> {
    rules::ALL_RULES.iter().find(|r| **r == name).copied()
}

/// One open cache store, loaded eagerly and persisted explicitly.
#[derive(Debug)]
pub struct Store {
    path: Option<PathBuf>,
    fingerprint: String,
    /// rel path → (content hash, per-file findings).
    entries: BTreeMap<String, (u64, Vec<Finding>)>,
    dirty: bool,
}

impl Store {
    /// Opens (or initializes) the cache for the workspace at `root` under
    /// the given config. An empty/unusable root yields an inert store.
    pub fn open(root: &Path, config: &Config) -> Store {
        let fp = fingerprint(config);
        if root.as_os_str().is_empty() {
            return Store {
                path: None,
                fingerprint: fp,
                entries: BTreeMap::new(),
                dirty: false,
            };
        }
        let path = root
            .join("target")
            .join("aaa-audit-cache")
            .join("per-file.v1");
        let mut store = Store {
            path: Some(path.clone()),
            fingerprint: fp.clone(),
            entries: BTreeMap::new(),
            dirty: false,
        };
        let Ok(text) = fs::read_to_string(&path) else {
            return store;
        };
        let mut lines = text.lines();
        match lines.next() {
            Some(header) if header == format!("aaa-audit-cache {fp}") => {}
            _ => return store, // version/config skew: start fresh
        }
        let mut current: Option<(String, u64)> = None;
        for line in lines {
            if let Some(rest) = line.strip_prefix("F ") {
                let mut parts = rest.splitn(2, ' ');
                let (Some(hash), Some(rel)) = (parts.next(), parts.next()) else {
                    return store.reset();
                };
                let Ok(hash) = u64::from_str_radix(hash, 16) else {
                    return store.reset();
                };
                store.entries.insert(rel.to_owned(), (hash, Vec::new()));
                current = Some((rel.to_owned(), hash));
                continue;
            }
            let Some((rel, _)) = &current else {
                return store.reset();
            };
            let mut parts = line.split('\t');
            let (Some(rule), Some(ln), Some(line_text), Some(message)) =
                (parts.next(), parts.next(), parts.next(), parts.next())
            else {
                return store.reset();
            };
            let (Some(rule), Ok(ln)) = (rule_id(rule), ln.parse::<u32>()) else {
                return store.reset();
            };
            let finding = Finding {
                rule,
                file: rel.clone(),
                line: ln,
                message: unescape(message),
                line_text: unescape(line_text),
            };
            if let Some((_, fs)) = store.entries.get_mut(rel) {
                fs.push(finding);
            }
        }
        store
    }

    fn reset(mut self) -> Store {
        self.entries.clear();
        self
    }

    /// Cached per-file findings for `file`, if its content hash matches.
    pub fn lookup(&self, file: &SourceFile) -> Option<Vec<Finding>> {
        let (hash, findings) = self.entries.get(&file.rel)?;
        (*hash == fnv1a(file.text.as_bytes())).then(|| findings.clone())
    }

    /// Records freshly computed per-file findings for `file`.
    pub fn insert(&mut self, file: &SourceFile, findings: &[Finding]) {
        self.entries.insert(
            file.rel.clone(),
            (fnv1a(file.text.as_bytes()), findings.to_vec()),
        );
        self.dirty = true;
    }

    /// Writes the cache back to disk (best effort; errors are ignored —
    /// the cache is an accelerator, not a source of truth).
    pub fn persist(&self) {
        if !self.dirty {
            return;
        }
        let Some(path) = &self.path else { return };
        let mut out = String::new();
        out.push_str(&format!("aaa-audit-cache {}\n", self.fingerprint));
        for (rel, (hash, findings)) in &self.entries {
            out.push_str(&format!("F {hash:016x} {rel}\n"));
            for f in findings {
                out.push_str(&format!(
                    "{}\t{}\t{}\t{}\n",
                    f.rule,
                    f.line,
                    escape(&f.line_text),
                    escape(&f.message)
                ));
            }
        }
        if let Some(dir) = path.parent() {
            let _dir_ok = fs::create_dir_all(dir).is_ok();
        }
        let _write_ok = fs::write(path, out).is_ok();
    }
}

/// Config + rule-revision fingerprint keying the whole cache file.
fn fingerprint(config: &Config) -> String {
    let ident = format!(
        "{RULES_REV}|{}|{}",
        env!("CARGO_PKG_VERSION"),
        format_args!("{config:?}")
    );
    format!("{:016x}", fnv1a(ident.as_bytes()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> Config {
        Config::for_aaa_workspace()
    }

    #[test]
    fn round_trips_through_disk() {
        let root =
            std::env::temp_dir().join(format!("aaa-audit-cache-test-{}", std::process::id()));
        let _cleanup = fs::remove_dir_all(&root);
        fs::create_dir_all(&root).expect("temp root");

        let file = SourceFile::parse("crates/net/src/x.rs", "fn f() { a.unwrap(); }\n");
        let findings = crate::per_file_rules(&file, &cfg());
        assert!(!findings.is_empty());

        let mut store = Store::open(&root, &cfg());
        assert!(store.lookup(&file).is_none(), "cold cache misses");
        store.insert(&file, &findings);
        store.persist();

        let store2 = Store::open(&root, &cfg());
        let cached = store2.lookup(&file).expect("warm cache hits");
        assert_eq!(cached, findings);

        // Content change invalidates.
        let changed = SourceFile::parse("crates/net/src/x.rs", "fn f() { a.unwrap(); }\n\n");
        assert!(store2.lookup(&changed).is_none());

        let _cleanup = fs::remove_dir_all(&root);
    }

    #[test]
    fn empty_root_is_inert() {
        let mut store = Store::open(Path::new(""), &cfg());
        let file = SourceFile::parse("x.rs", "fn f() {}\n");
        store.insert(&file, &[]);
        store.persist(); // must not create anything or panic
        assert!(
            store.lookup(&file).is_some(),
            "in-memory entries still work"
        );
    }

    #[test]
    fn escaping_round_trips() {
        let s = "a\tb\\c\nd";
        assert_eq!(unescape(&escape(s)), s);
    }
}
