//! Model-checking the *real* clock engines, not a re-model.
//!
//! [`SlotModel`](super::SlotModel) proves the evented wakeup protocol by
//! hand-encoding it as a transition system — sound, but the proof rots
//! the moment the code drifts (the `model-drift` rule guards that gap).
//! The causal delivery condition (§4.2) gets the stronger treatment
//! here: [`EngineModel`] drives the actual `aaa-clocks` implementations
//! — `CausalState::stamp_send` / `on_frame` / `can_deliver` / `deliver`
//! and the real `write_bytes` / `read_bytes` persistence codecs —
//! through *every* interleaving of send / transmit / deliver at a small
//! bound. There is nothing to drift from: the model state *is* the
//! engine's persisted image.
//!
//! What one exploration proves, per [`StampMode`]:
//!
//! - **Causal order** — delivery is checked against an exact
//!   ground-truth dependency oracle (the causal past of each message,
//!   tracked by message id outside the engines), so a predicate that
//!   admits an early delivery is caught by construction, not by
//!   comparing the code with itself. The `weaken_can_deliver` sabotage
//!   knob proves the oracle has teeth.
//! - **Exactly-once** — a just-delivered message must be rejected on
//!   re-offer (the duplicate-delivery window), and the ground-truth
//!   delivered set refuses double insertion.
//! - **Quiescence** — when no transition is enabled, nothing may be
//!   permanently postponed and every destination must have received its
//!   full quota.
//! - **Mode equivalence** — every bounded engine (`Updates`, `Reduced`,
//!   `Hybrid`) runs in lock-step with a [`StampMode::Full`] reference:
//!   same group-continuation decisions, same reconstructed predicate
//!   column, same delivery verdicts, same
//!   [`EngineTranscript`](aaa_clocks::EngineTranscript) after every
//!   mutation — in every reachable interleaving, not just on seeded
//!   schedules.
//! - **Crash/recovery** — every transition round-trips each touched
//!   server through `write_bytes`/`read_bytes`, and the invariant
//!   re-encodes every image byte-identically, so recovery at *any*
//!   reachable point resumes the protocol exactly (mid-group
//!   continuations included: the workload stamps with
//!   [`Batching::Grouped`], so `Stamp::GroupNext` frames cross links
//!   and persistence boundaries).
//!
//! Topology is a ring (`s → (s+1) mod n`): it is the smallest shape
//! where FIFO-link reorder across distinct senders, transitive
//! causality (`n ≥ 3`) and grouped continuation runs all occur.

use std::collections::BTreeSet;

use aaa_base::DomainServerId;
use aaa_clocks::{Batching, CausalState, PendingStamp, Stamp, StampMode};

use super::Model;

/// Workload shape and sabotage knob for [`EngineModel`].
#[derive(Debug, Clone, Copy)]
pub struct EngineConfig {
    /// Stamp mode of the engine under test. Every mode other than
    /// [`StampMode::Full`] is additionally lock-stepped against a
    /// `Full` reference engine.
    pub mode: StampMode,
    /// Servers in the ring.
    pub n: u16,
    /// Messages each server sends to its ring successor.
    pub msgs_per_sender: u8,
    /// Sabotage knob: decide deliveries with the off-by-one
    /// `CausalState::can_deliver_weakened` predicate instead of the
    /// real one. The ground-truth oracle must then report a
    /// causal-order violation — proving the check can fail.
    pub weaken_can_deliver: bool,
}

impl EngineConfig {
    /// The canonical CI workload: 3 servers, 2 messages each — big
    /// enough for transitive causality, reorder and grouped
    /// continuations, small enough to explore exhaustively per mode in
    /// well under a second in release builds.
    pub fn ci(mode: StampMode) -> EngineConfig {
        EngineConfig {
            mode,
            n: 3,
            msgs_per_sender: 2,
            weaken_can_deliver: false,
        }
    }

    /// Scales the workload by an `AAA_MODEL_DEPTH` level: 0/1 = the CI
    /// shape, 2 = deep (main-branch CI), 3+ = deeper still.
    pub fn at_depth(mode: StampMode, level: u8) -> EngineConfig {
        let mut c = EngineConfig::ci(mode);
        if level >= 2 {
            c.msgs_per_sender = 3;
        }
        if level >= 3 {
            c.n = 4;
            c.msgs_per_sender = 2;
        }
        c
    }
}

/// A stamped message in flight on one FIFO link.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct InFlight {
    /// Global message id (`sender * msgs_per_sender + seq`).
    id: u16,
    /// Ground truth: every message id in the sender's causal past at
    /// send time.
    deps: BTreeSet<u16>,
    /// The real engine's wire stamp.
    stamp: Stamp,
    /// The lock-stepped `Full` reference's stamp (absent when the mode
    /// under test *is* `Full`).
    shadow_stamp: Option<Stamp>,
}

/// A message that arrived (FIFO order respected) but is not delivered.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct Arrived {
    id: u16,
    deps: BTreeSet<u16>,
    /// The receiver's reconstruction of the sender matrix.
    pending: PendingStamp,
    shadow_pending: Option<PendingStamp>,
}

/// One global state of the engine network.
///
/// Engine state is held *as the persisted byte image* — the exact bytes
/// `CausalState::write_bytes` produces — so every transition models a
/// crash/recovery cycle through the real codec, and state memoization
/// keys on what would actually be journaled.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct EngineNet {
    /// Per-server persisted image of the engine under test.
    servers: Vec<Vec<u8>>,
    /// Per-server persisted image of the `Full` reference engine
    /// (empty when the mode under test is `Full`).
    shadows: Vec<Vec<u8>>,
    /// Messages each sender still has to send.
    to_send: Vec<u8>,
    /// One FIFO link per sender (ring: each sender has one peer).
    links: Vec<Vec<InFlight>>,
    /// Arrived-but-undelivered messages, per receiver, deliverable in
    /// any predicate-approved order.
    pending: Vec<Vec<Arrived>>,
    /// Ground truth: message ids in each server's causal past.
    known: Vec<BTreeSet<u16>>,
    /// Ground truth: message ids delivered at each server.
    delivered: Vec<BTreeSet<u16>>,
}

/// The four real clock engines as a [`Model`]; see the [module
/// docs](self) for the exact claims one exploration proves.
#[derive(Debug, Clone, Copy)]
pub struct EngineModel {
    /// Workload shape and sabotage knob.
    pub cfg: EngineConfig,
}

fn decode(bytes: &[u8], what: &str) -> Result<CausalState, String> {
    match CausalState::read_bytes(bytes) {
        Some((st, used)) if used == bytes.len() => Ok(st),
        Some((_, used)) => Err(format!(
            "{what}: persisted image decoded with {} trailing byte(s)",
            bytes.len() - used
        )),
        None => Err(format!("{what}: persisted image failed to decode")),
    }
}

fn encode(st: &CausalState) -> Vec<u8> {
    let mut out = Vec::new();
    st.write_bytes(&mut out);
    out
}

impl EngineModel {
    fn dest(&self, sender: u16) -> u16 {
        (sender + 1) % self.cfg.n
    }

    fn sender_of(&self, id: u16) -> u16 {
        id / u16::from(self.cfg.msgs_per_sender)
    }

    /// `sender` stamps and enqueues its next message (both engines).
    fn do_send(&self, s: &EngineNet, sender: usize) -> Result<EngineNet, String> {
        let mut n = s.clone();
        let to = DomainServerId::new(self.dest(sender as u16));
        let mut real = decode(&n.servers[sender], "sender (real)")?;
        let stamp = real.stamp_send(to, Batching::Grouped);
        let shadow_stamp = if n.shadows.is_empty() {
            None
        } else {
            let mut sh = decode(&n.shadows[sender], "sender (shadow)")?;
            let st = sh.stamp_send(to, Batching::Grouped);
            if st.is_group_next() != stamp.is_group_next() {
                return Err(format!(
                    "group-continuation divergence in mode {}: engine emitted {} where the \
                     full-matrix reference emitted {}",
                    self.cfg.mode,
                    stamp.kind(),
                    st.kind()
                ));
            }
            if sh.transcript() != real.transcript() {
                return Err(format!(
                    "transcript divergence after send in mode {} at s{sender}",
                    self.cfg.mode
                ));
            }
            n.shadows[sender] = encode(&sh);
            Some(st)
        };
        let sent_so_far = self.cfg.msgs_per_sender - n.to_send[sender];
        let id = sender as u16 * u16::from(self.cfg.msgs_per_sender) + u16::from(sent_so_far);
        let deps = n.known[sender].clone();
        n.known[sender].insert(id);
        n.to_send[sender] -= 1;
        n.links[sender].push(InFlight {
            id,
            deps,
            stamp,
            shadow_stamp,
        });
        n.servers[sender] = encode(&real);
        Ok(n)
    }

    /// The head of `sender`'s FIFO link arrives at its destination.
    fn do_arrive(&self, s: &EngineNet, sender: usize) -> Result<EngineNet, String> {
        let mut n = s.clone();
        let msg = n.links[sender].remove(0);
        let to = self.dest(sender as u16) as usize;
        let from = DomainServerId::new(sender as u16);
        let mut real = decode(&n.servers[to], "receiver (real)")?;
        let pending = real.on_frame(from, msg.stamp);
        let shadow_pending = match msg.shadow_stamp {
            None => None,
            Some(st) => {
                let mut sh = decode(&n.shadows[to], "receiver (shadow)")?;
                let p = sh.on_frame(from, st);
                // The §4.2 predicate reads exactly the receiver's column
                // of the reconstructed matrix; the bounded engine must
                // reconstruct it identically to the full reference.
                for k in 0..self.cfg.n as usize {
                    if pending.matrix().get(k, to) != p.matrix().get(k, to) {
                        return Err(format!(
                            "stamp-reconstruction divergence in mode {} for m{} at s{to}: \
                             predicate cell ({k}, {to}) is {} but the full-matrix reference \
                             says {}",
                            self.cfg.mode,
                            msg.id,
                            pending.matrix().get(k, to),
                            p.matrix().get(k, to)
                        ));
                    }
                }
                n.shadows[to] = encode(&sh);
                Some(p)
            }
        };
        n.pending[to].push(Arrived {
            id: msg.id,
            deps: msg.deps,
            pending,
            shadow_pending,
        });
        n.servers[to] = encode(&real);
        Ok(n)
    }

    /// Delivers pending entry `i` at receiver `r`. `real_ok` is the real
    /// predicate's verdict, pre-computed by the caller (the decision to
    /// *attempt* delivery may come from the weakened sabotage predicate).
    fn do_deliver(
        &self,
        s: &EngineNet,
        r: usize,
        i: usize,
        real_ok: bool,
    ) -> Result<EngineNet, String> {
        let mut n = s.clone();
        let a = n.pending[r].remove(i);
        let from = DomainServerId::new(self.sender_of(a.id));
        // Ground truth first: every causal predecessor destined here must
        // already be delivered here. This is the oracle the predicate is
        // judged against — independent of any engine.
        for d in &a.deps {
            if self.dest(self.sender_of(*d)) as usize == r && !n.delivered[r].contains(d) {
                return Err(format!(
                    "causal-order violation in mode {}: m{} delivered at s{r} before its \
                     causal predecessor m{d}",
                    self.cfg.mode, a.id
                ));
            }
        }
        if !real_ok {
            // Only reachable with the weakened predicate; the ground
            // truth above passing while the real §4.2 predicate refuses
            // would be a completeness bug in the predicate itself.
            return Err(format!(
                "delivery predicate rejects a causally-safe message: m{} at s{r} in mode {}",
                a.id, self.cfg.mode
            ));
        }
        let mut real = decode(&n.servers[r], "receiver (real)")?;
        real.deliver(from, &a.pending);
        if real.can_deliver(from, &a.pending) {
            return Err(format!(
                "duplicate delivery admitted in mode {}: m{} still deliverable at s{r} right \
                 after being delivered",
                self.cfg.mode, a.id
            ));
        }
        if let Some(sp) = &a.shadow_pending {
            let mut sh = decode(&n.shadows[r], "receiver (shadow)")?;
            sh.deliver(from, sp);
            if sh.transcript() != real.transcript() {
                return Err(format!(
                    "transcript divergence after delivering m{} at s{r} in mode {}",
                    a.id, self.cfg.mode
                ));
            }
            n.shadows[r] = encode(&sh);
        }
        if !n.delivered[r].insert(a.id) {
            return Err(format!(
                "exactly-once violated: m{} delivered twice at s{r}",
                a.id
            ));
        }
        n.known[r].insert(a.id);
        n.known[r].extend(a.deps.iter().copied());
        n.servers[r] = encode(&real);
        Ok(n)
    }
}

impl Model for EngineModel {
    type State = EngineNet;

    fn initial(&self) -> EngineNet {
        let n = self.cfg.n as usize;
        let servers = (0..n)
            .map(|i| {
                encode(&CausalState::new(
                    DomainServerId::new(i as u16),
                    n,
                    self.cfg.mode,
                ))
            })
            .collect();
        let shadows = if self.cfg.mode == StampMode::Full {
            Vec::new()
        } else {
            (0..n)
                .map(|i| {
                    encode(&CausalState::new(
                        DomainServerId::new(i as u16),
                        n,
                        StampMode::Full,
                    ))
                })
                .collect()
        };
        EngineNet {
            servers,
            shadows,
            to_send: vec![self.cfg.msgs_per_sender; n],
            links: vec![Vec::new(); n],
            pending: vec![Vec::new(); n],
            known: vec![BTreeSet::new(); n],
            delivered: vec![BTreeSet::new(); n],
        }
    }

    fn successors(&self, s: &EngineNet) -> Vec<(String, Result<EngineNet, String>)> {
        let n = self.cfg.n as usize;
        let mut out: Vec<(String, Result<EngineNet, String>)> = Vec::new();
        for sender in 0..n {
            if s.to_send[sender] > 0 {
                let seq = self.cfg.msgs_per_sender - s.to_send[sender];
                let id = sender as u16 * u16::from(self.cfg.msgs_per_sender) + u16::from(seq);
                out.push((
                    format!("send m{id}: s{sender} -> s{}", self.dest(sender as u16)),
                    self.do_send(s, sender),
                ));
            }
            if let Some(head) = s.links[sender].first() {
                out.push((
                    format!("arrive m{}: at s{}", head.id, self.dest(sender as u16)),
                    self.do_arrive(s, sender),
                ));
            }
        }
        for r in 0..n {
            if s.pending[r].is_empty() {
                continue;
            }
            let real = match decode(&s.servers[r], "receiver (real)") {
                Ok(st) => st,
                Err(e) => {
                    out.push((format!("judge pending at s{r}"), Err(e)));
                    continue;
                }
            };
            let shadow = if s.shadows.is_empty() {
                None
            } else {
                match decode(&s.shadows[r], "receiver (shadow)") {
                    Ok(st) => Some(st),
                    Err(e) => {
                        out.push((format!("judge pending at s{r}"), Err(e)));
                        continue;
                    }
                }
            };
            for (i, a) in s.pending[r].iter().enumerate() {
                let from = DomainServerId::new(self.sender_of(a.id));
                let real_ok = real.can_deliver(from, &a.pending);
                if let (Some(sh), Some(sp)) = (&shadow, &a.shadow_pending) {
                    let shadow_ok = sh.can_deliver(from, sp);
                    if shadow_ok != real_ok {
                        out.push((
                            format!("judge m{} at s{r}", a.id),
                            Err(format!(
                                "delivery-decision divergence in mode {}: m{} at s{r} is \
                                 {}deliverable but the full-matrix reference says {}deliverable",
                                self.cfg.mode,
                                a.id,
                                if real_ok { "" } else { "not " },
                                if shadow_ok { "" } else { "not " },
                            )),
                        ));
                        continue;
                    }
                }
                let decision = if self.cfg.weaken_can_deliver {
                    real.can_deliver_weakened(from, &a.pending)
                } else {
                    real_ok
                };
                if decision {
                    out.push((
                        format!("deliver m{} at s{r}", a.id),
                        self.do_deliver(s, r, i, real_ok),
                    ));
                }
            }
        }
        out
    }

    fn invariant(&self, s: &EngineNet) -> Result<(), String> {
        // Crash anywhere: every persisted image must decode fully and
        // re-encode byte-identically, in both engines — recovery is the
        // identity on reachable states.
        for (which, images, mode) in [
            ("real", &s.servers, self.cfg.mode),
            ("shadow", &s.shadows, StampMode::Full),
        ] {
            for (i, img) in images.iter().enumerate() {
                let st = decode(img, &format!("s{i} ({which})"))?;
                if st.mode() != mode {
                    return Err(format!(
                        "s{i} ({which}): image decoded to mode {} instead of {mode}",
                        st.mode()
                    ));
                }
                if encode(&st) != *img {
                    return Err(format!(
                        "s{i} ({which}): recovery round-trip is not byte-identical"
                    ));
                }
            }
        }
        Ok(())
    }

    fn terminal(&self, s: &EngineNet) -> Result<(), String> {
        for (r, p) in s.pending.iter().enumerate() {
            if !p.is_empty() {
                let ids: Vec<u16> = p.iter().map(|a| a.id).collect();
                return Err(format!(
                    "permanent postponement in mode {}: {ids:?} stuck at s{r} with no \
                     transition enabled",
                    self.cfg.mode
                ));
            }
        }
        for (r, d) in s.delivered.iter().enumerate() {
            let expect = usize::from(self.cfg.msgs_per_sender);
            if d.len() != expect {
                return Err(format!(
                    "s{r} quiesced with {} of {expect} deliveries in mode {}",
                    d.len(),
                    self.cfg.mode
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interleave::{explore, Options};

    #[test]
    fn ci_shape_is_sound_in_every_mode() {
        for mode in StampMode::ALL {
            let m = EngineModel {
                cfg: EngineConfig::ci(mode),
            };
            let ex = explore(&m, Options::default()).unwrap_or_else(|v| panic!("{mode}: {v}"));
            assert!(!ex.truncated, "{mode}: CI workload must stay exhaustive");
            assert!(ex.states > 100, "{mode}: suspiciously small: {}", ex.states);
        }
    }

    #[test]
    fn weakened_predicate_is_caught() {
        for mode in StampMode::ALL {
            let mut cfg = EngineConfig::ci(mode);
            cfg.weaken_can_deliver = true;
            let v = explore(&EngineModel { cfg }, Options::default())
                .expect_err("off-by-one delivery predicate must violate causal order");
            assert!(v.message.contains("causal-order violation"), "{mode}: {v}");
            assert!(!v.trace.is_empty(), "violation carries its trace");
        }
    }
}
