//! Committed allowlists: one file per rule, each entry an intentional
//! exception.
//!
//! Format (`crates/audit/allow/<rule>.allow`): one entry per line,
//! `<workspace-relative path>\t<trimmed source line>`. Entries key on the
//! *content* of the offending line, not its number, so unrelated edits
//! above it do not invalidate the allowlist; an entry whose line text no
//! longer produces a finding is **stale** and fails CI (run
//! `cargo run -p aaa-audit -- --fix-allowlist` to refresh).

use std::collections::BTreeSet;
use std::fs;
use std::io;
use std::path::Path;

use crate::Finding;

/// One allowlist entry.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct AllowEntry {
    /// Rule id the exception applies to.
    pub rule: String,
    /// Workspace-relative path of the excepted file.
    pub file: String,
    /// Trimmed text of the excepted source line.
    pub line_text: String,
}

impl std::fmt::Display for AllowEntry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] {}: `{}`", self.rule, self.file, self.line_text)
    }
}

/// The loaded set of allowlist entries across every rule file.
#[derive(Debug, Default)]
pub struct Allowlist {
    /// All entries, in file order.
    pub entries: Vec<AllowEntry>,
}

impl Allowlist {
    /// Loads every `*.allow` file in `dir` (missing dir = empty list).
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors other than a missing directory.
    pub fn load(dir: &Path) -> io::Result<Allowlist> {
        let mut entries = Vec::new();
        let read = match fs::read_dir(dir) {
            Ok(r) => r,
            Err(e) if e.kind() == io::ErrorKind::NotFound => {
                return Ok(Allowlist { entries });
            }
            Err(e) => return Err(e),
        };
        let mut paths: Vec<_> = read
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.extension().map(|x| x == "allow").unwrap_or(false))
            .collect();
        paths.sort();
        for path in paths {
            let rule = path
                .file_stem()
                .map(|s| s.to_string_lossy().into_owned())
                .unwrap_or_default();
            let text = fs::read_to_string(&path)?;
            for line in text.lines() {
                let line = line.trim_end();
                if line.is_empty() || line.starts_with('#') {
                    continue;
                }
                if let Some((file, line_text)) = line.split_once('\t') {
                    entries.push(AllowEntry {
                        rule: rule.clone(),
                        file: file.to_owned(),
                        line_text: line_text.to_owned(),
                    });
                }
            }
        }
        Ok(Allowlist { entries })
    }

    /// Builds an allowlist covering exactly `findings`.
    pub fn from_findings(findings: &[Finding]) -> Allowlist {
        let mut set: BTreeSet<AllowEntry> = BTreeSet::new();
        for f in findings {
            set.insert(AllowEntry {
                rule: f.rule.to_owned(),
                file: f.file.clone(),
                line_text: f.line_text.clone(),
            });
        }
        Allowlist {
            entries: set.into_iter().collect(),
        }
    }

    /// Writes one `<rule>.allow` file per rule into `dir` (creating it),
    /// removing files for rules that no longer have entries.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn save(&self, dir: &Path) -> io::Result<()> {
        fs::create_dir_all(dir)?;
        // Remove stale per-rule files first.
        for entry in fs::read_dir(dir)? {
            let path = entry?.path();
            if path.extension().map(|x| x == "allow").unwrap_or(false) {
                fs::remove_file(&path)?;
            }
        }
        let rules: BTreeSet<&str> = self.entries.iter().map(|e| e.rule.as_str()).collect();
        for rule in rules {
            let mut body = String::new();
            body.push_str(&format!(
                "# Intentional `{rule}` exceptions. One entry per line:\n\
                 # <workspace-relative path>\\t<trimmed source line>\n\
                 # Refresh with: cargo run -p aaa-audit -- --fix-allowlist\n"
            ));
            for e in self.entries.iter().filter(|e| e.rule == rule) {
                body.push_str(&format!("{}\t{}\n", e.file, e.line_text));
            }
            fs::write(dir.join(format!("{rule}.allow")), body)?;
        }
        Ok(())
    }

    /// Index of the first entry matching `finding`, if any.
    pub fn matches(&self, finding: &Finding) -> Option<usize> {
        self.entries.iter().position(|e| {
            e.rule == finding.rule && e.file == finding.file && e.line_text == finding.line_text
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(rule: &'static str, file: &str, text: &str) -> Finding {
        Finding {
            rule,
            file: file.to_owned(),
            line: 3,
            message: "m".to_owned(),
            line_text: text.to_owned(),
        }
    }

    #[test]
    fn roundtrip_through_disk() {
        let dir = std::env::temp_dir().join(format!("aaa-audit-allow-{}", std::process::id()));
        let findings = vec![
            finding("panic-freedom", "crates/net/src/link.rs", "x.unwrap();"),
            finding("determinism", "crates/sim/src/s.rs", "Instant::now();"),
        ];
        let list = Allowlist::from_findings(&findings);
        list.save(&dir).expect("save");
        let loaded = Allowlist::load(&dir).expect("load");
        assert_eq!(loaded.entries.len(), 2);
        assert!(loaded.matches(&findings[0]).is_some());
        assert!(loaded.matches(&findings[1]).is_some());
        assert!(loaded
            .matches(&finding("panic-freedom", "crates/net/src/link.rs", "other"))
            .is_none());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_dir_is_empty() {
        let list = Allowlist::load(Path::new("/nonexistent/audit/allow")).expect("ok");
        assert!(list.entries.is_empty());
    }

    #[test]
    fn duplicate_findings_collapse_to_one_entry() {
        let findings = vec![
            finding("panic-freedom", "a.rs", "x.unwrap();"),
            finding("panic-freedom", "a.rs", "x.unwrap();"),
        ];
        assert_eq!(Allowlist::from_findings(&findings).entries.len(), 1);
    }
}
