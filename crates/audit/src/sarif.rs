//! SARIF 2.1.0 export of audit findings.
//!
//! CI consumes this (`aaa-audit --sarif out.sarif`) to annotate PR diffs:
//! the GitHub code-scanning upload action turns each `result` into an
//! inline annotation at `physicalLocation.region.startLine`. The writer
//! is hand-rolled (the vendor tree is offline — no `serde_json`) and
//! **deterministic**: object keys are emitted in a fixed order, findings
//! in the canonical sort order, so two runs over the same tree produce
//! byte-identical files and the golden test can compare exactly.
//!
//! Shape: one `run` with a `tool.driver` declaring every rule id (so
//! `ruleIndex` is stable even for rules with zero findings this run) and
//! one `result` per active finding at level `error`.

use crate::{rules, Finding};

/// Escapes a string for embedding in a JSON string literal.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders `findings` as a SARIF 2.1.0 document.
///
/// Findings should already be in canonical order ([`crate::sort_findings`])
/// for byte-stable output; the function does not reorder them.
pub fn render(findings: &[Finding]) -> String {
    let mut o = String::with_capacity(4096 + findings.len() * 512);
    o.push_str("{\n");
    o.push_str("  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n");
    o.push_str("  \"version\": \"2.1.0\",\n");
    o.push_str("  \"runs\": [\n    {\n");
    o.push_str("      \"tool\": {\n        \"driver\": {\n");
    o.push_str("          \"name\": \"aaa-audit\",\n");
    o.push_str(&format!(
        "          \"version\": \"{}\",\n",
        esc(env!("CARGO_PKG_VERSION"))
    ));
    o.push_str("          \"informationUri\": \"https://example.invalid/aaa-middleware/audit\",\n");
    o.push_str("          \"rules\": [\n");
    for (i, rule) in rules::ALL_RULES.iter().enumerate() {
        o.push_str("            {\n");
        o.push_str(&format!("              \"id\": \"{}\",\n", esc(rule)));
        o.push_str(&format!(
            "              \"shortDescription\": {{ \"text\": \"{}\" }},\n",
            esc(rules::describe(rule))
        ));
        o.push_str(&format!(
            "              \"help\": {{ \"text\": \"{}\" }},\n",
            esc(rules::explain(rule))
        ));
        o.push_str("              \"defaultConfiguration\": { \"level\": \"error\" }\n");
        o.push_str("            }");
        if i + 1 < rules::ALL_RULES.len() {
            o.push(',');
        }
        o.push('\n');
    }
    o.push_str("          ]\n");
    o.push_str("        }\n      },\n");
    o.push_str(
        "      \"columnKind\": \"utf16CodeUnits\",\n      \"originalUriBaseIds\": {\n        \"SRCROOT\": { \"uri\": \"file:///\" }\n      },\n",
    );
    o.push_str("      \"results\": [\n");
    for (i, f) in findings.iter().enumerate() {
        let rule_index = rules::ALL_RULES
            .iter()
            .position(|r| *r == f.rule)
            .unwrap_or(0);
        o.push_str("        {\n");
        o.push_str(&format!("          \"ruleId\": \"{}\",\n", esc(f.rule)));
        o.push_str(&format!("          \"ruleIndex\": {rule_index},\n"));
        o.push_str("          \"level\": \"error\",\n");
        o.push_str(&format!(
            "          \"message\": {{ \"text\": \"{}\" }},\n",
            esc(&f.message)
        ));
        o.push_str("          \"locations\": [\n            {\n");
        o.push_str("              \"physicalLocation\": {\n");
        o.push_str(&format!(
            "                \"artifactLocation\": {{ \"uri\": \"{}\", \"uriBaseId\": \"SRCROOT\" }},\n",
            esc(&f.file)
        ));
        o.push_str(&format!(
            "                \"region\": {{ \"startLine\": {}, \"snippet\": {{ \"text\": \"{}\" }} }}\n",
            f.line.max(1),
            esc(&f.line_text)
        ));
        o.push_str("              }\n            }\n          ]\n");
        o.push_str("        }");
        if i + 1 < findings.len() {
            o.push(',');
        }
        o.push('\n');
    }
    o.push_str("      ]\n    }\n  ]\n}\n");
    o
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<Finding> {
        vec![
            Finding {
                rule: rules::ERROR_SWALLOW,
                file: "crates/net/src/wire.rs".to_owned(),
                line: 390,
                message: "`let _ = ..u32(..)` discards a fallible result".to_owned(),
                line_text: "let _ = d.u32().unwrap();".to_owned(),
            },
            Finding {
                rule: rules::WIRE_CAST,
                file: "crates/net/src/wire.rs".to_owned(),
                line: 65,
                message: "unguarded narrowing `as u32` with \"quotes\" and \\ backslash".to_owned(),
                line_text: "self.u32(v.len() as u32);".to_owned(),
            },
        ]
    }

    #[test]
    fn renders_required_fields() {
        let s = render(&sample());
        assert!(s.contains("\"version\": \"2.1.0\""));
        assert!(s.contains("sarif-2.1.0.json"));
        assert!(s.contains("\"name\": \"aaa-audit\""));
        assert!(s.contains("\"ruleId\": \"error-swallow\""));
        assert!(s.contains("\"startLine\": 390"));
        // Every rule id is declared even with zero results, and carries
        // the long-form `--explain` text as its help.
        for rule in rules::ALL_RULES {
            assert!(s.contains(&format!("\"id\": \"{rule}\"")), "{rule} missing");
            assert!(
                s.contains(&esc(rules::explain(rule))),
                "{rule} help text missing"
            );
        }
    }

    #[test]
    fn escapes_json_metacharacters() {
        let s = render(&sample());
        assert!(s.contains("\\\"quotes\\\""));
        assert!(s.contains("\\\\ backslash"));
    }

    #[test]
    fn empty_findings_is_still_a_valid_run() {
        let s = render(&[]);
        assert!(s.contains("\"results\": [\n      ]"));
    }

    #[test]
    fn output_is_deterministic() {
        assert_eq!(render(&sample()), render(&sample()));
    }
}
