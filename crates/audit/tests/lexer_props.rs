//! Property tests: the audit lexer is *total* — any input, including
//! adversarial token soups with unbalanced quotes, nested comment
//! markers and stray escapes, lexes without panicking and with sane
//! line bookkeeping. The auditor runs inside `cargo test`; a lexer
//! panic on a weird-but-legal source file would turn the safety net
//! itself into the crash.

use aaa_audit::lexer::{lex, TokKind};
use aaa_audit::source::SourceFile;
use proptest::prelude::*;

/// Fragments chosen to stress every lexer mode transition: string and
/// char openers/closers, raw-string guards, comment markers, escapes,
/// attribute-ish and escape-hatch text, plus general punctuation soup.
fn arb_soup() -> impl Strategy<Value = String> {
    prop::collection::vec(
        prop_oneof![
            Just("\"".to_owned()),
            Just("'".to_owned()),
            Just("/*".to_owned()),
            Just("*/".to_owned()),
            Just("//".to_owned()),
            Just("r#\"".to_owned()),
            Just("\"#".to_owned()),
            Just("r#raw_ident".to_owned()),
            Just("b\"bytes".to_owned()),
            Just("\\".to_owned()),
            Just("\\\"".to_owned()),
            Just("\n".to_owned()),
            Just("'l".to_owned()),
            Just("#[cfg(test)]".to_owned()),
            Just("audit:allow(panic-freedom)".to_owned()),
            "[a-zA-Z0-9_ {}()\\[\\];.,:<>=!&|+*-]{0,10}",
        ],
        0..48,
    )
    .prop_map(|v| v.concat())
}

/// Arbitrary bytes, lossily decoded: exercises non-ASCII and replacement
/// characters without constraining the shape at all.
fn arb_bytes_text() -> impl Strategy<Value = String> {
    prop::collection::vec(any::<u8>(), 0..256)
        .prop_map(|b| String::from_utf8_lossy(&b).into_owned())
}

fn check_total(src: &str) {
    // A file with k newlines has at most k+1 (1-based) lines; a token
    // may legitimately end on the (empty) line after a trailing newline.
    let line_count = src.bytes().filter(|&b| b == b'\n').count() as u32 + 1;
    let toks = lex(src);
    for t in &toks {
        assert!(t.line >= 1, "line numbers are 1-based: {t:?}");
        assert!(
            t.line <= line_count,
            "token starts past EOF ({} > {line_count}): {t:?}",
            t.line
        );
        assert!(t.end_line >= t.line, "token ends before it starts: {t:?}");
        assert!(t.end_line <= line_count, "token ends past EOF: {t:?}");
        if t.kind == TokKind::Punct {
            assert_eq!(
                t.text.chars().count(),
                1,
                "punct tokens are single chars: {t:?}"
            );
        }
    }
    // SourceFile::parse layers test-masking and escape parsing on top;
    // it must be just as total, and its bookkeeping must stay aligned.
    let sf = SourceFile::parse("crates/net/src/soup.rs", src);
    assert_eq!(sf.toks.len(), sf.test_mask.len());
    assert!(sf.toks.iter().all(|t| t.kind != TokKind::Comment));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn lexing_token_soup_never_panics(src in arb_soup()) {
        check_total(&src);
    }

    #[test]
    fn lexing_arbitrary_bytes_never_panics(src in arb_bytes_text()) {
        check_total(&src);
    }

    #[test]
    fn lexing_is_deterministic(src in arb_soup()) {
        prop_assert_eq!(lex(&src), lex(&src));
    }
}
