//! Property tests for the bounded-interleaving explorer.
//!
//! The model check is only trustworthy if the schedule enumeration is
//! *total* (every seed explores the same reachable state set) and
//! *deterministic* (the same seed walks states in the same order). A
//! scheduler whose seed could change the state set would make "the CI
//! run was exhaustive" meaningless; a non-deterministic walk would make
//! violation traces unreproducible.

use aaa_audit::interleave::{explore, Exploration, Options, SlotConfig, SlotModel};
use proptest::prelude::*;

fn ci_exploration(seed: u64) -> Exploration {
    let m = SlotModel {
        cfg: SlotConfig::ci(),
    };
    match explore(
        &m,
        Options {
            seed,
            ..Options::default()
        },
    ) {
        Ok(e) => e,
        Err(v) => panic!("CI protocol config must be sound, got {v}"),
    }
}

/// The seed-0 exploration, computed once — each proptest case compares
/// against it, and at ~33k states per walk recomputing it per case
/// would dominate the suite's runtime.
fn base() -> &'static Exploration {
    static BASE: std::sync::OnceLock<Exploration> = std::sync::OnceLock::new();
    BASE.get_or_init(|| ci_exploration(0))
}

proptest! {
    // Each case is a full ~33k-state exploration (~0.2 s); the default
    // 256 cases would push this file past a minute and a half.
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Any seed explores the exact same reachable state set: same state
    /// count, same transition count, same canonical state-set hash, and
    /// never truncated. The seed may only permute visit order.
    #[test]
    fn state_set_is_seed_independent(seed in any::<u64>()) {
        let base = base();
        let e = ci_exploration(seed);
        prop_assert!(!e.truncated);
        prop_assert_eq!(e.states, base.states);
        prop_assert_eq!(e.transitions, base.transitions);
        prop_assert_eq!(e.state_set_hash, base.state_set_hash);
    }

    /// The same seed replays the identical walk — the visit-order hash
    /// (and everything else) matches run to run, so a violation trace
    /// printed once can always be reproduced.
    #[test]
    fn same_seed_replays_identically(seed in any::<u64>()) {
        let a = ci_exploration(seed);
        let b = ci_exploration(seed);
        prop_assert_eq!(a, b);
    }
}

/// Regression pin on the CI workload's reachable state count. A silent
/// drop means the model lost interleavings (an action was accidentally
/// merged or an enabled transition disabled); a silent explosion means
/// the CI check's runtime budget is at risk. Update deliberately when
/// the protocol model itself changes.
#[test]
fn ci_state_count_is_pinned() {
    let e = ci_exploration(0);
    assert!(
        !e.truncated,
        "CI workload must stay exhaustively explorable"
    );
    assert_eq!(
        (e.states, e.transitions),
        (PINNED_STATES, PINNED_TRANSITIONS),
        "reachable state space changed — if the slot protocol model \
         changed on purpose, update the pin"
    );
}

const PINNED_STATES: usize = 33_151;
const PINNED_TRANSITIONS: usize = 127_858;
