//! Golden test for the SARIF 2.1.0 exporter.
//!
//! The committed golden (`tests/golden.sarif`) pins the *exact bytes* the
//! exporter produces for a fixed finding sample: key order, indentation,
//! escaping, the declared rules array and the uriBaseId scheme. CI uploads
//! this format to code-scanning backends, so any drift — even cosmetic —
//! is a contract change and must show up in review as a golden diff.
//!
//! To regenerate after an intentional format change:
//!
//! ```text
//! AAA_BLESS=1 cargo test -p aaa-audit --test sarif_golden
//! ```

use aaa_audit::rules;
use aaa_audit::sarif;
use aaa_audit::Finding;

/// A fixed sample covering: multiple rules, result ordering, JSON
/// metacharacters in messages and a snippet with a narrowing cast.
fn sample() -> Vec<Finding> {
    vec![
        Finding {
            rule: rules::ERROR_SWALLOW,
            file: "crates/net/src/wire.rs".to_owned(),
            line: 390,
            message: "`let _ = ..u32(..)` discards a fallible result on a protocol path".to_owned(),
            line_text: "let _ = d.u32().unwrap();".to_owned(),
        },
        Finding {
            rule: rules::WIRE_CAST,
            file: "crates/net/src/wire.rs".to_owned(),
            line: 65,
            message: "unguarded narrowing cast `as u32` with \"quotes\" and a \\ backslash"
                .to_owned(),
            line_text: "self.u32(v.len() as u32);".to_owned(),
        },
        Finding {
            rule: rules::STAMP_FLOW,
            file: "crates/mom/src/server.rs".to_owned(),
            line: 12,
            message: "transport send not dominated by a stamp_send* call".to_owned(),
            line_text: "self.endpoint.send(to, bytes);".to_owned(),
        },
    ]
}

#[test]
fn sarif_output_matches_committed_golden() {
    let rendered = sarif::render(&sample());
    let golden_path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden.sarif");
    if std::env::var_os("AAA_BLESS").is_some() {
        std::fs::write(golden_path, &rendered).expect("write golden");
        return;
    }
    let golden = std::fs::read_to_string(golden_path).expect(
        "missing tests/golden.sarif — run AAA_BLESS=1 cargo test -p aaa-audit --test sarif_golden",
    );
    assert_eq!(
        rendered, golden,
        "SARIF output drifted from the committed golden; if intentional, \
         regenerate with AAA_BLESS=1"
    );
}

/// Structural sanity beyond byte equality: the golden stays parseable by
/// the (deliberately strict) expectations a SARIF consumer has.
#[test]
fn sarif_output_declares_every_rule_once() {
    let rendered = sarif::render(&sample());
    for rule in rules::ALL_RULES {
        let needle = format!("\"id\": \"{rule}\"");
        assert_eq!(
            rendered.matches(&needle).count(),
            1,
            "{rule} must be declared exactly once in the rules array"
        );
    }
    // Results reference rules by index into that same array.
    assert!(rendered.contains("\"ruleIndex\""));
    assert!(rendered.contains("\"uriBaseId\": \"SRCROOT\""));
}
