//! Property tests for the engine model check (`interleave::engine_model`).
//!
//! Same contract as `interleave_props.rs`, lifted from the abstract slot
//! protocol to the real clock engines: the exploration must be *total*
//! (every seed reaches the same state set — otherwise "exhaustive at CI
//! shape" is meaningless) and *deterministic* (the same seed replays the
//! identical walk, so a causal-order violation trace printed once can
//! always be reproduced). The pinned counts are the regression canary:
//! a silent drop means the network model lost interleavings, a silent
//! explosion threatens the CI runtime budget.

use aaa_audit::interleave::{explore, EngineConfig, EngineModel, Exploration, Options};
use aaa_clocks::StampMode;
use proptest::prelude::*;

const MODES: [StampMode; 4] = [
    StampMode::Full,
    StampMode::Updates,
    StampMode::Reduced,
    StampMode::Hybrid,
];

fn ci_exploration(mode: StampMode, seed: u64) -> Exploration {
    let m = EngineModel {
        cfg: EngineConfig::ci(mode),
    };
    match explore(
        &m,
        Options {
            seed,
            ..Options::default()
        },
    ) {
        Ok(e) => e,
        Err(v) => panic!("CI engine config ({mode:?}) must be sound, got {v}"),
    }
}

/// The seed-0 Full-mode exploration, computed once — each proptest case
/// compares against it, and at ~6k states (each a vector of serialized
/// engine images) recomputing it per case would dominate the suite.
fn base() -> &'static Exploration {
    static BASE: std::sync::OnceLock<Exploration> = std::sync::OnceLock::new();
    BASE.get_or_init(|| ci_exploration(StampMode::Full, 0))
}

proptest! {
    // Each case is a full exploration driving real engines through
    // serialize/deserialize round-trips — an order of magnitude more
    // expensive per state than the slot model, so fewer cases.
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Any seed explores the exact same reachable state set: same state
    /// count, same transition count, same canonical state-set hash, and
    /// never truncated. The seed may only permute visit order.
    #[test]
    fn state_set_is_seed_independent(seed in any::<u64>()) {
        let base = base();
        let e = ci_exploration(StampMode::Full, seed);
        prop_assert!(!e.truncated);
        prop_assert_eq!(e.states, base.states);
        prop_assert_eq!(e.transitions, base.transitions);
        prop_assert_eq!(e.state_set_hash, base.state_set_hash);
    }

    /// The same seed replays the identical walk — the visit-order hash
    /// (and everything else) matches run to run.
    #[test]
    fn same_seed_replays_identically(seed in any::<u64>()) {
        let a = ci_exploration(StampMode::Hybrid, seed);
        let b = ci_exploration(StampMode::Hybrid, seed);
        prop_assert_eq!(a, b);
    }
}

/// Regression pin on the CI shape's reachable state count, for **all
/// four** stamp modes. The counts are identical across modes by design:
/// equivalent engines take identical delivery decisions, so the
/// network-level transition structure — and with it the reachable graph
/// — is mode-independent. A mode whose count diverges from the others
/// has stopped being equivalent *structurally*, before any invariant
/// even fires. Update deliberately when the network model changes.
#[test]
fn ci_state_count_is_pinned_for_every_mode() {
    for mode in MODES {
        let e = ci_exploration(mode, 0);
        assert!(
            !e.truncated,
            "{mode:?}: CI shape must stay exhaustively explorable"
        );
        assert_eq!(
            (e.states, e.transitions),
            (PINNED_STATES, PINNED_TRANSITIONS),
            "{mode:?}: reachable state space changed — if the network model \
             changed on purpose, update the pin"
        );
    }
}

const PINNED_STATES: usize = 6_370;
const PINNED_TRANSITIONS: usize = 16_767;
