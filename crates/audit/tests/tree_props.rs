//! Property tests: the token-tree layer is *total* — any input, however
//! unbalanced or adversarial, produces a delimiter tree, function spans
//! and call sites without panicking, and the structures it returns are
//! internally consistent. The dataflow rules (stamp-flow, block-in-step,
//! the error-swallow return-type map) all stand on this layer; a panic
//! here on a weird-but-legal source file would crash the audit inside
//! `cargo test`.

use aaa_audit::source::SourceFile;
use aaa_audit::tree::{calls_in, delim_tree, fn_spans, match_paren, CallGraph, Node};
use proptest::prelude::*;

/// Fragments chosen to stress the tree builder: unbalanced delimiters of
/// all three kinds, `fn`/`impl`/`for`/`where` keywords in odd positions,
/// generics with shift operators, and general punctuation soup.
fn arb_soup() -> impl Strategy<Value = String> {
    prop::collection::vec(
        prop_oneof![
            Just("{".to_owned()),
            Just("}".to_owned()),
            Just("(".to_owned()),
            Just(")".to_owned()),
            Just("[".to_owned()),
            Just("]".to_owned()),
            Just("fn ".to_owned()),
            Just("impl ".to_owned()),
            Just("for ".to_owned()),
            Just("where ".to_owned()),
            Just("-> Result<(), E> ".to_owned()),
            Just("<T: Ord<X>> ".to_owned()),
            Just(">> ".to_owned()),
            Just("self.a.b(c)?;".to_owned()),
            Just("#[cfg(test)]".to_owned()),
            Just("\n".to_owned()),
            "[a-zA-Z0-9_ ;.,:<>=!&|+*-]{0,12}",
        ],
        0..48,
    )
    .prop_map(|v| v.concat())
}

/// Arbitrary bytes, lossily decoded: no shape constraints at all.
fn arb_bytes_text() -> impl Strategy<Value = String> {
    prop::collection::vec(any::<u8>(), 0..256)
        .prop_map(|b| String::from_utf8_lossy(&b).into_owned())
}

/// Checks a node list for internal consistency against the token stream.
fn check_nodes(file: &SourceFile, nodes: &[Node], lo: usize, hi: usize) {
    for node in nodes {
        assert!(
            node.open >= lo && node.open < hi,
            "node open {} escapes its parent range {lo}..{hi}",
            node.open
        );
        let open_tok = &file.toks[node.open];
        assert!(
            open_tok.is_punct('(') || open_tok.is_punct('[') || open_tok.is_punct('{'),
            "node.open must index an opening delimiter, got {open_tok:?}"
        );
        if let Some(close) = node.close {
            assert!(close > node.open, "close {close} <= open {}", node.open);
            assert!(close < hi, "close {close} escapes parent range ..{hi}");
            let close_tok = &file.toks[close];
            assert!(
                close_tok.is_punct(')') || close_tok.is_punct(']') || close_tok.is_punct('}'),
                "node.close must index a closing delimiter, got {close_tok:?}"
            );
            check_nodes(file, &node.children, node.open + 1, close);
        } else {
            // Unclosed: children still live inside the file.
            check_nodes(file, &node.children, node.open + 1, file.toks.len());
        }
    }
    // Siblings appear in token order.
    for pair in nodes.windows(2) {
        assert!(pair[0].open < pair[1].open, "siblings out of order");
    }
}

fn check_total(src: &str) {
    let file = SourceFile::parse("crates/net/src/soup.rs", src);
    let n = file.toks.len();

    // The delimiter tree is total and internally consistent.
    let tree = delim_tree(&file.toks);
    check_nodes(&file, &tree, 0, n.max(1));

    // match_paren agrees with the tree for every opening paren.
    for (i, t) in file.toks.iter().enumerate() {
        if t.is_punct('(') {
            if let Some(close) = match_paren(&file.toks, i) {
                assert!(close > i);
                assert!(file.toks[close].is_punct(')'));
            }
        }
    }

    // Function spans are total: every span names a real `fn` token and a
    // well-formed body range.
    let spans = fn_spans(&file);
    for s in &spans {
        assert!(s.fn_tok < n, "fn_tok out of range");
        assert!(file.toks[s.fn_tok].is_ident("fn"), "fn_tok must be `fn`");
        assert!(s.line >= 1, "fn lines are 1-based");
        if let Some((open, end)) = s.body {
            // `body` is `(open, exclusive end)`: `end` may equal the token
            // count for an unclosed body at EOF.
            assert!(open > s.fn_tok, "body starts before the fn keyword");
            assert!(end > open, "body end precedes its open");
            assert!(end <= n, "body end out of range");
            assert!(file.toks[open].is_punct('{'));
            assert!(s.contains(open), "a span contains its own body open");
        }
    }

    // Call sites are total and well-formed.
    for call in calls_in(&file, 0, n) {
        assert!(!call.name.is_empty(), "calls have names");
        assert!(call.tok < call.open, "callee precedes its open paren");
        assert!(file.toks[call.open].is_punct('('));
        assert!(call.line >= 1);
    }

    // The call graph builds without panicking and its reachability sets
    // are subsets of the known names.
    let graph = CallGraph::build([&file]);
    let callers: Vec<&str> = graph.callees.keys().map(String::as_str).collect();
    let reach = graph.reaching(&callers);
    for name in &reach {
        assert!(
            graph.callees.contains_key(name) || graph.callers.contains_key(name),
            "reaching() invented an unknown function {name}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn tree_on_token_soup_never_panics(src in arb_soup()) {
        check_total(&src);
    }

    #[test]
    fn tree_on_arbitrary_bytes_never_panics(src in arb_bytes_text()) {
        check_total(&src);
    }

    #[test]
    fn tree_is_deterministic(src in arb_soup()) {
        let a = SourceFile::parse("crates/net/src/soup.rs", &src);
        let spans_a: Vec<String> = fn_spans(&a).into_iter().map(|s| format!("{s:?}")).collect();
        let spans_b: Vec<String> = fn_spans(&a).into_iter().map(|s| format!("{s:?}")).collect();
        prop_assert_eq!(spans_a, spans_b);
    }

    /// On *balanced* soups (every fragment self-balanced), every function
    /// span finds a body and every body close matches its open delimiter
    /// count — the totality property sharpened to the common case.
    #[test]
    fn balanced_bodies_are_found(names in prop::collection::vec("[a-z_][a-z0-9_]{0,8}", 1..8)) {
        let src: String = names
            .iter()
            .map(|n| format!("fn {n}(x: u32) -> u32 {{ x + helper(x) }}\n"))
            .collect();
        let file = SourceFile::parse("crates/net/src/gen.rs", &src);
        let spans = fn_spans(&file);
        prop_assert_eq!(spans.len(), names.len());
        for s in &spans {
            prop_assert!(s.body.is_some(), "balanced fn {} lost its body", s.name);
        }
    }
}
