//! The three instrument kinds: counters, gauges and fixed-bucket histograms.
//!
//! All instruments are `Arc`-shared atomics: cloning a handle is cheap,
//! updates are single relaxed atomic operations, and reads (snapshots) see
//! a consistent-enough view for monitoring purposes.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;

use crate::snapshot::HistogramSnapshot;

/// Default microsecond bucket ladder for latency histograms
/// (1µs … 5s, roughly logarithmic, 16 buckets + overflow).
pub const LATENCY_BUCKETS_US: &[u64] = &[
    1, 2, 5, 10, 20, 50, 100, 200, 500, 1_000, 2_000, 5_000, 10_000, 100_000, 1_000_000, 5_000_000,
];

/// Default byte-size bucket ladder (16B … 1MiB).
pub const SIZE_BUCKETS: &[u64] = &[
    16, 32, 64, 128, 256, 512, 1_024, 4_096, 16_384, 65_536, 262_144, 1_048_576,
];

/// A monotonically increasing counter.
#[derive(Debug, Clone, Default)]
pub struct Counter {
    value: Arc<AtomicU64>,
}

impl Counter {
    /// Creates a detached counter (not registered anywhere).
    pub fn new() -> Self {
        Counter::default()
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A gauge: a value that can go up and down.
#[derive(Debug, Clone, Default)]
pub struct Gauge {
    value: Arc<AtomicI64>,
}

impl Gauge {
    /// Creates a detached gauge (not registered anywhere).
    pub fn new() -> Self {
        Gauge::default()
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Subtracts one.
    #[inline]
    pub fn dec(&self) {
        self.add(-1);
    }

    /// Adds `delta` (may be negative).
    #[inline]
    pub fn add(&self, delta: i64) {
        self.value.fetch_add(delta, Ordering::Relaxed);
    }

    /// Sets the gauge to `v`.
    #[inline]
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

#[derive(Debug)]
struct HistogramInner {
    /// Inclusive upper bounds, strictly increasing. An implicit `+Inf`
    /// bucket follows the last bound.
    bounds: Box<[u64]>,
    /// One slot per bound plus the overflow bucket.
    buckets: Box<[AtomicU64]>,
    sum: AtomicU64,
    count: AtomicU64,
}

/// A fixed-bucket histogram of `u64` observations (typically microseconds
/// or bytes).
#[derive(Debug, Clone)]
pub struct Histogram {
    inner: Arc<HistogramInner>,
}

impl Histogram {
    /// Creates a detached histogram with the given inclusive upper bounds.
    ///
    /// # Panics
    ///
    /// Panics if `bounds` is empty or not strictly increasing.
    pub fn new(bounds: &[u64]) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bucket");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        let buckets = (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect();
        Histogram {
            inner: Arc::new(HistogramInner {
                bounds: bounds.into(),
                buckets,
                sum: AtomicU64::new(0),
                count: AtomicU64::new(0),
            }),
        }
    }

    /// Records one observation.
    #[inline]
    pub fn observe(&self, v: u64) {
        let inner = &self.inner;
        // Bucket ladders are short (≤ 16): a linear scan beats binary
        // search on real hardware and keeps the code branch-predictable.
        let idx = inner
            .bounds
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(inner.bounds.len());
        inner.buckets[idx].fetch_add(1, Ordering::Relaxed);
        inner.sum.fetch_add(v, Ordering::Relaxed);
        inner.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Number of observations so far.
    pub fn count(&self) -> u64 {
        self.inner.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations so far.
    pub fn sum(&self) -> u64 {
        self.inner.sum.load(Ordering::Relaxed)
    }

    /// The configured inclusive upper bounds (without `+Inf`).
    pub fn bounds(&self) -> &[u64] {
        &self.inner.bounds
    }

    /// Takes a point-in-time copy of the histogram state.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let inner = &self.inner;
        HistogramSnapshot {
            bounds: inner.bounds.to_vec(),
            counts: inner
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            sum: inner.sum.load(Ordering::Relaxed),
            count: inner.count.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        let clone = c.clone();
        clone.inc();
        assert_eq!(c.get(), 6, "clones share state");

        let g = Gauge::new();
        g.inc();
        g.inc();
        g.dec();
        assert_eq!(g.get(), 1);
        g.set(-7);
        assert_eq!(g.get(), -7);
    }

    #[test]
    fn histogram_bucketing() {
        let h = Histogram::new(&[10, 100, 1000]);
        for v in [1, 10, 11, 100, 5000] {
            h.observe(v);
        }
        let s = h.snapshot();
        assert_eq!(s.counts, vec![2, 2, 0, 1]); // ≤10, ≤100, ≤1000, +Inf
        assert_eq!(s.count, 5);
        assert_eq!(s.sum, 1 + 10 + 11 + 100 + 5000);
        assert_eq!(s.quantile(0.5), Some(100));
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn bad_bounds_rejected() {
        let _ = Histogram::new(&[5, 5]);
    }
}
