#![warn(missing_docs)]
#![forbid(unsafe_code)]

//! # `aaa-obs` — first-class observability for the AAA middleware
//!
//! The paper's whole argument is quantitative: causal-ordering cost per
//! message (matrix-cell operations, stamp bytes, disk writes — Figures
//! 7–11). This crate gives every layer of the stack one shared vocabulary
//! for those quantities:
//!
//! - a [`Registry`] of lock-free instruments — [`Counter`], [`Gauge`] and
//!   fixed-bucket [`Histogram`]s, all plain atomics with no external
//!   dependencies;
//! - a small [`Meter`] handle that sans-IO cores take as an **optional**
//!   field: cores built without one pay a single branch per event, so
//!   benchmarks with metrics disabled are unaffected;
//! - [`MetricsSnapshot`] with Prometheus-text and JSON exposition, plus a
//!   tiny HTTP exporter ([`serve`]);
//! - a [`LatencyTracker`] correlating message send and delivery times
//!   across servers, on wall-clock *or* virtual time — the simulator and
//!   the threaded runtime publish the same metric names.
//!
//! ## Hot-path design
//!
//! Registration (`Registry::counter` & friends) takes a mutex and interns
//! the `(name, labels)` pair; it happens once, at core construction. The
//! returned handles are `Arc<AtomicU64>` behind the scenes: updating one is
//! a single relaxed atomic add, safe to clone across threads, and never
//! blocks the registry.
//!
//! ```
//! use aaa_obs::{Meter, Registry};
//!
//! let registry = Registry::new();
//! let meter = Meter::new(&registry).with_label("server", "3");
//! let delivered = meter.counter("aaa_channel_delivered_total", "Messages delivered");
//! delivered.inc();
//! let snap = registry.snapshot();
//! assert_eq!(snap.counter("aaa_channel_delivered_total", &[("server", "3")]), Some(1));
//! ```

mod instruments;
mod latency;
mod registry;
mod serve;
mod snapshot;

pub use instruments::{Counter, Gauge, Histogram, LATENCY_BUCKETS_US, SIZE_BUCKETS};
pub use latency::LatencyTracker;
pub use registry::{Meter, Registry};
pub use serve::{serve, MetricsServer};
pub use snapshot::{
    HistogramSnapshot, MetricFamily, MetricKind, MetricsSnapshot, Sample, SampleValue,
};
