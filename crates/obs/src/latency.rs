//! Cross-server send→deliver latency correlation.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use aaa_base::MessageId;

/// Correlates message send times with their delivery, across servers.
///
/// The runtime records wall-clock microseconds, the simulator virtual-time
/// microseconds — the tracker is agnostic; it only matches ids. Cloning is
/// cheap and all clones share state (one tracker per system).
///
/// Entries for messages that are never delivered (crashes, unordered drops)
/// are abandoned in the map; [`LatencyTracker::record_send`] caps the map
/// so an unbounded leak is impossible.
#[derive(Debug, Clone, Default)]
pub struct LatencyTracker {
    inner: Arc<Mutex<HashMap<MessageId, u64>>>,
}

/// Safety valve: beyond this many outstanding sends, new sends are not
/// tracked (their delivery will simply not be observed).
const MAX_OUTSTANDING: usize = 1 << 20;

impl LatencyTracker {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        LatencyTracker::default()
    }

    /// Records that `id` was sent at `at_us` (µs on the caller's clock).
    pub fn record_send(&self, id: MessageId, at_us: u64) {
        let mut map = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        if map.len() < MAX_OUTSTANDING {
            map.insert(id, at_us);
        }
    }

    /// Takes the send time of `id`, if one was recorded.
    pub fn take_send(&self, id: MessageId) -> Option<u64> {
        self.inner
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .remove(&id)
    }

    /// Number of sends awaiting delivery.
    pub fn outstanding(&self) -> usize {
        self.inner.lock().unwrap_or_else(|p| p.into_inner()).len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aaa_base::ServerId;

    #[test]
    fn send_take_roundtrip() {
        let t = LatencyTracker::new();
        let id = MessageId::new(ServerId::new(1), 7);
        t.record_send(id, 100);
        assert_eq!(t.outstanding(), 1);
        assert_eq!(t.take_send(id), Some(100));
        assert_eq!(t.take_send(id), None);
        assert_eq!(t.outstanding(), 0);
    }
}
