//! The metrics [`Registry`] and the per-scope [`Meter`] handle.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

use crate::instruments::{Counter, Gauge, Histogram};
use crate::snapshot::{MetricFamily, MetricKind, MetricsSnapshot, Sample, SampleValue};

/// One registered instrument.
#[derive(Debug, Clone)]
enum Instrument {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

#[derive(Debug)]
struct Family {
    help: &'static str,
    kind: MetricKind,
    /// Keyed by the canonical label rendering for deterministic snapshots.
    samples: BTreeMap<String, (Vec<(String, String)>, Instrument)>,
}

#[derive(Debug, Default)]
struct Inner {
    families: Mutex<BTreeMap<&'static str, Family>>,
}

/// A registry of named, labelled instruments.
///
/// Cloning is cheap (an `Arc` bump); all clones observe the same metrics.
/// Instrument *registration* takes a mutex; the returned handles update
/// lock-free. Register once at construction time, then update freely.
#[derive(Debug, Clone, Default)]
pub struct Registry {
    inner: Arc<Inner>,
}

/// Renders labels canonically: sorted by key, `k="v"` joined with commas.
fn label_key(labels: &[(String, String)]) -> String {
    let mut parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", v.replace('\\', "\\\\").replace('"', "\\\"")))
        .collect();
    parts.sort();
    parts.join(",")
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    fn get_or_insert<F>(
        &self,
        name: &'static str,
        help: &'static str,
        kind: MetricKind,
        labels: &[(&'static str, String)],
        make: F,
    ) -> Instrument
    where
        F: FnOnce() -> Instrument,
    {
        let owned: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| ((*k).to_owned(), v.clone()))
            .collect();
        let key = label_key(&owned);
        let mut families = self
            .inner
            .families
            .lock()
            .unwrap_or_else(|p| p.into_inner());
        let family = families.entry(name).or_insert_with(|| Family {
            help,
            kind,
            samples: BTreeMap::new(),
        });
        assert!(
            family.kind == kind,
            "metric {name} registered twice with different kinds"
        );
        family
            .samples
            .entry(key)
            .or_insert_with(|| (owned, make()))
            .1
            .clone()
    }

    /// Returns the counter `name{labels}`, creating it on first use.
    pub fn counter(
        &self,
        name: &'static str,
        help: &'static str,
        labels: &[(&'static str, String)],
    ) -> Counter {
        match self.get_or_insert(name, help, MetricKind::Counter, labels, || {
            Instrument::Counter(Counter::new())
        }) {
            Instrument::Counter(c) => c,
            _ => unreachable!("kind checked above"),
        }
    }

    /// Returns the gauge `name{labels}`, creating it on first use.
    pub fn gauge(
        &self,
        name: &'static str,
        help: &'static str,
        labels: &[(&'static str, String)],
    ) -> Gauge {
        match self.get_or_insert(name, help, MetricKind::Gauge, labels, || {
            Instrument::Gauge(Gauge::new())
        }) {
            Instrument::Gauge(g) => g,
            _ => unreachable!("kind checked above"),
        }
    }

    /// Returns the histogram `name{labels}`, creating it with `bounds` on
    /// first use (later callers inherit the original bounds).
    pub fn histogram(
        &self,
        name: &'static str,
        help: &'static str,
        labels: &[(&'static str, String)],
        bounds: &[u64],
    ) -> Histogram {
        match self.get_or_insert(name, help, MetricKind::Histogram, labels, || {
            Instrument::Histogram(Histogram::new(bounds))
        }) {
            Instrument::Histogram(h) => h,
            _ => unreachable!("kind checked above"),
        }
    }

    /// Takes a point-in-time snapshot of every instrument.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let families = self
            .inner
            .families
            .lock()
            .unwrap_or_else(|p| p.into_inner());
        MetricsSnapshot {
            families: families
                .iter()
                .map(|(&name, fam)| MetricFamily {
                    name: name.to_owned(),
                    help: fam.help.to_owned(),
                    kind: fam.kind,
                    samples: fam
                        .samples
                        .values()
                        .map(|(labels, inst)| Sample {
                            labels: labels.clone(),
                            value: match inst {
                                Instrument::Counter(c) => SampleValue::Counter(c.get()),
                                Instrument::Gauge(g) => SampleValue::Gauge(g.get()),
                                Instrument::Histogram(h) => SampleValue::Histogram(h.snapshot()),
                            },
                        })
                        .collect(),
                })
                .collect(),
        }
    }
}

/// A cheap handle carrying a registry plus a set of base labels
/// (typically `server="<id>"`), from which cores mint their instruments.
///
/// Cores store `Option<...>` bundles of concrete [`Counter`]/[`Gauge`]/
/// [`Histogram`] handles built from a `Meter`; absent a meter they pay one
/// branch per event and no atomic traffic at all.
#[derive(Debug, Clone)]
pub struct Meter {
    registry: Registry,
    base: Vec<(&'static str, String)>,
}

impl Meter {
    /// Creates a meter rooted at `registry` with no base labels.
    pub fn new(registry: &Registry) -> Self {
        Meter {
            registry: registry.clone(),
            base: Vec::new(),
        }
    }

    /// Returns a child meter with one more base label.
    pub fn with_label(&self, key: &'static str, value: impl Into<String>) -> Meter {
        let mut base = self.base.clone();
        base.push((key, value.into()));
        Meter {
            registry: self.registry.clone(),
            base,
        }
    }

    /// The underlying registry.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    fn merged(&self, extra: &[(&'static str, String)]) -> Vec<(&'static str, String)> {
        let mut all = self.base.clone();
        all.extend(extra.iter().map(|(k, v)| (*k, v.clone())));
        all
    }

    /// Mints the counter `name` with the meter's base labels.
    pub fn counter(&self, name: &'static str, help: &'static str) -> Counter {
        self.registry.counter(name, help, &self.base)
    }

    /// Mints the counter `name` with base labels plus `extra`.
    pub fn counter_with(
        &self,
        name: &'static str,
        help: &'static str,
        extra: &[(&'static str, String)],
    ) -> Counter {
        self.registry.counter(name, help, &self.merged(extra))
    }

    /// Mints the gauge `name` with the meter's base labels.
    pub fn gauge(&self, name: &'static str, help: &'static str) -> Gauge {
        self.registry.gauge(name, help, &self.base)
    }

    /// Mints the gauge `name` with base labels plus `extra`.
    pub fn gauge_with(
        &self,
        name: &'static str,
        help: &'static str,
        extra: &[(&'static str, String)],
    ) -> Gauge {
        self.registry.gauge(name, help, &self.merged(extra))
    }

    /// Mints the histogram `name` with the meter's base labels.
    pub fn histogram(&self, name: &'static str, help: &'static str, bounds: &[u64]) -> Histogram {
        self.registry.histogram(name, help, &self.base, bounds)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_name_and_labels_share_state() {
        let r = Registry::new();
        let a = r.counter("x_total", "help", &[("server", "1".into())]);
        let b = r.counter("x_total", "help", &[("server", "1".into())]);
        a.inc();
        b.inc();
        assert_eq!(a.get(), 2);
        let c = r.counter("x_total", "help", &[("server", "2".into())]);
        c.inc();
        let snap = r.snapshot();
        assert_eq!(snap.counter("x_total", &[("server", "1")]), Some(2));
        assert_eq!(snap.counter("x_total", &[("server", "2")]), Some(1));
        assert_eq!(snap.sum_counter("x_total"), 3);
    }

    #[test]
    fn meter_base_labels_compose() {
        let r = Registry::new();
        let m = Meter::new(&r).with_label("server", "7");
        let c = m.counter_with("y_total", "help", &[("domain", "3".into())]);
        c.add(5);
        let snap = r.snapshot();
        assert_eq!(
            snap.counter("y_total", &[("server", "7"), ("domain", "3")]),
            Some(5)
        );
    }

    #[test]
    #[should_panic(expected = "different kinds")]
    fn kind_conflicts_detected() {
        let r = Registry::new();
        let _ = r.counter("z", "h", &[]);
        let _ = r.gauge("z", "h", &[]);
    }
}
