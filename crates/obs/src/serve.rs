//! A tiny, dependency-free HTTP exporter for metric snapshots.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crate::Registry;

/// Handle to a running metrics exporter. Dropping it stops the server.
#[derive(Debug)]
pub struct MetricsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl MetricsServer {
    /// The address the exporter actually bound (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the exporter and joins its thread.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

fn respond(mut stream: TcpStream, registry: &Registry) {
    let mut buf = [0u8; 1024];
    let _ = stream.set_read_timeout(Some(Duration::from_millis(200)));
    let n = stream.read(&mut buf).unwrap_or(0);
    let request = String::from_utf8_lossy(&buf[..n]);
    let path = request
        .lines()
        .next()
        .and_then(|l| l.split_whitespace().nth(1))
        .unwrap_or("/metrics");
    let snapshot = registry.snapshot();
    let (content_type, body) = if path.ends_with(".json") || path.starts_with("/json") {
        ("application/json", snapshot.render_json())
    } else {
        (
            "text/plain; version=0.0.4; charset=utf-8",
            snapshot.render_prometheus(),
        )
    };
    let response = format!(
        "HTTP/1.1 200 OK\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len(),
    );
    let _ = stream.write_all(response.as_bytes());
}

/// Serves `registry` over HTTP at `addr` (e.g. `"127.0.0.1:9464"`).
///
/// `GET /metrics` returns Prometheus text; `GET /metrics.json` (or any
/// `.json` path) returns the JSON rendering. The listener polls so the
/// returned handle can stop it promptly.
///
/// # Errors
///
/// Returns the I/O error if the address cannot be bound.
pub fn serve(registry: Registry, addr: &str) -> std::io::Result<MetricsServer> {
    let listener = TcpListener::bind(addr)?;
    listener.set_nonblocking(true)?;
    let local = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let stop2 = stop.clone();
    let handle = std::thread::Builder::new()
        .name("aaa-obs-exporter".into())
        .spawn(move || {
            while !stop2.load(Ordering::Acquire) {
                match listener.accept() {
                    Ok((stream, _)) => {
                        let _ = stream.set_nonblocking(false);
                        respond(stream, &registry);
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(10));
                    }
                    Err(_) => std::thread::sleep(Duration::from_millis(10)),
                }
            }
        })?;
    Ok(MetricsServer {
        addr: local,
        stop,
        handle: Some(handle),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Meter;

    #[test]
    fn exporter_serves_text_and_json() {
        let registry = Registry::new();
        Meter::new(&registry)
            .with_label("server", "0")
            .counter("e_total", "exporter test")
            .add(9);
        let server = serve(registry, "127.0.0.1:0").expect("bind");
        let addr = server.addr();

        let fetch = |path: &str| {
            let mut s = TcpStream::connect(addr).expect("connect");
            write!(s, "GET {path} HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
            let mut out = String::new();
            let _ = s.read_to_string(&mut out);
            out
        };

        let text = fetch("/metrics");
        assert!(text.contains("200 OK"), "{text}");
        assert!(text.contains("e_total{server=\"0\"} 9"));
        let json = fetch("/metrics.json");
        assert!(json.contains("application/json"));
        assert!(json.contains("\"name\":\"e_total\""));
        server.shutdown();
    }
}
