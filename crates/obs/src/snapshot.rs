//! Point-in-time metric snapshots and their Prometheus/JSON renderings.

/// The kind of a metric family.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonically increasing counter.
    Counter,
    /// Up/down gauge.
    Gauge,
    /// Fixed-bucket histogram.
    Histogram,
}

impl MetricKind {
    fn prometheus_name(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

/// A point-in-time copy of one histogram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Inclusive upper bounds (without the implicit `+Inf`).
    pub bounds: Vec<u64>,
    /// Per-bucket counts; one entry per bound plus the `+Inf` overflow.
    pub counts: Vec<u64>,
    /// Sum of all observations.
    pub sum: u64,
    /// Total number of observations.
    pub count: u64,
}

impl HistogramSnapshot {
    /// Upper bound of the bucket containing quantile `q` (0.0–1.0), or
    /// `None` when the histogram is empty. Observations beyond the last
    /// bound report that last bound.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let rank = (q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64;
        let mut seen = 0;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank.max(1) {
                return Some(*self.bounds.get(i).unwrap_or(self.bounds.last()?));
            }
        }
        self.bounds.last().copied()
    }
}

/// One labelled sample of a family.
#[derive(Debug, Clone)]
pub struct Sample {
    /// Label key/value pairs, in registration order.
    pub labels: Vec<(String, String)>,
    /// The observed value.
    pub value: SampleValue,
}

/// The value of one sample.
#[derive(Debug, Clone)]
pub enum SampleValue {
    /// Counter reading.
    Counter(u64),
    /// Gauge reading.
    Gauge(i64),
    /// Histogram state.
    Histogram(HistogramSnapshot),
}

/// All samples of one metric name.
#[derive(Debug, Clone)]
pub struct MetricFamily {
    /// Metric name, e.g. `aaa_channel_cell_ops_total`.
    pub name: String,
    /// Help text.
    pub help: String,
    /// Counter / gauge / histogram.
    pub kind: MetricKind,
    /// The labelled samples, sorted by canonical label key.
    pub samples: Vec<Sample>,
}

/// A point-in-time view over a whole [`crate::Registry`].
///
/// Families and samples are sorted (by name, then canonical label key), so
/// two snapshots of identical state render byte-identically — which is what
/// makes golden-file exposition tests possible.
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    /// All metric families, sorted by name.
    pub families: Vec<MetricFamily>,
}

fn labels_match(sample: &Sample, want: &[(&str, &str)]) -> bool {
    want.len() == sample.labels.len()
        && want
            .iter()
            .all(|(k, v)| sample.labels.iter().any(|(sk, sv)| sk == k && sv == v))
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

fn render_labels(labels: &[(String, String)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let mut sorted: Vec<&(String, String)> = labels.iter().collect();
    sorted.sort();
    let inner: Vec<String> = sorted
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape(v)))
        .collect();
    format!("{{{}}}", inner.join(","))
}

fn render_labels_extra(labels: &[(String, String)], extra_k: &str, extra_v: &str) -> String {
    let mut all: Vec<(String, String)> = labels.to_vec();
    all.push((extra_k.to_owned(), extra_v.to_owned()));
    render_labels(&all)
}

impl MetricsSnapshot {
    /// Looks up a family by name.
    pub fn family(&self, name: &str) -> Option<&MetricFamily> {
        self.families.iter().find(|f| f.name == name)
    }

    /// Reads the counter `name{labels}` (labels must match exactly).
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Option<u64> {
        self.family(name)?
            .samples
            .iter()
            .find_map(|s| match (&s.value, labels_match(s, labels)) {
                (SampleValue::Counter(v), true) => Some(*v),
                _ => None,
            })
    }

    /// Reads the gauge `name{labels}` (labels must match exactly).
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Option<i64> {
        self.family(name)?
            .samples
            .iter()
            .find_map(|s| match (&s.value, labels_match(s, labels)) {
                (SampleValue::Gauge(v), true) => Some(*v),
                _ => None,
            })
    }

    /// Reads the histogram `name{labels}` (labels must match exactly).
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Option<&HistogramSnapshot> {
        self.family(name)?
            .samples
            .iter()
            .find_map(|s| match (&s.value, labels_match(s, labels)) {
                (SampleValue::Histogram(h), true) => Some(h),
                _ => None,
            })
    }

    /// Sums every sample of counter `name` whose labels include all of
    /// `labels` (further labels, e.g. a `domain`, may be present).
    pub fn sum_counter_labelled(&self, name: &str, labels: &[(&str, &str)]) -> u64 {
        self.family(name)
            .map(|f| {
                f.samples
                    .iter()
                    .filter(|s| {
                        labels
                            .iter()
                            .all(|(k, v)| s.labels.iter().any(|(sk, sv)| sk == k && sv == v))
                    })
                    .filter_map(|s| match &s.value {
                        SampleValue::Counter(v) => Some(*v),
                        _ => None,
                    })
                    .sum()
            })
            .unwrap_or(0)
    }

    /// Sums every sample of counter `name` across all label sets.
    pub fn sum_counter(&self, name: &str) -> u64 {
        self.family(name)
            .map(|f| {
                f.samples
                    .iter()
                    .filter_map(|s| match &s.value {
                        SampleValue::Counter(v) => Some(*v),
                        _ => None,
                    })
                    .sum()
            })
            .unwrap_or(0)
    }

    /// Sums every sample of gauge `name` across all label sets.
    pub fn sum_gauge(&self, name: &str) -> i64 {
        self.family(name)
            .map(|f| {
                f.samples
                    .iter()
                    .filter_map(|s| match &s.value {
                        SampleValue::Gauge(v) => Some(*v),
                        _ => None,
                    })
                    .sum()
            })
            .unwrap_or(0)
    }

    /// Renders the snapshot in the Prometheus text exposition format
    /// (version 0.0.4). Deterministic for identical registry state.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        for fam in &self.families {
            out.push_str(&format!("# HELP {} {}\n", fam.name, fam.help));
            out.push_str(&format!(
                "# TYPE {} {}\n",
                fam.name,
                fam.kind.prometheus_name()
            ));
            for s in &fam.samples {
                match &s.value {
                    SampleValue::Counter(v) => {
                        out.push_str(&format!("{}{} {v}\n", fam.name, render_labels(&s.labels)));
                    }
                    SampleValue::Gauge(v) => {
                        out.push_str(&format!("{}{} {v}\n", fam.name, render_labels(&s.labels)));
                    }
                    SampleValue::Histogram(h) => {
                        let mut cumulative = 0;
                        for (i, &bound) in h.bounds.iter().enumerate() {
                            cumulative += h.counts[i];
                            out.push_str(&format!(
                                "{}_bucket{} {cumulative}\n",
                                fam.name,
                                render_labels_extra(&s.labels, "le", &bound.to_string()),
                            ));
                        }
                        out.push_str(&format!(
                            "{}_bucket{} {}\n",
                            fam.name,
                            render_labels_extra(&s.labels, "le", "+Inf"),
                            h.count,
                        ));
                        out.push_str(&format!(
                            "{}_sum{} {}\n",
                            fam.name,
                            render_labels(&s.labels),
                            h.sum
                        ));
                        out.push_str(&format!(
                            "{}_count{} {}\n",
                            fam.name,
                            render_labels(&s.labels),
                            h.count
                        ));
                    }
                }
            }
        }
        out
    }

    /// Renders the snapshot as JSON (hand-rolled, dependency-free).
    pub fn render_json(&self) -> String {
        fn jstr(s: &str) -> String {
            format!("\"{}\"", escape(s))
        }
        let mut fams = Vec::new();
        for fam in &self.families {
            let mut samples = Vec::new();
            for s in &fam.samples {
                let labels: Vec<String> = {
                    let mut sorted: Vec<&(String, String)> = s.labels.iter().collect();
                    sorted.sort();
                    sorted
                        .iter()
                        .map(|(k, v)| format!("{}:{}", jstr(k), jstr(v)))
                        .collect()
                };
                let value = match &s.value {
                    SampleValue::Counter(v) => format!("\"value\":{v}"),
                    SampleValue::Gauge(v) => format!("\"value\":{v}"),
                    SampleValue::Histogram(h) => format!(
                        "\"histogram\":{{\"bounds\":{:?},\"counts\":{:?},\"sum\":{},\"count\":{}}}",
                        h.bounds, h.counts, h.sum, h.count
                    ),
                };
                samples.push(format!("{{\"labels\":{{{}}},{value}}}", labels.join(",")));
            }
            fams.push(format!(
                "{{\"name\":{},\"help\":{},\"kind\":{},\"samples\":[{}]}}",
                jstr(&fam.name),
                jstr(&fam.help),
                jstr(fam.kind.prometheus_name()),
                samples.join(",")
            ));
        }
        format!("{{\"families\":[{}]}}", fams.join(","))
    }
}

#[cfg(test)]
mod tests {
    use crate::{Meter, Registry, LATENCY_BUCKETS_US};

    fn sample_registry() -> Registry {
        let r = Registry::new();
        let m = Meter::new(&r).with_label("server", "0");
        m.counter("t_total", "a counter").add(3);
        m.gauge("g", "a gauge").set(-2);
        let h = m.histogram("lat_us", "a histogram", &[10, 100]);
        h.observe(5);
        h.observe(50);
        h.observe(5000);
        r
    }

    #[test]
    fn prometheus_rendering_is_deterministic_and_complete() {
        let text = sample_registry().snapshot().render_prometheus();
        let text2 = sample_registry().snapshot().render_prometheus();
        assert_eq!(text, text2);
        assert!(text.contains("# TYPE t_total counter"));
        assert!(text.contains("t_total{server=\"0\"} 3"));
        assert!(text.contains("g{server=\"0\"} -2"));
        assert!(text.contains("lat_us_bucket{le=\"10\",server=\"0\"} 1"));
        assert!(text.contains("lat_us_bucket{le=\"100\",server=\"0\"} 2"));
        assert!(text.contains("lat_us_bucket{le=\"+Inf\",server=\"0\"} 3"));
        assert!(text.contains("lat_us_sum{server=\"0\"} 5055"));
        assert!(text.contains("lat_us_count{server=\"0\"} 3"));
    }

    #[test]
    fn json_rendering_contains_families() {
        let json = sample_registry().snapshot().render_json();
        assert!(json.starts_with("{\"families\":["));
        assert!(json.contains("\"name\":\"t_total\""));
        assert!(
            json.contains("\"histogram\":{\"bounds\":[10, 100]")
                || json.contains("\"histogram\":{\"bounds\":[10,100]")
        );
    }

    #[test]
    fn quantiles() {
        let h = crate::Histogram::new(LATENCY_BUCKETS_US);
        assert_eq!(h.snapshot().quantile(0.5), None);
        for v in [1, 3, 9, 40, 800] {
            h.observe(v);
        }
        let s = h.snapshot();
        assert_eq!(s.quantile(0.0), Some(1));
        assert_eq!(s.quantile(0.5), Some(10));
        assert_eq!(s.quantile(1.0), Some(1_000));
    }
}
