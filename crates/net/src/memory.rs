//! In-process transport connecting a set of agent servers.
//!
//! Replaces the paper's TCP mesh between JVMs with FIFO byte channels
//! inside one process. Each server owns a [`MemoryEndpoint`]; bytes sent to
//! a peer arrive on the peer's receive queue tagged with the sender's id.
//! Per-(sender → receiver) FIFO ordering is guaranteed (crossbeam channels
//! are FIFO and each endpoint pushes from a single server thread), which is
//! exactly the property the AAA channel's causal protocol needs.

use aaa_base::{Error, Result, ServerId};
use aaa_obs::Meter;
use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use std::sync::Arc;

use crate::metrics::NetMetrics;
use crate::transport::{NotifySlot, ReadyNotifier};

/// A datagram tagged with its sender.
#[derive(Debug, Clone)]
pub struct Incoming {
    /// The server that sent the bytes.
    pub from: ServerId,
    /// The payload.
    pub bytes: Bytes,
}

/// One server's handle on the in-memory network.
#[derive(Debug, Clone)]
pub struct MemoryEndpoint {
    me: ServerId,
    peers: Vec<Sender<Incoming>>,
    inbox: Receiver<Incoming>,
    /// One readiness slot per endpoint, shared network-wide: a sender
    /// pokes the destination's slot right after pushing into its inbox.
    notifiers: Arc<Vec<NotifySlot>>,
    metrics: Option<NetMetrics>,
}

impl MemoryEndpoint {
    /// This endpoint's server id.
    pub fn me(&self) -> ServerId {
        self.me
    }

    /// Attaches a metrics meter; subsequent traffic updates the
    /// `aaa_net_tx_*`/`aaa_net_rx_*` per-peer counters in the meter's
    /// registry. Without a meter (the default) traffic is uncounted and
    /// costs one branch per frame.
    pub fn attach_meter(&mut self, meter: &Meter) {
        self.metrics = Some(NetMetrics::new(meter, self.peers.len()));
    }

    /// Records one received frame of `len` payload bytes from `from`.
    ///
    /// [`MemoryEndpoint::recv_timeout`] and [`MemoryEndpoint::try_recv`]
    /// call this internally; runtimes draining [`inbox_receiver`]
    /// directly (for example through `crossbeam::select!`) should call it
    /// per drained frame so receive counters stay accurate.
    ///
    /// [`inbox_receiver`]: MemoryEndpoint::inbox_receiver
    pub fn record_rx(&self, from: ServerId, len: usize) {
        if let Some(m) = &self.metrics {
            m.on_rx(from, len);
        }
    }

    /// Number of servers on the network.
    pub fn peer_count(&self) -> usize {
        self.peers.len()
    }

    /// Sends `bytes` to `to`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownServer`] if `to` is not on the network, or
    /// [`Error::Closed`] if the peer's endpoint has been dropped.
    pub fn send(&self, to: ServerId, bytes: Bytes) -> Result<()> {
        let tx = self
            .peers
            .get(to.as_usize())
            .ok_or(Error::UnknownServer(to))?;
        let len = bytes.len();
        tx.send(Incoming {
            from: self.me,
            bytes,
        })
        .map_err(|_| Error::Closed("peer endpoint"))?;
        if let Some(slot) = self.notifiers.get(to.as_usize()) {
            slot.notify();
        }
        if let Some(m) = &self.metrics {
            m.on_tx(to, len);
        }
        Ok(())
    }

    /// Installs this endpoint's readiness notifier (see
    /// [`crate::Transport::set_ready_notifier`] for the contract).
    pub fn set_ready_notifier(&mut self, notifier: ReadyNotifier) {
        if let Some(slot) = self.notifiers.get(self.me.as_usize()) {
            slot.set(notifier);
        }
    }

    /// Receives the next datagram, blocking up to `timeout`.
    ///
    /// Returns `Ok(None)` on timeout.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Closed`] if every sender to this endpoint has been
    /// dropped (the network is shutting down).
    pub fn recv_timeout(&self, timeout: std::time::Duration) -> Result<Option<Incoming>> {
        match self.inbox.recv_timeout(timeout) {
            Ok(msg) => {
                self.record_rx(msg.from, msg.bytes.len());
                Ok(Some(msg))
            }
            Err(RecvTimeoutError::Timeout) => Ok(None),
            Err(RecvTimeoutError::Disconnected) => Err(Error::Closed("network")),
        }
    }

    /// The raw inbox receiver, for use with `crossbeam::select!` in
    /// runtimes multiplexing the network with command channels.
    pub fn inbox_receiver(&self) -> &Receiver<Incoming> {
        &self.inbox
    }

    /// Receives without blocking; `Ok(None)` if the inbox is empty.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Closed`] if the network is shutting down.
    pub fn try_recv(&self) -> Result<Option<Incoming>> {
        match self.inbox.try_recv() {
            Ok(msg) => {
                self.record_rx(msg.from, msg.bytes.len());
                Ok(Some(msg))
            }
            Err(crossbeam::channel::TryRecvError::Empty) => Ok(None),
            Err(crossbeam::channel::TryRecvError::Disconnected) => Err(Error::Closed("network")),
        }
    }
}

/// Factory for a fully connected in-memory network.
#[derive(Debug)]
pub struct MemoryNetwork;

impl MemoryNetwork {
    /// Creates endpoints for servers `0..n`, fully connected.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or exceeds the `u16` server-id space.
    pub fn create(n: usize) -> Vec<MemoryEndpoint> {
        assert!(n > 0, "a network needs at least one endpoint");
        // Server ids are u16 on the wire; an unguarded `i as u16` below
        // would silently alias endpoint 65536 onto id 0.
        assert!(
            n <= usize::from(u16::MAX) + 1,
            "server ids are u16: cannot create {n} endpoints"
        );
        let mut txs = Vec::with_capacity(n);
        let mut rxs = Vec::with_capacity(n);
        for _ in 0..n {
            let (tx, rx) = unbounded();
            txs.push(tx);
            rxs.push(rx);
        }
        let notifiers = Arc::new((0..n).map(|_| NotifySlot::new()).collect::<Vec<_>>());
        rxs.into_iter()
            .enumerate()
            .map(|(i, inbox)| MemoryEndpoint {
                me: ServerId::new(i as u16),
                peers: txs.clone(),
                inbox,
                notifiers: notifiers.clone(),
                metrics: None,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn point_to_point() {
        let eps = MemoryNetwork::create(3);
        eps[0]
            .send(ServerId::new(2), Bytes::from_static(b"hi"))
            .unwrap();
        let got = eps[2]
            .recv_timeout(Duration::from_secs(1))
            .unwrap()
            .expect("message should arrive");
        assert_eq!(got.from, ServerId::new(0));
        assert_eq!(&got.bytes[..], b"hi");
        assert_eq!(eps[0].me(), ServerId::new(0));
        assert_eq!(eps[0].peer_count(), 3);
    }

    #[test]
    fn per_link_fifo() {
        let eps = MemoryNetwork::create(2);
        for i in 0..100u32 {
            eps[0]
                .send(ServerId::new(1), Bytes::from(i.to_le_bytes().to_vec()))
                .unwrap();
        }
        for i in 0..100u32 {
            let got = eps[1].try_recv().unwrap().expect("queued");
            assert_eq!(got.bytes[..], i.to_le_bytes());
        }
        assert!(eps[1].try_recv().unwrap().is_none());
    }

    #[test]
    fn unknown_peer_errors() {
        let eps = MemoryNetwork::create(1);
        assert!(matches!(
            eps[0].send(ServerId::new(9), Bytes::new()),
            Err(Error::UnknownServer(_))
        ));
    }

    #[test]
    fn timeout_returns_none() {
        let eps = MemoryNetwork::create(2);
        assert!(eps[1]
            .recv_timeout(Duration::from_millis(10))
            .unwrap()
            .is_none());
    }

    #[test]
    fn self_send_works() {
        // The channel may loop a frame to itself (degenerate but legal).
        let eps = MemoryNetwork::create(1);
        eps[0]
            .send(ServerId::new(0), Bytes::from_static(b"x"))
            .unwrap();
        assert!(eps[0].try_recv().unwrap().is_some());
    }

    #[test]
    fn cross_thread_usage() {
        let eps = MemoryNetwork::create(2);
        let a = eps[0].clone();
        let handle = std::thread::spawn(move || {
            for i in 0..50u32 {
                a.send(ServerId::new(1), Bytes::from(i.to_le_bytes().to_vec()))
                    .unwrap();
            }
        });
        let mut got = 0;
        while got < 50 {
            if eps[1]
                .recv_timeout(Duration::from_secs(1))
                .unwrap()
                .is_some()
            {
                got += 1;
            }
        }
        handle.join().unwrap();
    }
}
