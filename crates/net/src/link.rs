//! Reliable FIFO link endpoints (sans-IO).
//!
//! The AAA channel requires *reliable FIFO* transfer between neighbouring
//! servers: the causal protocol's Updates reconstruction and the
//! transactional hand-off both depend on it (§3, §5, Appendix A). These
//! state machines provide that guarantee over an unreliable datagram
//! substrate:
//!
//! - the sender assigns consecutive sequence numbers, keeps unacknowledged
//!   frames with a retransmission deadline, and resends them when
//!   [`LinkSender::due_retransmissions`] is polled past the deadline;
//! - the receiver delivers payloads strictly in sequence order, buffering
//!   out-of-order arrivals and dropping duplicates, and acknowledges
//!   cumulatively.
//!
//! The structs are sans-IO: they never touch sockets or clocks themselves.
//! The threaded runtime polls them with wall-clock time, the discrete-event
//! simulator with virtual time — the same code is exercised either way.

use std::collections::{BTreeMap, VecDeque};

use aaa_base::{VDuration, VTime};
use bytes::Bytes;

/// Default retransmission timeout.
pub const DEFAULT_RTO: VDuration = VDuration::from_millis(200);

/// A sequenced frame on a link.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LinkFrame {
    /// Link-local sequence number (starts at 1).
    pub seq: u64,
    /// Opaque payload (an encoded [`crate::WireMessage`] in the MOM).
    pub payload: Bytes,
}

/// What actually travels on the wire between two servers: sequenced data
/// or a cumulative acknowledgement (the `ACK` of the paper's §5 channel
/// transaction).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Datagram {
    /// A sequenced payload frame.
    Data(LinkFrame),
    /// Cumulative acknowledgement of sequence numbers up to `cum_seq`.
    Ack {
        /// Highest contiguously received link sequence number.
        cum_seq: u64,
    },
}

impl Datagram {
    /// Encodes the datagram to bytes.
    pub fn encode(&self) -> Bytes {
        match self {
            Datagram::Data(f) => {
                let mut out = Vec::with_capacity(9 + f.payload.len());
                out.push(0);
                out.extend_from_slice(&f.seq.to_le_bytes());
                out.extend_from_slice(&f.payload);
                Bytes::from(out)
            }
            Datagram::Ack { cum_seq } => {
                let mut out = Vec::with_capacity(9);
                out.push(1);
                out.extend_from_slice(&cum_seq.to_le_bytes());
                Bytes::from(out)
            }
        }
    }

    /// Decodes a datagram produced by [`Datagram::encode`].
    ///
    /// # Errors
    ///
    /// Returns [`aaa_base::Error::Codec`] on truncation or an unknown tag.
    pub fn decode(mut bytes: Bytes) -> aaa_base::Result<Datagram> {
        use aaa_base::Error;
        if bytes.is_empty() {
            return Err(Error::Codec("empty datagram".into()));
        }
        let tag = bytes[0];
        match tag {
            0 => {
                if bytes.len() < 9 {
                    return Err(Error::Codec("truncated data frame".into()));
                }
                let seq = u64::from_le_bytes(bytes[1..9].try_into().expect("len checked"));
                let payload = bytes.split_off(9);
                Ok(Datagram::Data(LinkFrame { seq, payload }))
            }
            1 => {
                if bytes.len() < 9 {
                    return Err(Error::Codec("truncated ack".into()));
                }
                let cum_seq = u64::from_le_bytes(bytes[1..9].try_into().expect("len checked"));
                Ok(Datagram::Ack { cum_seq })
            }
            t => Err(Error::Codec(format!("unknown datagram tag {t}"))),
        }
    }
}

/// Sending half of one directed link.
#[derive(Debug)]
pub struct LinkSender {
    next_seq: u64,
    rto: VDuration,
    /// Unacknowledged frames with their next retransmission deadline.
    unacked: VecDeque<(VTime, LinkFrame)>,
}

impl Default for LinkSender {
    fn default() -> Self {
        Self::new()
    }
}

impl LinkSender {
    /// Creates a sender with the [default](DEFAULT_RTO) retransmission
    /// timeout.
    pub fn new() -> Self {
        Self::with_rto(DEFAULT_RTO)
    }

    /// Creates a sender with a custom retransmission timeout.
    pub fn with_rto(rto: VDuration) -> Self {
        LinkSender {
            next_seq: 1,
            rto,
            unacked: VecDeque::new(),
        }
    }

    /// Wraps `payload` into the next sequenced frame; the frame must then
    /// be handed to the transport. `now` sets the retransmission deadline.
    pub fn send(&mut self, payload: Bytes, now: VTime) -> LinkFrame {
        let frame = LinkFrame {
            seq: self.next_seq,
            payload,
        };
        self.next_seq += 1;
        self.unacked.push_back((now + self.rto, frame.clone()));
        frame
    }

    /// Processes a cumulative acknowledgement: frames with `seq <= cum_seq`
    /// are settled and will not be retransmitted.
    pub fn on_ack(&mut self, cum_seq: u64) {
        while matches!(self.unacked.front(), Some((_, f)) if f.seq <= cum_seq) {
            self.unacked.pop_front();
        }
    }

    /// Returns the frames whose retransmission deadline has passed at
    /// `now`, re-arming each with a fresh deadline.
    pub fn due_retransmissions(&mut self, now: VTime) -> Vec<LinkFrame> {
        let mut due = Vec::new();
        for (deadline, frame) in self.unacked.iter_mut() {
            if *deadline <= now {
                *deadline = now + self.rto;
                due.push(frame.clone());
            }
        }
        due
    }

    /// The earliest pending retransmission deadline, if any — what a
    /// runtime should arm its timer to.
    pub fn next_deadline(&self) -> Option<VTime> {
        self.unacked.iter().map(|(d, _)| *d).min()
    }

    /// Number of frames sent but not yet acknowledged.
    pub fn in_flight(&self) -> usize {
        self.unacked.len()
    }

    /// The next sequence number this sender will assign.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// The unacknowledged frames, oldest first (for crash-recovery
    /// journaling).
    pub fn unacked_frames(&self) -> impl Iterator<Item = &LinkFrame> + '_ {
        self.unacked.iter().map(|(_, f)| f)
    }

    /// Rebuilds a sender from persisted state. Every restored frame is
    /// armed for retransmission at `now + rto`.
    pub fn restore(rto: VDuration, next_seq: u64, unacked: Vec<LinkFrame>, now: VTime) -> Self {
        LinkSender {
            next_seq,
            rto,
            unacked: unacked.into_iter().map(|f| (now + rto, f)).collect(),
        }
    }
}

/// What a receiver did with one incoming frame.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct LinkDelivery {
    /// Payloads now deliverable, in FIFO order (possibly several, when a
    /// retransmission fills a gap).
    pub delivered: Vec<Bytes>,
    /// The cumulative acknowledgement to send back, if any progress or a
    /// duplicate was observed.
    pub ack: Option<u64>,
}

/// Receiving half of one directed link.
#[derive(Debug, Default)]
pub struct LinkReceiver {
    /// Highest contiguously delivered sequence number.
    cum: u64,
    /// Out-of-order frames waiting for the gap to fill.
    buffered: BTreeMap<u64, Bytes>,
}

impl LinkReceiver {
    /// Creates a receiver expecting sequence number 1 first.
    pub fn new() -> Self {
        Self::default()
    }

    /// Processes one arriving frame, returning deliverable payloads (in
    /// order) and the cumulative ack to emit.
    ///
    /// Duplicates (already-delivered sequence numbers) produce no delivery
    /// but *do* re-emit the ack, so a lost ack is eventually repaired by
    /// the sender's retransmission.
    pub fn on_frame(&mut self, frame: LinkFrame) -> LinkDelivery {
        if frame.seq > self.cum {
            self.buffered.entry(frame.seq).or_insert(frame.payload);
        }
        let mut delivered = Vec::new();
        while let Some(payload) = self.buffered.remove(&(self.cum + 1)) {
            self.cum += 1;
            delivered.push(payload);
        }
        LinkDelivery {
            delivered,
            ack: Some(self.cum),
        }
    }

    /// Highest contiguously delivered sequence number.
    pub fn cum_seq(&self) -> u64 {
        self.cum
    }

    /// Number of frames buffered out of order.
    pub fn buffered(&self) -> usize {
        self.buffered.len()
    }

    /// Rebuilds a receiver from a persisted cumulative sequence number.
    /// Out-of-order frames buffered at crash time are not restored: the
    /// peer's retransmissions recover them.
    pub fn restore(cum_seq: u64) -> Self {
        LinkReceiver {
            cum: cum_seq,
            buffered: BTreeMap::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn payload(s: &'static str) -> Bytes {
        Bytes::from_static(s.as_bytes())
    }

    #[test]
    fn in_order_delivery() {
        let mut tx = LinkSender::new();
        let mut rx = LinkReceiver::new();
        let f1 = tx.send(payload("a"), VTime::ZERO);
        let f2 = tx.send(payload("b"), VTime::ZERO);
        assert_eq!(tx.in_flight(), 2);

        let out = rx.on_frame(f1);
        assert_eq!(out.delivered, vec![payload("a")]);
        assert_eq!(out.ack, Some(1));
        let out = rx.on_frame(f2);
        assert_eq!(out.delivered, vec![payload("b")]);
        assert_eq!(out.ack, Some(2));

        tx.on_ack(2);
        assert_eq!(tx.in_flight(), 0);
        assert_eq!(tx.next_deadline(), None);
    }

    #[test]
    fn reordering_is_buffered() {
        let mut tx = LinkSender::new();
        let mut rx = LinkReceiver::new();
        let f1 = tx.send(payload("a"), VTime::ZERO);
        let f2 = tx.send(payload("b"), VTime::ZERO);
        let f3 = tx.send(payload("c"), VTime::ZERO);

        let out = rx.on_frame(f3);
        assert!(out.delivered.is_empty());
        assert_eq!(out.ack, Some(0));
        assert_eq!(rx.buffered(), 1);
        let out = rx.on_frame(f2);
        assert!(out.delivered.is_empty());
        let out = rx.on_frame(f1);
        assert_eq!(
            out.delivered,
            vec![payload("a"), payload("b"), payload("c")]
        );
        assert_eq!(out.ack, Some(3));
        assert_eq!(rx.buffered(), 0);
    }

    #[test]
    fn duplicates_are_suppressed_but_acked() {
        let mut tx = LinkSender::new();
        let mut rx = LinkReceiver::new();
        let f1 = tx.send(payload("a"), VTime::ZERO);
        let _ = rx.on_frame(f1.clone());
        let out = rx.on_frame(f1);
        assert!(out.delivered.is_empty());
        assert_eq!(out.ack, Some(1), "duplicate still re-acks");
    }

    #[test]
    fn retransmission_after_timeout() {
        let mut tx = LinkSender::with_rto(VDuration::from_millis(10));
        let f1 = tx.send(payload("a"), VTime::ZERO);
        assert!(tx.due_retransmissions(VTime::from_micros(5_000)).is_empty());
        let due = tx.due_retransmissions(VTime::from_micros(10_000));
        assert_eq!(due, vec![f1]);
        // Deadline re-armed: not due again immediately.
        assert!(tx
            .due_retransmissions(VTime::from_micros(10_001))
            .is_empty());
        // Due again one RTO later.
        assert_eq!(tx.due_retransmissions(VTime::from_micros(20_000)).len(), 1);
    }

    #[test]
    fn ack_settles_prefix_only() {
        let mut tx = LinkSender::new();
        let _f1 = tx.send(payload("a"), VTime::ZERO);
        let _f2 = tx.send(payload("b"), VTime::ZERO);
        let _f3 = tx.send(payload("c"), VTime::ZERO);
        tx.on_ack(2);
        assert_eq!(tx.in_flight(), 1);
        tx.on_ack(1); // stale ack is harmless
        assert_eq!(tx.in_flight(), 1);
        tx.on_ack(3);
        assert_eq!(tx.in_flight(), 0);
    }

    #[test]
    fn datagram_roundtrip() {
        let d = Datagram::Data(LinkFrame {
            seq: 42,
            payload: payload("body"),
        });
        assert_eq!(Datagram::decode(d.encode()).unwrap(), d);
        let a = Datagram::Ack { cum_seq: 7 };
        assert_eq!(Datagram::decode(a.encode()).unwrap(), a);
        assert_eq!(a.encode().len(), 9);
    }

    #[test]
    fn datagram_garbage_rejected() {
        assert!(Datagram::decode(Bytes::new()).is_err());
        assert!(Datagram::decode(Bytes::from_static(&[7])).is_err());
        assert!(Datagram::decode(Bytes::from_static(&[0, 1, 2])).is_err());
        assert!(Datagram::decode(Bytes::from_static(&[1, 1, 2])).is_err());
    }

    #[test]
    fn sender_state_dump_and_restore() {
        let mut tx = LinkSender::with_rto(VDuration::from_millis(5));
        let _ = tx.send(payload("a"), VTime::ZERO);
        let _ = tx.send(payload("b"), VTime::ZERO);
        tx.on_ack(1);
        let frames: Vec<LinkFrame> = tx.unacked_frames().cloned().collect();
        assert_eq!(frames.len(), 1);
        assert_eq!(tx.next_seq(), 3);

        let mut tx2 = LinkSender::restore(
            VDuration::from_millis(5),
            tx.next_seq(),
            frames,
            VTime::ZERO,
        );
        assert_eq!(tx2.in_flight(), 1);
        // Restored frames retransmit after one RTO.
        let due = tx2.due_retransmissions(VTime::from_micros(5_000));
        assert_eq!(due.len(), 1);
        assert_eq!(due[0].seq, 2);
        // And the next send continues the sequence space.
        let f = tx2.send(payload("c"), VTime::ZERO);
        assert_eq!(f.seq, 3);
    }

    #[test]
    fn receiver_restore_suppresses_old_frames() {
        let mut rx = LinkReceiver::restore(5);
        assert_eq!(rx.cum_seq(), 5);
        let out = rx.on_frame(LinkFrame {
            seq: 3,
            payload: payload("dup"),
        });
        assert!(out.delivered.is_empty());
        assert_eq!(out.ack, Some(5));
        let out = rx.on_frame(LinkFrame {
            seq: 6,
            payload: payload("next"),
        });
        assert_eq!(out.delivered.len(), 1);
        assert_eq!(out.ack, Some(6));
    }

    #[test]
    fn lossy_link_recovers_fifo() {
        // Simulate 20 sends over a link that drops every 3rd frame on its
        // first transmission; retransmissions restore exact FIFO delivery.
        let mut tx = LinkSender::with_rto(VDuration::from_millis(1));
        let mut rx = LinkReceiver::new();
        let mut now = VTime::ZERO;
        let mut delivered: Vec<Bytes> = Vec::new();
        let mut first_try: Vec<LinkFrame> = Vec::new();
        for i in 0..20u64 {
            let body = Bytes::from(format!("m{i}"));
            first_try.push(tx.send(body, now));
        }
        for (i, f) in first_try.into_iter().enumerate() {
            if i % 3 != 2 {
                let out = rx.on_frame(f);
                delivered.extend(out.delivered);
                if let Some(a) = out.ack {
                    tx.on_ack(a);
                }
            }
        }
        // Drive retransmissions until everything arrives.
        for _ in 0..10 {
            now += VDuration::from_millis(2);
            for f in tx.due_retransmissions(now) {
                let out = rx.on_frame(f);
                delivered.extend(out.delivered);
                if let Some(a) = out.ack {
                    tx.on_ack(a);
                }
            }
        }
        assert_eq!(tx.in_flight(), 0);
        let expect: Vec<Bytes> = (0..20).map(|i| Bytes::from(format!("m{i}"))).collect();
        assert_eq!(delivered, expect);
    }
}
