//! Reliable FIFO link endpoints (sans-IO).
//!
//! The AAA channel requires *reliable FIFO* transfer between neighbouring
//! servers: the causal protocol's Updates reconstruction and the
//! transactional hand-off both depend on it (§3, §5, Appendix A). These
//! state machines provide that guarantee over an unreliable datagram
//! substrate:
//!
//! - the sender assigns consecutive sequence numbers, keeps unacknowledged
//!   frames with a retransmission deadline, and resends them when
//!   [`LinkSender::due_retransmissions`] is polled past the deadline;
//! - the receiver delivers payloads strictly in sequence order, buffering
//!   out-of-order arrivals and dropping duplicates, and acknowledges
//!   cumulatively.
//!
//! The structs are sans-IO: they never touch sockets or clocks themselves.
//! The threaded runtime polls them with wall-clock time, the discrete-event
//! simulator with virtual time — the same code is exercised either way.
//!
//! # Group-commit batching
//!
//! Senders can *coalesce* consecutive frames to the same peer into one
//! multi-frame [`Datagram::Batch`] wire packet, governed by a
//! [`BatchPolicy`]: frames accumulate via [`LinkSender::buffer`] until the
//! policy's frame/byte limits are hit or the owner calls
//! [`LinkSender::flush`]. One batch costs one transport send instead of one
//! per frame, and the channel layer amortizes causal-stamp bytes across the
//! batch (see `Stamp::GroupNext` in `aaa-clocks`). Reliability is
//! unchanged: batched frames keep their individual sequence numbers, enter
//! the unacked queue at buffer time (so they are persisted and re-flushed
//! after a crash), and the receiver acknowledges cumulatively once per
//! arriving batch.

use std::collections::{BTreeMap, VecDeque};

use aaa_base::{VDuration, VTime};
use bytes::Bytes;

/// Default retransmission timeout.
pub const DEFAULT_RTO: VDuration = VDuration::from_millis(200);

/// When a [`LinkSender`] flushes its pending frames as one wire batch.
///
/// The default policy (`max_frames = 32`, `max_bytes = 256 KiB`,
/// `max_delay = 0`) coalesces everything one processing step produces per
/// peer and flushes at the end of that step — batching without added
/// latency. A non-zero `max_delay` additionally holds partial batches
/// across steps, trading latency for larger batches; urgent traffic can
/// bypass the delay with an explicit flush.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchPolicy {
    /// Flush once this many frames are pending (1 disables coalescing).
    pub max_frames: usize,
    /// Flush once pending payload bytes reach this threshold.
    pub max_bytes: usize,
    /// How long a partial batch may wait for more traffic before it is
    /// flushed by the timer path. Zero means "never wait": the owning step
    /// flushes when it finishes.
    pub max_delay: VDuration,
}

impl Default for BatchPolicy {
    fn default() -> Self {
        BatchPolicy {
            max_frames: 32,
            max_bytes: 256 * 1024,
            max_delay: VDuration::ZERO,
        }
    }
}

impl BatchPolicy {
    /// A policy that never coalesces: every frame is flushed by itself, as
    /// a legacy [`Datagram::Data`] packet.
    pub fn disabled() -> Self {
        BatchPolicy {
            max_frames: 1,
            max_bytes: 0,
            max_delay: VDuration::ZERO,
        }
    }

    /// Returns `true` if this policy never coalesces frames.
    pub fn is_disabled(&self) -> bool {
        self.max_frames <= 1
    }
}

/// A sequenced frame on a link.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LinkFrame {
    /// Link-local sequence number (starts at 1).
    pub seq: u64,
    /// Opaque payload (an encoded [`crate::WireMessage`] in the MOM).
    pub payload: Bytes,
}

/// What actually travels on the wire between two servers: sequenced data
/// or a cumulative acknowledgement (the `ACK` of the paper's §5 channel
/// transaction).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Datagram {
    /// A sequenced payload frame.
    Data(LinkFrame),
    /// Cumulative acknowledgement of sequence numbers up to `cum_seq`.
    Ack {
        /// Highest contiguously received link sequence number.
        cum_seq: u64,
    },
    /// Several sequenced frames coalesced into one wire packet (group
    /// commit). Semantically identical to sending each frame as
    /// [`Datagram::Data`] in order, but costs a single transport send.
    Batch(Vec<LinkFrame>),
}

impl Datagram {
    /// Wraps `frames` in the cheapest wire form: a single frame becomes a
    /// legacy [`Datagram::Data`] packet (decodable by pre-batching peers),
    /// several frames become a [`Datagram::Batch`]. Returns `None` for an
    /// empty slice — nothing to put on the wire.
    pub fn for_frames(mut frames: Vec<LinkFrame>) -> Option<Datagram> {
        match frames.len() {
            0 => None,
            1 => frames.pop().map(Datagram::Data),
            _ => Some(Datagram::Batch(frames)),
        }
    }

    /// Number of link frames this datagram carries (0 for acks).
    pub fn frame_count(&self) -> usize {
        match self {
            Datagram::Data(_) => 1,
            Datagram::Ack { .. } => 0,
            Datagram::Batch(frames) => frames.len(),
        }
    }

    /// Encodes the datagram to bytes.
    pub fn encode(&self) -> Bytes {
        match self {
            Datagram::Data(f) => {
                let mut out = Vec::with_capacity(9 + f.payload.len());
                out.push(0);
                out.extend_from_slice(&f.seq.to_le_bytes());
                out.extend_from_slice(&f.payload);
                Bytes::from(out)
            }
            Datagram::Ack { cum_seq } => {
                let mut out = Vec::with_capacity(9);
                out.push(1);
                out.extend_from_slice(&cum_seq.to_le_bytes());
                Bytes::from(out)
            }
            Datagram::Batch(frames) => {
                let body: usize = frames.iter().map(|f| 12 + f.payload.len()).sum();
                let mut out = Vec::with_capacity(5 + body);
                out.push(2);
                // Saturating prefixes: an impossible >u32::MAX count/length
                // yields a prefix the decoder rejects as truncated instead of
                // a silently wrapped, plausible-looking small value.
                out.extend_from_slice(
                    &u32::try_from(frames.len())
                        .unwrap_or(u32::MAX)
                        .to_le_bytes(),
                );
                for f in frames {
                    out.extend_from_slice(&f.seq.to_le_bytes());
                    out.extend_from_slice(
                        &u32::try_from(f.payload.len())
                            .unwrap_or(u32::MAX)
                            .to_le_bytes(),
                    );
                    out.extend_from_slice(&f.payload);
                }
                Bytes::from(out)
            }
        }
    }

    /// Decodes a datagram produced by [`Datagram::encode`].
    ///
    /// # Errors
    ///
    /// Returns [`aaa_base::Error::Codec`] on truncation or an unknown tag.
    pub fn decode(mut bytes: Bytes) -> aaa_base::Result<Datagram> {
        use aaa_base::Error;
        let tag = match bytes.first() {
            Some(&t) => t,
            None => return Err(Error::Codec("empty datagram".into())),
        };
        match tag {
            0 => {
                if bytes.len() < 9 {
                    return Err(Error::Codec("truncated data frame".into()));
                }
                let seq = le_u64(&bytes, 1)?;
                let payload = bytes.split_off(9);
                Ok(Datagram::Data(LinkFrame { seq, payload }))
            }
            1 => {
                if bytes.len() < 9 {
                    return Err(Error::Codec("truncated ack".into()));
                }
                let cum_seq = le_u64(&bytes, 1)?;
                Ok(Datagram::Ack { cum_seq })
            }
            2 => {
                if bytes.len() < 5 {
                    return Err(Error::Codec("truncated batch header".into()));
                }
                let count = le_u32(&bytes, 1)?;
                if count == 0 {
                    return Err(Error::Codec("empty batch".into()));
                }
                let mut rest = bytes.split_off(5);
                let mut frames = Vec::with_capacity(count as usize);
                for _ in 0..count {
                    if rest.len() < 12 {
                        return Err(Error::Codec("truncated batch frame header".into()));
                    }
                    let seq = le_u64(&rest, 0)?;
                    let len = le_u32(&rest, 8)? as usize;
                    if rest.len() < 12 + len {
                        return Err(Error::Codec("truncated batch frame payload".into()));
                    }
                    let mut payload = rest.split_off(12);
                    rest = payload.split_off(len);
                    frames.push(LinkFrame { seq, payload });
                }
                Ok(Datagram::Batch(frames))
            }
            t => Err(Error::Codec(format!("unknown datagram tag {t}"))),
        }
    }
}

/// Reads a little-endian `u64` at byte offset `at`, as a codec error on
/// truncation (never panics on malformed wire input).
fn le_u64(bytes: &[u8], at: usize) -> aaa_base::Result<u64> {
    bytes
        .get(at..at + 8)
        .and_then(|s| s.try_into().ok())
        .map(u64::from_le_bytes)
        .ok_or_else(|| aaa_base::Error::Codec("truncated u64 field".into()))
}

/// Reads a little-endian `u32` at byte offset `at`, as a codec error on
/// truncation (never panics on malformed wire input).
fn le_u32(bytes: &[u8], at: usize) -> aaa_base::Result<u32> {
    bytes
        .get(at..at + 4)
        .and_then(|s| s.try_into().ok())
        .map(u32::from_le_bytes)
        .ok_or_else(|| aaa_base::Error::Codec("truncated u32 field".into()))
}

/// Sending half of one directed link.
#[derive(Debug)]
pub struct LinkSender {
    next_seq: u64,
    rto: VDuration,
    /// Unacknowledged frames with their next retransmission deadline.
    unacked: VecDeque<(VTime, LinkFrame)>,
    /// How pending frames are coalesced into wire batches.
    policy: BatchPolicy,
    /// Frames buffered for the next flush (also present in `unacked`).
    pending: VecDeque<LinkFrame>,
    /// Payload bytes currently pending.
    pending_bytes: usize,
    /// When the oldest pending frame was buffered (drives `max_delay`).
    pending_since: Option<VTime>,
}

impl Default for LinkSender {
    fn default() -> Self {
        Self::new()
    }
}

impl LinkSender {
    /// Creates a sender with the [default](DEFAULT_RTO) retransmission
    /// timeout and the default [`BatchPolicy`].
    pub fn new() -> Self {
        Self::with_rto(DEFAULT_RTO)
    }

    /// Creates a sender with a custom retransmission timeout.
    pub fn with_rto(rto: VDuration) -> Self {
        LinkSender {
            next_seq: 1,
            rto,
            unacked: VecDeque::new(),
            policy: BatchPolicy::default(),
            pending: VecDeque::new(),
            pending_bytes: 0,
            pending_since: None,
        }
    }

    /// Sets the coalescing policy, returning `self` for chaining.
    pub fn with_policy(mut self, policy: BatchPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// The coalescing policy in force.
    pub fn policy(&self) -> BatchPolicy {
        self.policy
    }

    /// Wraps `payload` into the next sequenced frame; the frame must then
    /// be handed to the transport. `now` sets the retransmission deadline.
    pub fn send(&mut self, payload: Bytes, now: VTime) -> LinkFrame {
        let frame = LinkFrame {
            seq: self.next_seq,
            payload,
        };
        self.next_seq += 1;
        self.unacked.push_back((now + self.rto, frame.clone()));
        frame
    }

    /// Buffers `payload` as the next sequenced frame for a coalesced flush.
    ///
    /// The frame enters the unacked queue immediately (deadline `now +
    /// rto`), so crash-recovery journaling and retransmission cover it from
    /// the moment it is buffered — an unflushed batch that survives a crash
    /// is re-flushed from the persisted image. Returns a full batch when
    /// the policy's frame or byte limit is reached; otherwise the frame
    /// waits for [`LinkSender::flush`] or the limits.
    pub fn buffer(&mut self, payload: Bytes, now: VTime) -> Option<Vec<LinkFrame>> {
        let frame = self.send(payload, now);
        if self.pending.is_empty() {
            self.pending_since = Some(now);
        }
        self.pending_bytes += frame.payload.len();
        self.pending.push_back(frame);
        if self.pending.len() >= self.policy.max_frames.max(1)
            || self.pending_bytes >= self.policy.max_bytes
        {
            self.flush()
        } else {
            None
        }
    }

    /// Drains all pending frames as one batch, or `None` if nothing is
    /// pending. The caller wraps the result with [`Datagram::for_frames`]
    /// and hands it to the transport.
    pub fn flush(&mut self) -> Option<Vec<LinkFrame>> {
        if self.pending.is_empty() {
            return None;
        }
        self.pending_bytes = 0;
        self.pending_since = None;
        Some(std::mem::take(&mut self.pending).into())
    }

    /// Number of frames buffered and not yet flushed.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// When the pending partial batch must be flushed by the timer path
    /// (`pending_since + max_delay`), if the policy holds batches across
    /// steps. `None` when nothing is pending or `max_delay` is zero (the
    /// owning step flushes synchronously).
    pub fn flush_deadline(&self) -> Option<VTime> {
        if self.policy.max_delay == VDuration::ZERO {
            return None;
        }
        self.pending_since.map(|t| t + self.policy.max_delay)
    }

    /// Processes a cumulative acknowledgement: frames with `seq <= cum_seq`
    /// are settled and will not be retransmitted.
    pub fn on_ack(&mut self, cum_seq: u64) {
        while matches!(self.unacked.front(), Some((_, f)) if f.seq <= cum_seq) {
            self.unacked.pop_front();
        }
    }

    /// Returns the frames whose retransmission deadline has passed at
    /// `now`, re-arming each with a fresh deadline.
    pub fn due_retransmissions(&mut self, now: VTime) -> Vec<LinkFrame> {
        let mut due = Vec::new();
        for (deadline, frame) in self.unacked.iter_mut() {
            if *deadline <= now {
                *deadline = now + self.rto;
                due.push(frame.clone());
            }
        }
        due
    }

    /// The earliest pending deadline — retransmission or delayed batch
    /// flush — if any: what a runtime should arm its timer to.
    pub fn next_deadline(&self) -> Option<VTime> {
        let retransmit = self.unacked.iter().map(|(d, _)| *d).min();
        match (retransmit, self.flush_deadline()) {
            (Some(r), Some(f)) => Some(r.min(f)),
            (r, f) => r.or(f),
        }
    }

    /// Number of frames sent but not yet acknowledged.
    pub fn in_flight(&self) -> usize {
        self.unacked.len()
    }

    /// The next sequence number this sender will assign.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// The unacknowledged frames, oldest first (for crash-recovery
    /// journaling).
    pub fn unacked_frames(&self) -> impl Iterator<Item = &LinkFrame> + '_ {
        self.unacked.iter().map(|(_, f)| f)
    }

    /// Rebuilds a sender from persisted state. Every restored frame is
    /// armed for retransmission at `now + rto` — this is what re-flushes a
    /// batch that was buffered (or flushed but unacked) at crash time.
    pub fn restore(rto: VDuration, next_seq: u64, unacked: Vec<LinkFrame>, now: VTime) -> Self {
        LinkSender {
            next_seq,
            rto,
            unacked: unacked.into_iter().map(|f| (now + rto, f)).collect(),
            policy: BatchPolicy::default(),
            pending: VecDeque::new(),
            pending_bytes: 0,
            pending_since: None,
        }
    }
}

/// What a receiver did with one incoming frame.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct LinkDelivery {
    /// Payloads now deliverable, in FIFO order (possibly several, when a
    /// retransmission fills a gap).
    pub delivered: Vec<Bytes>,
    /// The cumulative acknowledgement to send back, if any progress or a
    /// duplicate was observed.
    pub ack: Option<u64>,
}

/// Receiving half of one directed link.
#[derive(Debug, Default)]
pub struct LinkReceiver {
    /// Highest contiguously delivered sequence number.
    cum: u64,
    /// Out-of-order frames waiting for the gap to fill.
    buffered: BTreeMap<u64, Bytes>,
}

impl LinkReceiver {
    /// Creates a receiver expecting sequence number 1 first.
    pub fn new() -> Self {
        Self::default()
    }

    /// Processes one arriving frame, returning deliverable payloads (in
    /// order) and the cumulative ack to emit.
    ///
    /// Duplicates (already-delivered sequence numbers) produce no delivery
    /// but *do* re-emit the ack, so a lost ack is eventually repaired by
    /// the sender's retransmission.
    pub fn on_frame(&mut self, frame: LinkFrame) -> LinkDelivery {
        if frame.seq > self.cum {
            self.buffered.entry(frame.seq).or_insert(frame.payload);
        }
        let mut delivered = Vec::new();
        while let Some(payload) = self.buffered.remove(&(self.cum + 1)) {
            self.cum += 1;
            delivered.push(payload);
        }
        LinkDelivery {
            delivered,
            ack: Some(self.cum),
        }
    }

    /// Highest contiguously delivered sequence number.
    pub fn cum_seq(&self) -> u64 {
        self.cum
    }

    /// Number of frames buffered out of order.
    pub fn buffered(&self) -> usize {
        self.buffered.len()
    }

    /// Rebuilds a receiver from a persisted cumulative sequence number.
    /// Out-of-order frames buffered at crash time are not restored: the
    /// peer's retransmissions recover them.
    pub fn restore(cum_seq: u64) -> Self {
        LinkReceiver {
            cum: cum_seq,
            buffered: BTreeMap::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn payload(s: &'static str) -> Bytes {
        Bytes::from_static(s.as_bytes())
    }

    #[test]
    fn in_order_delivery() {
        let mut tx = LinkSender::new();
        let mut rx = LinkReceiver::new();
        let f1 = tx.send(payload("a"), VTime::ZERO);
        let f2 = tx.send(payload("b"), VTime::ZERO);
        assert_eq!(tx.in_flight(), 2);

        let out = rx.on_frame(f1);
        assert_eq!(out.delivered, vec![payload("a")]);
        assert_eq!(out.ack, Some(1));
        let out = rx.on_frame(f2);
        assert_eq!(out.delivered, vec![payload("b")]);
        assert_eq!(out.ack, Some(2));

        tx.on_ack(2);
        assert_eq!(tx.in_flight(), 0);
        assert_eq!(tx.next_deadline(), None);
    }

    #[test]
    fn reordering_is_buffered() {
        let mut tx = LinkSender::new();
        let mut rx = LinkReceiver::new();
        let f1 = tx.send(payload("a"), VTime::ZERO);
        let f2 = tx.send(payload("b"), VTime::ZERO);
        let f3 = tx.send(payload("c"), VTime::ZERO);

        let out = rx.on_frame(f3);
        assert!(out.delivered.is_empty());
        assert_eq!(out.ack, Some(0));
        assert_eq!(rx.buffered(), 1);
        let out = rx.on_frame(f2);
        assert!(out.delivered.is_empty());
        let out = rx.on_frame(f1);
        assert_eq!(
            out.delivered,
            vec![payload("a"), payload("b"), payload("c")]
        );
        assert_eq!(out.ack, Some(3));
        assert_eq!(rx.buffered(), 0);
    }

    #[test]
    fn duplicates_are_suppressed_but_acked() {
        let mut tx = LinkSender::new();
        let mut rx = LinkReceiver::new();
        let f1 = tx.send(payload("a"), VTime::ZERO);
        let _ = rx.on_frame(f1.clone());
        let out = rx.on_frame(f1);
        assert!(out.delivered.is_empty());
        assert_eq!(out.ack, Some(1), "duplicate still re-acks");
    }

    #[test]
    fn retransmission_after_timeout() {
        let mut tx = LinkSender::with_rto(VDuration::from_millis(10));
        let f1 = tx.send(payload("a"), VTime::ZERO);
        assert!(tx.due_retransmissions(VTime::from_micros(5_000)).is_empty());
        let due = tx.due_retransmissions(VTime::from_micros(10_000));
        assert_eq!(due, vec![f1]);
        // Deadline re-armed: not due again immediately.
        assert!(tx
            .due_retransmissions(VTime::from_micros(10_001))
            .is_empty());
        // Due again one RTO later.
        assert_eq!(tx.due_retransmissions(VTime::from_micros(20_000)).len(), 1);
    }

    #[test]
    fn ack_settles_prefix_only() {
        let mut tx = LinkSender::new();
        let _f1 = tx.send(payload("a"), VTime::ZERO);
        let _f2 = tx.send(payload("b"), VTime::ZERO);
        let _f3 = tx.send(payload("c"), VTime::ZERO);
        tx.on_ack(2);
        assert_eq!(tx.in_flight(), 1);
        tx.on_ack(1); // stale ack is harmless
        assert_eq!(tx.in_flight(), 1);
        tx.on_ack(3);
        assert_eq!(tx.in_flight(), 0);
    }

    #[test]
    fn datagram_roundtrip() {
        let d = Datagram::Data(LinkFrame {
            seq: 42,
            payload: payload("body"),
        });
        assert_eq!(Datagram::decode(d.encode()).unwrap(), d);
        let a = Datagram::Ack { cum_seq: 7 };
        assert_eq!(Datagram::decode(a.encode()).unwrap(), a);
        assert_eq!(a.encode().len(), 9);
    }

    #[test]
    fn datagram_garbage_rejected() {
        assert!(Datagram::decode(Bytes::new()).is_err());
        assert!(Datagram::decode(Bytes::from_static(&[7])).is_err());
        assert!(Datagram::decode(Bytes::from_static(&[0, 1, 2])).is_err());
        assert!(Datagram::decode(Bytes::from_static(&[1, 1, 2])).is_err());
    }

    #[test]
    fn sender_state_dump_and_restore() {
        let mut tx = LinkSender::with_rto(VDuration::from_millis(5));
        let _ = tx.send(payload("a"), VTime::ZERO);
        let _ = tx.send(payload("b"), VTime::ZERO);
        tx.on_ack(1);
        let frames: Vec<LinkFrame> = tx.unacked_frames().cloned().collect();
        assert_eq!(frames.len(), 1);
        assert_eq!(tx.next_seq(), 3);

        let mut tx2 = LinkSender::restore(
            VDuration::from_millis(5),
            tx.next_seq(),
            frames,
            VTime::ZERO,
        );
        assert_eq!(tx2.in_flight(), 1);
        // Restored frames retransmit after one RTO.
        let due = tx2.due_retransmissions(VTime::from_micros(5_000));
        assert_eq!(due.len(), 1);
        assert_eq!(due[0].seq, 2);
        // And the next send continues the sequence space.
        let f = tx2.send(payload("c"), VTime::ZERO);
        assert_eq!(f.seq, 3);
    }

    #[test]
    fn batch_datagram_roundtrip() {
        let frames = vec![
            LinkFrame {
                seq: 1,
                payload: payload("a"),
            },
            LinkFrame {
                seq: 2,
                payload: Bytes::new(),
            },
            LinkFrame {
                seq: 3,
                payload: payload("ccc"),
            },
        ];
        let d = Datagram::Batch(frames.clone());
        assert_eq!(d.frame_count(), 3);
        assert_eq!(Datagram::decode(d.encode()).unwrap(), d);
        // Wire layout: 1 tag + 4 count + per frame (8 seq + 4 len + body).
        let body: usize = frames.iter().map(|f| 12 + f.payload.len()).sum();
        assert_eq!(d.encode().len(), 5 + body);
    }

    #[test]
    fn single_frame_batch_degrades_to_legacy_data() {
        let d = Datagram::for_frames(vec![LinkFrame {
            seq: 9,
            payload: payload("x"),
        }])
        .expect("one frame");
        assert!(matches!(d, Datagram::Data(_)));
        assert!(Datagram::for_frames(Vec::new()).is_none());
        // And a pre-batching decoder understands it (tag 0).
        assert_eq!(d.encode()[0], 0);
    }

    #[test]
    fn batch_garbage_rejected() {
        // Truncated header.
        assert!(Datagram::decode(Bytes::from_static(&[2, 1])).is_err());
        // Empty batch.
        assert!(Datagram::decode(Bytes::from_static(&[2, 0, 0, 0, 0])).is_err());
        // Count says one frame but nothing follows.
        assert!(Datagram::decode(Bytes::from_static(&[2, 1, 0, 0, 0])).is_err());
        // Frame claims more payload than present.
        let mut raw = vec![2u8, 1, 0, 0, 0];
        raw.extend_from_slice(&1u64.to_le_bytes());
        raw.extend_from_slice(&100u32.to_le_bytes());
        raw.extend_from_slice(b"short");
        assert!(Datagram::decode(Bytes::from(raw)).is_err());
    }

    #[test]
    fn buffer_coalesces_until_flush() {
        let mut tx = LinkSender::new().with_policy(BatchPolicy {
            max_frames: 4,
            ..BatchPolicy::default()
        });
        assert!(tx.buffer(payload("a"), VTime::ZERO).is_none());
        assert!(tx.buffer(payload("b"), VTime::ZERO).is_none());
        assert_eq!(tx.pending_len(), 2);
        assert_eq!(tx.in_flight(), 2, "buffered frames are unacked already");
        let batch = tx.flush().expect("pending frames");
        assert_eq!(batch.len(), 2);
        assert_eq!(batch[0].seq, 1);
        assert_eq!(batch[1].seq, 2);
        assert_eq!(tx.pending_len(), 0);
        assert!(tx.flush().is_none());
    }

    #[test]
    fn max_frames_limit_splits_batches() {
        let mut tx = LinkSender::new().with_policy(BatchPolicy {
            max_frames: 3,
            ..BatchPolicy::default()
        });
        let mut flushed = Vec::new();
        for i in 0..7u64 {
            if let Some(batch) = tx.buffer(Bytes::from(format!("m{i}")), VTime::ZERO) {
                flushed.push(batch.len());
            }
        }
        assert_eq!(flushed, vec![3, 3]);
        assert_eq!(tx.flush().map(|b| b.len()), Some(1));
    }

    #[test]
    fn max_bytes_limit_flushes_early() {
        let mut tx = LinkSender::new().with_policy(BatchPolicy {
            max_frames: 100,
            max_bytes: 10,
            max_delay: VDuration::ZERO,
        });
        assert!(tx.buffer(Bytes::from(vec![0u8; 4]), VTime::ZERO).is_none());
        let batch = tx.buffer(Bytes::from(vec![0u8; 6]), VTime::ZERO);
        assert_eq!(batch.map(|b| b.len()), Some(2));
    }

    #[test]
    fn disabled_policy_flushes_every_frame() {
        let mut tx = LinkSender::new().with_policy(BatchPolicy::disabled());
        assert!(BatchPolicy::disabled().is_disabled());
        assert!(!BatchPolicy::default().is_disabled());
        let batch = tx.buffer(payload("a"), VTime::ZERO).expect("immediate");
        assert_eq!(batch.len(), 1);
        assert!(matches!(
            Datagram::for_frames(batch),
            Some(Datagram::Data(_))
        ));
    }

    #[test]
    fn flush_deadline_follows_max_delay() {
        let mut tx = LinkSender::new().with_policy(BatchPolicy {
            max_delay: VDuration::from_millis(2),
            ..BatchPolicy::default()
        });
        assert_eq!(tx.flush_deadline(), None);
        let _ = tx.buffer(payload("a"), VTime::from_micros(1_000));
        assert_eq!(tx.flush_deadline(), Some(VTime::from_micros(3_000)));
        // The runtime timer must wake for the flush even before the RTO.
        assert_eq!(tx.next_deadline(), Some(VTime::from_micros(3_000)));
        let _ = tx.flush();
        assert_eq!(tx.flush_deadline(), None);
    }

    #[test]
    fn crashed_batch_is_reflushed_from_persisted_image() {
        // Buffer two frames, never flush, "crash": the unacked journal
        // already contains them, so a restored sender retransmits both.
        let mut tx = LinkSender::with_rto(VDuration::from_millis(5)).with_policy(BatchPolicy {
            max_frames: 8,
            ..BatchPolicy::default()
        });
        assert!(tx.buffer(payload("a"), VTime::ZERO).is_none());
        assert!(tx.buffer(payload("b"), VTime::ZERO).is_none());
        let journal: Vec<LinkFrame> = tx.unacked_frames().cloned().collect();
        assert_eq!(journal.len(), 2);

        let mut tx2 = LinkSender::restore(
            VDuration::from_millis(5),
            tx.next_seq(),
            journal,
            VTime::ZERO,
        );
        let due = tx2.due_retransmissions(VTime::from_micros(5_000));
        assert_eq!(due.len(), 2);
        let mut rx = LinkReceiver::new();
        let mut delivered = Vec::new();
        for f in due {
            delivered.extend(rx.on_frame(f).delivered);
        }
        assert_eq!(delivered, vec![payload("a"), payload("b")]);
    }

    #[test]
    fn receiver_acks_once_per_batch() {
        let mut tx = LinkSender::new();
        let mut rx = LinkReceiver::new();
        let mut batch = Vec::new();
        for i in 0..5u64 {
            let _ = i;
            assert!(tx.buffer(payload("m"), VTime::ZERO).is_none());
        }
        if let Some(frames) = tx.flush() {
            batch = frames;
        }
        let wire = Datagram::for_frames(batch).expect("five frames");
        assert!(matches!(wire, Datagram::Batch(_)));
        // The receiving server feeds frames in order and sends the *last*
        // cumulative ack only.
        let mut last_ack = None;
        if let Datagram::Batch(frames) = wire {
            for f in frames {
                let out = rx.on_frame(f);
                if out.ack.is_some() {
                    last_ack = out.ack;
                }
            }
        }
        assert_eq!(last_ack, Some(5));
        tx.on_ack(5);
        assert_eq!(tx.in_flight(), 0);
    }

    #[test]
    fn receiver_restore_suppresses_old_frames() {
        let mut rx = LinkReceiver::restore(5);
        assert_eq!(rx.cum_seq(), 5);
        let out = rx.on_frame(LinkFrame {
            seq: 3,
            payload: payload("dup"),
        });
        assert!(out.delivered.is_empty());
        assert_eq!(out.ack, Some(5));
        let out = rx.on_frame(LinkFrame {
            seq: 6,
            payload: payload("next"),
        });
        assert_eq!(out.delivered.len(), 1);
        assert_eq!(out.ack, Some(6));
    }

    #[test]
    fn lossy_link_recovers_fifo() {
        // Simulate 20 sends over a link that drops every 3rd frame on its
        // first transmission; retransmissions restore exact FIFO delivery.
        let mut tx = LinkSender::with_rto(VDuration::from_millis(1));
        let mut rx = LinkReceiver::new();
        let mut now = VTime::ZERO;
        let mut delivered: Vec<Bytes> = Vec::new();
        let mut first_try: Vec<LinkFrame> = Vec::new();
        for i in 0..20u64 {
            let body = Bytes::from(format!("m{i}"));
            first_try.push(tx.send(body, now));
        }
        for (i, f) in first_try.into_iter().enumerate() {
            if i % 3 != 2 {
                let out = rx.on_frame(f);
                delivered.extend(out.delivered);
                if let Some(a) = out.ack {
                    tx.on_ack(a);
                }
            }
        }
        // Drive retransmissions until everything arrives.
        for _ in 0..10 {
            now += VDuration::from_millis(2);
            for f in tx.due_retransmissions(now) {
                let out = rx.on_frame(f);
                delivered.extend(out.delivered);
                if let Some(a) = out.ack {
                    tx.on_ack(a);
                }
            }
        }
        assert_eq!(tx.in_flight(), 0);
        let expect: Vec<Bytes> = (0..20).map(|i| Bytes::from(format!("m{i}"))).collect();
        assert_eq!(delivered, expect);
    }
}
