//! The middleware message as it travels one hop between servers.
//!
//! A [`WireMessage`] is an application-level notification plus its routing
//! header and causal stamp (the paper's `msg = evt + timestamp`, §5). It is
//! carried as the payload of a sequenced link [`Datagram`](crate::link::Datagram);
//! acknowledgements (`Send(ACK)` / `Recv(ACK)` in the §5 pseudo-code) live
//! at the link layer.

use aaa_base::{AgentId, DomainId, MessageId, Result, ServerId};
use aaa_clocks::Stamp;
use bytes::Bytes;

use crate::wire::{Decoder, Encoder};

/// A middleware message on one hop between two servers.
///
/// The routing header (`src_server`, `dest_server`) addresses the *ends* of
/// the journey; the causal stamp is relative to the domain shared by the
/// two servers of this hop and is re-created at every hop by the forwarding
/// router (§5).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireMessage {
    /// Globally unique message identifier, assigned at the origin.
    pub id: MessageId,
    /// The agent that sent the notification.
    pub from_agent: AgentId,
    /// The agent the notification is addressed to.
    pub to_agent: AgentId,
    /// The server where the message entered the bus.
    pub src_server: ServerId,
    /// The server hosting the destination agent.
    pub dest_server: ServerId,
    /// The domain whose matrix clock stamped this hop.
    pub domain: DomainId,
    /// The causal stamp for this hop; `None` for unordered-QoS messages,
    /// which bypass the causal machinery entirely (the intro's CORBA
    /// Messaging "ordering policy" knob).
    pub stamp: Option<Stamp>,
    /// Application-level notification kind (the event name of the
    /// event/reaction pattern).
    pub kind: String,
    /// Opaque notification body.
    pub body: Bytes,
}

impl WireMessage {
    /// Encodes the message to bytes.
    pub fn encode(&self) -> Bytes {
        let mut e = Encoder::new();
        e.message_id(self.id);
        e.agent_id(self.from_agent);
        e.agent_id(self.to_agent);
        e.server_id(self.src_server);
        e.server_id(self.dest_server);
        e.domain_id(self.domain);
        e.stamp_opt(&self.stamp);
        e.string(&self.kind);
        e.bytes(&self.body);
        e.finish()
    }

    /// Decodes a message produced by [`WireMessage::encode`].
    ///
    /// # Errors
    ///
    /// Returns [`aaa_base::Error::Codec`] on truncation or malformed
    /// content.
    pub fn decode(buf: Bytes) -> Result<WireMessage> {
        let mut d = Decoder::new(buf);
        Ok(WireMessage {
            id: d.message_id()?,
            from_agent: d.agent_id()?,
            to_agent: d.agent_id()?,
            src_server: d.server_id()?,
            dest_server: d.server_id()?,
            domain: d.domain_id()?,
            stamp: d.stamp_opt()?,
            kind: d.string()?,
            body: d.bytes()?,
        })
    }

    /// Size of the encoded message in bytes.
    pub fn encoded_len(&self) -> usize {
        // Encoding is cheap relative to the places that ask (experiments
        // measuring sizes); keeping one definition avoids drift.
        self.encode().len()
    }
}

/// A relay acknowledgement: the subscriber-side commit of the
/// store-and-forward redelivery protocol (DESIGN.md §17).
///
/// Travels as the body of an unordered `__relay_ack` notification from the
/// subscriber's server back to the relay that holds the durable queue. The
/// ack is *cumulative*: `upto` commits every queued sequence number `<=
/// upto`, so a lost ack is healed by the next one rather than retransmitted
/// individually.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RelayAck {
    /// The subscriber whose durable queue is being committed.
    pub subscriber: AgentId,
    /// Highest contiguous relay sequence number received by the subscriber.
    pub upto: u64,
}

impl RelayAck {
    /// Encodes the ack to bytes.
    pub fn encode(&self) -> Bytes {
        let mut e = Encoder::new();
        e.agent_id(self.subscriber);
        e.u64(self.upto);
        e.finish()
    }

    /// Decodes an ack produced by [`RelayAck::encode`].
    ///
    /// # Errors
    ///
    /// Returns [`aaa_base::Error::Codec`] on truncation.
    pub fn decode(buf: Bytes) -> Result<RelayAck> {
        let mut d = Decoder::new(buf);
        Ok(RelayAck {
            subscriber: d.agent_id()?,
            upto: d.u64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aaa_clocks::{MatrixClock, UpdateEntry};

    fn sample_message(stamp: Stamp) -> WireMessage {
        sample_message_opt(Some(stamp))
    }

    fn sample_message_opt(stamp: Option<Stamp>) -> WireMessage {
        WireMessage {
            id: MessageId::new(ServerId::new(3), 77),
            from_agent: AgentId::new(ServerId::new(3), 1),
            to_agent: AgentId::new(ServerId::new(9), 2),
            src_server: ServerId::new(3),
            dest_server: ServerId::new(9),
            domain: DomainId::new(1),
            stamp,
            kind: "ping".to_owned(),
            body: Bytes::from_static(b"payload"),
        }
    }

    #[test]
    fn message_roundtrip_unordered() {
        let msg = sample_message_opt(None);
        let decoded = WireMessage::decode(msg.encode()).unwrap();
        assert_eq!(decoded, msg);
        // Unordered frames are tiny: no matrix anywhere.
        assert!(msg.encoded_len() < 80);
    }

    #[test]
    fn message_roundtrip_full_stamp() {
        let mut m = MatrixClock::new(3);
        m.set(0, 1, 4);
        let msg = sample_message(Stamp::Full(m));
        let decoded = WireMessage::decode(msg.encode()).unwrap();
        assert_eq!(decoded, msg);
    }

    #[test]
    fn message_roundtrip_delta_stamp() {
        let msg = sample_message(Stamp::Delta(vec![UpdateEntry {
            row: 0,
            col: 1,
            value: 3,
        }]));
        let decoded = WireMessage::decode(msg.encode()).unwrap();
        assert_eq!(decoded, msg);
    }

    #[test]
    fn stamp_dominates_frame_size_for_large_domains() {
        let small = sample_message(Stamp::Delta(Vec::new()));
        let big = sample_message(Stamp::Full(MatrixClock::new(50)));
        assert!(big.encoded_len() > 50 * 50 * 8);
        assert!(small.encoded_len() < 100);
    }

    #[test]
    fn garbage_rejected() {
        assert!(WireMessage::decode(Bytes::from_static(&[42])).is_err());
        assert!(WireMessage::decode(Bytes::new()).is_err());
    }

    #[test]
    fn relay_ack_roundtrip() {
        let ack = RelayAck {
            subscriber: AgentId::new(ServerId::new(7), 123),
            upto: u64::MAX - 1,
        };
        let decoded = RelayAck::decode(ack.encode()).unwrap();
        assert_eq!(decoded, ack);
    }

    #[test]
    fn relay_ack_truncation_rejected() {
        let full = RelayAck {
            subscriber: AgentId::new(ServerId::new(1), 2),
            upto: 3,
        }
        .encode();
        for cut in 0..full.len() {
            assert!(
                RelayAck::decode(full.slice(0..cut)).is_err(),
                "cut at {cut} must not decode"
            );
        }
    }
}
