#![warn(missing_docs)]
#![forbid(unsafe_code)]

//! Network substrate for the AAA MOM.
//!
//! The paper's AAA channel runs over TCP between JVMs and guarantees
//! *reliable, FIFO* message transfer with acknowledgements and transactions
//! (§3, §5). This crate rebuilds that substrate:
//!
//! - [`wire`] — a hand-rolled, byte-exact binary codec. Stamp sizes on the
//!   wire are a first-class measurement in the paper (the `O(n²)` problem
//!   and the Appendix-A remedy), so the codec is deliberately explicit
//!   about every byte;
//! - [`frame`] — the wire frames: stamped middleware messages and link
//!   acknowledgements;
//! - [`link`] — sans-IO reliable FIFO link endpoints
//!   ([`LinkSender`]/[`LinkReceiver`]): per-link sequence numbers,
//!   cumulative acks, retransmission deadlines, duplicate suppression and
//!   reorder buffering. Both the threaded runtime and the discrete-event
//!   simulator drive these same state machines;
//! - [`memory`] — an in-process transport ([`MemoryNetwork`]) connecting a
//!   set of servers with FIFO byte channels, used by the threaded runtime;
//! - [`mux`] — connection multiplexing for the evented runtime: many
//!   logical links per TCP socket ([`MuxTcpNetwork`] binds one listener
//!   per event-loop shard), per-link FIFO preserved;
//! - [`decode`] — zero-copy incremental frame decoding ([`FrameBuf`]):
//!   payloads borrow from the recv buffer instead of allocating per
//!   datagram;
//! - [`transport`] — the [`Transport`] trait the runtimes drive:
//!   non-blocking readiness ([`Transport::poll_recv`] +
//!   [`Transport::set_ready_notifier`]), batch-native sends
//!   ([`Transport::send_batch`]), and the [`ReadyMailbox`] blocking
//!   adapter for thread-per-server loops.
//!
//! Frame coalescing (group-commit batching) lives in the [`link`] module:
//! a [`BatchPolicy`] governs when a [`LinkSender`] flushes its buffered
//! frames as one multi-frame [`Datagram::Batch`] wire packet.
//!
//! # Example: a lossy link made reliable
//!
//! ```
//! use aaa_base::VTime;
//! use aaa_net::link::{LinkReceiver, LinkSender};
//! use bytes::Bytes;
//!
//! let mut tx = LinkSender::new();
//! let mut rx = LinkReceiver::new();
//! let f1 = tx.send(Bytes::from_static(b"hello"), VTime::ZERO);
//! let f2 = tx.send(Bytes::from_static(b"world"), VTime::ZERO);
//! // f1 is lost; f2 arrives first and is buffered, not delivered.
//! let out = rx.on_frame(f2.clone());
//! assert!(out.delivered.is_empty());
//! // The retransmission timer re-sends both; FIFO order is restored.
//! let again = tx.due_retransmissions(VTime::from_micros(1_000_000));
//! let out = rx.on_frame(again[0].clone());
//! assert_eq!(out.delivered.len(), 2);
//! ```

pub mod decode;
pub mod frame;
pub mod health;
pub mod link;
pub mod memory;
pub mod metrics;
pub mod mux;
pub mod tcp;
pub mod transport;
pub mod wire;

pub use decode::{FrameBuf, RawFrame};
pub use frame::{RelayAck, WireMessage};
pub use health::{PeerHealth, PeerState};
pub use link::{BatchPolicy, Datagram, LinkFrame, LinkReceiver, LinkSender};
pub use memory::{Incoming, MemoryEndpoint, MemoryNetwork};
pub use metrics::NetMetrics;
pub use mux::{MuxTcpEndpoint, MuxTcpNetwork};
pub use tcp::{TcpEndpoint, TcpNetwork};
pub use transport::{NotifySlot, ReadyMailbox, ReadyNotifier, Transport};
