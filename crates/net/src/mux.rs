//! Connection-multiplexed TCP: many logical links per socket.
//!
//! [`crate::TcpNetwork`] meshes `n` servers with up to `n²` sockets — the
//! paper's one-JVM-per-server shape. At C10K scale that is untenable: a
//! bus(32,32) topology would need ~a million potential connections. A
//! [`MuxTcpNetwork`] instead binds **one listener per event-loop shard**
//! and carries every logical link `(x → y)` over the single shared socket
//! to `y`'s shard: `n²` logical links over `O(shards)` sockets.
//!
//! Wire format per frame: `u16` source server, `u16` destination server,
//! `u32` payload length (all little-endian), payload bytes. The extra
//! destination field (vs the plain TCP transport's 6-byte header) is what
//! lets one socket serve every server on a shard — the shard reader
//! demultiplexes by destination into per-server inboxes.
//!
//! **Per-link FIFO** holds because each logical link's frames always
//! travel the same socket (writes serialized under the per-socket lock,
//! one reader per accepted stream), which is the ordering property the
//! AAA channel's causal protocol needs from its substrate.
//!
//! Frames are decoded **zero-copy** through [`FrameBuf`]: payloads are
//! shared views into one buffer per read burst, not per-datagram
//! allocations.
//!
//! Unlike [`crate::TcpEndpoint`], sends never sleep between retries —
//! mux endpoints are driven from event-loop shards where blocking is
//! banned — so a failed write surfaces immediately as packet loss and
//! the link layer retransmits.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use aaa_base::{Error, Result, ServerId};
use aaa_obs::Meter;
use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;

use crate::decode::FrameBuf;
use crate::health::{PeerHealth, PeerState};
use crate::memory::Incoming;
use crate::metrics::NetMetrics;
use crate::transport::{NotifySlot, ReadyNotifier};

/// Mux frame header: source `u16`, destination `u16`, length `u32`.
const HEADER_LEN: usize = 8;

/// Absurd-frame cutoff; a corrupt stream drops the connection.
const MAX_FRAME: usize = 64 << 20;

fn io_err(context: &str, e: std::io::Error) -> Error {
    Error::Storage(format!("mux {context}: {e}"))
}

/// State shared by every endpoint of one mux network.
struct MuxShared {
    shards: usize,
    shard_addrs: Vec<SocketAddr>,
    /// One outbound socket per **destination shard**, shared by every
    /// sender in the process — the multiplexing.
    conns: Vec<Mutex<Option<TcpStream>>>,
    connect_timeout: Duration,
    shutdown: AtomicBool,
    live: AtomicUsize,
    inboxes: Vec<Sender<Incoming>>,
    notify: Vec<NotifySlot>,
    health: PeerHealth,
}

impl std::fmt::Debug for MuxShared {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MuxShared")
            .field("shards", &self.shards)
            .field("servers", &self.inboxes.len())
            .finish_non_exhaustive()
    }
}

impl MuxShared {
    fn shard_of(&self, server: ServerId) -> usize {
        server.as_usize() % self.shards
    }

    /// Writes one framed buffer to the destination shard's shared socket,
    /// connecting lazily. Exactly one attempt: shard threads must not
    /// sleep, so there is no in-transport retry — the link layer's
    /// retransmission is the recovery path.
    fn write_to_shard(&self, shard: usize, buf: &[u8]) -> Result<()> {
        let mut conn = self.conns[shard].lock();
        if conn.is_none() {
            // Intentional coupling: the per-socket lock must cover the
            // lazy connect, or two senders race to create the stream and
            // one connection's frames are torn. Bounded by
            // connect_timeout; per-link FIFO depends on this lock.
            // audit:allow(guard-across-blocking)
            let stream = TcpStream::connect_timeout(&self.shard_addrs[shard], self.connect_timeout)
                .map_err(|e| io_err("connect", e))?;
            stream.set_nodelay(true).map_err(|e| io_err("nodelay", e))?;
            *conn = Some(stream);
        }
        let stream = match conn.as_mut() {
            Some(s) => s,
            // Unreachable (inserted just above); surfaced as a failed
            // write so the link layer's retransmission path recovers.
            None => {
                return Err(io_err(
                    "connect",
                    std::io::Error::other("connection missing"),
                ))
            }
        };
        // Intentional coupling: writes to the shared shard socket are
        // serialized under its lock — that serialization IS the
        // per-link FIFO guarantee the causal protocol needs from the
        // substrate. The socket is non-blocking-adjacent (nodelay, no
        // retry sleep), so the hold is one syscall.
        // audit:allow(guard-across-blocking)
        if let Err(e) = stream.write_all(buf) {
            *conn = None; // reconnect on the next attempt
            return Err(io_err("write", e));
        }
        Ok(())
    }
}

/// One server's handle on the multiplexed shard mesh.
#[derive(Debug)]
pub struct MuxTcpEndpoint {
    me: ServerId,
    shared: Arc<MuxShared>,
    inbox: Receiver<Incoming>,
    metrics: Option<NetMetrics>,
}

impl MuxTcpEndpoint {
    /// This endpoint's server id.
    pub fn me(&self) -> ServerId {
        self.me
    }

    /// Number of servers on the mesh.
    pub fn peer_count(&self) -> usize {
        self.shared.inboxes.len()
    }

    /// Number of event-loop shards (and sockets) the mesh multiplexes
    /// onto.
    pub fn shard_count(&self) -> usize {
        self.shared.shards
    }

    /// Attaches a metrics meter; subsequent traffic updates the
    /// `aaa_net_tx_*`/`aaa_net_rx_*` per-peer counters.
    pub fn attach_meter(&mut self, meter: &Meter) {
        self.metrics = Some(NetMetrics::new(meter, self.shared.inboxes.len()));
    }

    /// Failure-detector verdict for `to` (shared across the mesh: the
    /// socket to a shard is shared, so is the evidence about its peers).
    pub fn peer_state(&self, to: ServerId) -> PeerState {
        self.shared.health.state(to)
    }

    /// Installs this endpoint's readiness notifier (see
    /// [`crate::Transport::set_ready_notifier`] for the contract).
    pub fn set_ready_notifier(&mut self, notifier: ReadyNotifier) {
        if let Some(slot) = self.shared.notify.get(self.me.as_usize()) {
            slot.set(notifier);
        }
    }

    fn frame_into(&self, out: &mut Vec<u8>, to: ServerId, bytes: &[u8]) {
        out.extend_from_slice(&self.me.as_u16().to_le_bytes());
        out.extend_from_slice(&to.as_u16().to_le_bytes());
        // Saturating length prefix: the reader rejects it as absurd
        // instead of silently truncating via `as u32` wraparound.
        out.extend_from_slice(&u32::try_from(bytes.len()).unwrap_or(u32::MAX).to_le_bytes());
        out.extend_from_slice(bytes);
    }

    fn write_framed(&self, to: ServerId, buf: &[u8]) -> Result<()> {
        if to.as_usize() >= self.shared.inboxes.len() {
            return Err(Error::UnknownServer(to));
        }
        let shard = self.shared.shard_of(to);
        match self.shared.write_to_shard(shard, buf) {
            Ok(()) => {
                self.shared.health.on_success(to);
                Ok(())
            }
            Err(e) => {
                self.shared.health.on_failure(to);
                Err(e)
            }
        }
    }

    /// Sends `bytes` to `to` over the destination shard's shared socket.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownServer`] for an unknown peer, or a
    /// transport error on connect/write failure (one attempt, no backoff
    /// sleep — callers rely on link-layer retransmission).
    pub fn send(&self, to: ServerId, bytes: Bytes) -> Result<()> {
        let mut buf = Vec::with_capacity(HEADER_LEN + bytes.len());
        self.frame_into(&mut buf, to, &bytes);
        self.write_framed(to, &buf)?;
        if let Some(m) = &self.metrics {
            m.on_tx(to, bytes.len());
        }
        Ok(())
    }

    /// Sends several packets to `to` as one buffered socket write.
    ///
    /// # Errors
    ///
    /// As for [`MuxTcpEndpoint::send`].
    pub fn send_batch(&self, to: ServerId, batch: &[Bytes]) -> Result<()> {
        if batch.is_empty() {
            return Ok(());
        }
        let total: usize = batch.iter().map(|b| HEADER_LEN + b.len()).sum();
        let mut buf = Vec::with_capacity(total);
        for bytes in batch {
            self.frame_into(&mut buf, to, bytes);
        }
        self.write_framed(to, &buf)?;
        if let Some(m) = &self.metrics {
            for bytes in batch {
                m.on_tx(to, bytes.len());
            }
        }
        Ok(())
    }

    /// Receives without blocking; `Ok(None)` if the inbox is empty.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Closed`] once the mesh has shut down.
    pub fn try_recv(&self) -> Result<Option<Incoming>> {
        match self.inbox.try_recv() {
            Ok(msg) => {
                if let Some(m) = &self.metrics {
                    m.on_rx(msg.from, msg.bytes.len());
                }
                Ok(Some(msg))
            }
            Err(crossbeam::channel::TryRecvError::Empty) => Ok(None),
            Err(crossbeam::channel::TryRecvError::Disconnected) => {
                Err(Error::Closed("mux endpoint"))
            }
        }
    }

    /// Receives the next frame, blocking up to `timeout`; `Ok(None)` on
    /// timeout. Test convenience — runtimes use the readiness contract.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Closed`] once the mesh has shut down.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<Option<Incoming>> {
        match self.inbox.recv_timeout(timeout) {
            Ok(msg) => {
                if let Some(m) = &self.metrics {
                    m.on_rx(msg.from, msg.bytes.len());
                }
                Ok(Some(msg))
            }
            Err(crossbeam::channel::RecvTimeoutError::Timeout) => Ok(None),
            Err(crossbeam::channel::RecvTimeoutError::Disconnected) => {
                Err(Error::Closed("mux endpoint"))
            }
        }
    }
}

impl Drop for MuxTcpEndpoint {
    fn drop(&mut self) {
        // AcqRel: the release half orders this endpoint's final sends
        // before the decrement; the acquire half makes the last dropper
        // see them all before it pulls the plug.
        if self.shared.live.fetch_sub(1, Ordering::AcqRel) == 1 {
            // Last endpoint gone: stop the shard acceptors and readers.
            self.shared.shutdown.store(true, Ordering::Release);
        }
    }
}

/// Factory for a multiplexed localhost mesh: one listener per shard,
/// `n` endpoints demultiplexed onto them.
#[derive(Debug)]
pub struct MuxTcpNetwork;

impl MuxTcpNetwork {
    /// Default outbound connect timeout (matches the plain TCP mesh).
    pub const DEFAULT_CONNECT_TIMEOUT: Duration = crate::tcp::DEFAULT_CONNECT_TIMEOUT;

    /// Creates endpoints for servers `0..n`, multiplexed over `shards`
    /// listener sockets (server `i` lives on shard `i % shards`).
    ///
    /// # Errors
    ///
    /// Returns a transport error if a listener cannot be bound.
    ///
    /// # Panics
    ///
    /// Panics if `n` or `shards` is zero, or `n` exceeds the `u16`
    /// server-id space.
    pub fn create(n: usize, shards: usize) -> Result<Vec<MuxTcpEndpoint>> {
        Self::create_with_connect_timeout(n, shards, Self::DEFAULT_CONNECT_TIMEOUT)
    }

    /// Like [`MuxTcpNetwork::create`] with an explicit connect timeout.
    ///
    /// # Errors
    ///
    /// As for [`MuxTcpNetwork::create`].
    ///
    /// # Panics
    ///
    /// As for [`MuxTcpNetwork::create`].
    pub fn create_with_connect_timeout(
        n: usize,
        shards: usize,
        timeout: Duration,
    ) -> Result<Vec<MuxTcpEndpoint>> {
        assert!(n > 0, "a network needs at least one endpoint");
        assert!(shards > 0, "a mux network needs at least one shard");
        // Server ids are u16 on the wire; an unguarded cast below would
        // silently alias endpoint 65536 onto id 0.
        assert!(
            n <= usize::from(u16::MAX) + 1,
            "server ids are u16: cannot create {n} endpoints"
        );
        let shards = shards.min(n);
        let mut listeners = Vec::with_capacity(shards);
        let mut shard_addrs = Vec::with_capacity(shards);
        for _ in 0..shards {
            let listener = TcpListener::bind("127.0.0.1:0").map_err(|e| io_err("bind", e))?;
            shard_addrs.push(listener.local_addr().map_err(|e| io_err("local_addr", e))?);
            listeners.push(listener);
        }
        let mut inboxes = Vec::with_capacity(n);
        let mut rxs = Vec::with_capacity(n);
        for _ in 0..n {
            let (tx, rx) = unbounded();
            inboxes.push(tx);
            rxs.push(rx);
        }
        let shared = Arc::new(MuxShared {
            shards,
            shard_addrs,
            conns: (0..shards).map(|_| Mutex::new(None)).collect(),
            connect_timeout: timeout,
            shutdown: AtomicBool::new(false),
            live: AtomicUsize::new(n),
            inboxes,
            notify: (0..n).map(|_| NotifySlot::new()).collect(),
            health: PeerHealth::new(n),
        });
        for listener in listeners {
            spawn_shard_acceptor(listener, shared.clone())?;
        }
        Ok(rxs
            .into_iter()
            .enumerate()
            .map(|(i, inbox)| MuxTcpEndpoint {
                me: ServerId::new(i as u16),
                shared: shared.clone(),
                inbox,
                metrics: None,
            })
            .collect())
    }
}

fn spawn_shard_acceptor(listener: TcpListener, shared: Arc<MuxShared>) -> Result<()> {
    listener
        .set_nonblocking(true)
        .map_err(|e| io_err("nonblocking", e))?;
    std::thread::spawn(move || {
        while !shared.shutdown.load(Ordering::Acquire) {
            match listener.accept() {
                Ok((stream, _)) => {
                    let shared = shared.clone();
                    std::thread::spawn(move || shard_reader_loop(stream, &shared));
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(2));
                }
                Err(_) => break,
            }
        }
    });
    Ok(())
}

/// Payload length from an 8-byte `(from, to, len)` header.
fn mux_payload_len(header: &[u8]) -> Option<usize> {
    let &[_, _, _, _, l0, l1, l2, l3] = header else {
        return None;
    };
    let len = u32::from_le_bytes([l0, l1, l2, l3]) as usize;
    (len <= MAX_FRAME).then_some(len)
}

/// Demultiplexes one accepted stream: decodes mux frames zero-copy and
/// routes each to its destination server's inbox, then pokes that
/// server's readiness notifier.
fn shard_reader_loop(stream: TcpStream, shared: &MuxShared) {
    let mut stream = stream;
    if stream
        .set_read_timeout(Some(Duration::from_millis(50)))
        .is_err()
    {
        return;
    }
    let mut buf = FrameBuf::new();
    let mut scratch = vec![0u8; 64 * 1024];
    while !shared.shutdown.load(Ordering::Acquire) {
        match stream.read(&mut scratch) {
            Ok(0) => return, // peer closed
            Ok(k) => {
                buf.extend(&scratch[..k]);
                let Some(frames) = buf.drain_frames(HEADER_LEN, mux_payload_len) else {
                    return; // corrupt stream: drop the connection
                };
                for frame in frames {
                    let &[f0, f1, t0, t1, ..] = frame.header.as_ref() else {
                        continue; // impossible: drain_frames yields full headers
                    };
                    let from = ServerId::new(u16::from_le_bytes([f0, f1]));
                    let to = ServerId::new(u16::from_le_bytes([t0, t1]));
                    let Some(inbox) = shared.inboxes.get(to.as_usize()) else {
                        continue; // unknown destination: drop the frame
                    };
                    if inbox
                        .send(Incoming {
                            from,
                            bytes: frame.payload,
                        })
                        .is_err()
                    {
                        continue; // endpoint dropped: drop the frame
                    }
                    if let Some(slot) = shared.notify.get(to.as_usize()) {
                        slot.notify();
                    }
                }
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut => {}
            Err(_) => return,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(i: u16) -> ServerId {
        ServerId::new(i)
    }

    fn recv(ep: &MuxTcpEndpoint) -> Incoming {
        ep.recv_timeout(Duration::from_secs(5))
            .unwrap()
            .expect("frame arrives")
    }

    #[test]
    fn point_to_point_across_shards() {
        let eps = MuxTcpNetwork::create(4, 2).unwrap();
        assert_eq!(eps[0].shard_count(), 2);
        eps[0].send(s(3), Bytes::from_static(b"hi")).unwrap();
        let got = recv(&eps[3]);
        assert_eq!(got.from, s(0));
        assert_eq!(&got.bytes[..], b"hi");
    }

    #[test]
    fn many_logical_links_share_one_socket() {
        // Four servers on one shard: all 16 logical links run over a
        // single destination socket; every frame still lands correctly.
        let eps = MuxTcpNetwork::create(4, 1).unwrap();
        for from in 0..4u16 {
            for to in 0..4u16 {
                eps[from as usize]
                    .send(s(to), Bytes::from(vec![from as u8, to as u8]))
                    .unwrap();
            }
        }
        for (to, ep) in eps.iter().enumerate() {
            let mut got = Vec::new();
            for _ in 0..4 {
                let inc = recv(ep);
                assert_eq!(inc.bytes[1] as usize, to);
                got.push(inc.from);
            }
            got.sort();
            assert_eq!(got, vec![s(0), s(1), s(2), s(3)]);
        }
    }

    #[test]
    fn per_link_fifo_through_the_mux() {
        let eps = MuxTcpNetwork::create(4, 2).unwrap();
        for i in 0..100u32 {
            eps[1]
                .send(s(2), Bytes::from(i.to_le_bytes().to_vec()))
                .unwrap();
        }
        for i in 0..100u32 {
            let got = recv(&eps[2]);
            assert_eq!(got.from, s(1));
            assert_eq!(got.bytes[..], i.to_le_bytes());
        }
    }

    #[test]
    fn batch_is_one_write_and_preserves_order() {
        let eps = MuxTcpNetwork::create(2, 2).unwrap();
        let batch: Vec<Bytes> = (0..5u8).map(|i| Bytes::from(vec![i])).collect();
        eps[0].send_batch(s(1), &batch).unwrap();
        for i in 0..5u8 {
            assert_eq!(&recv(&eps[1]).bytes[..], &[i]);
        }
    }

    #[test]
    fn unknown_peer_errors() {
        let eps = MuxTcpNetwork::create(2, 1).unwrap();
        assert!(matches!(
            eps[0].send(s(9), Bytes::new()),
            Err(Error::UnknownServer(_))
        ));
    }

    #[test]
    fn notifier_fires_per_arrival() {
        use std::sync::atomic::AtomicUsize;
        let mut eps = MuxTcpNetwork::create(2, 1).unwrap();
        let hits = Arc::new(AtomicUsize::new(0));
        let h = hits.clone();
        let ep1 = &mut eps[1];
        ep1.set_ready_notifier(Arc::new(move || {
            h.fetch_add(1, Ordering::SeqCst);
        }));
        eps[0].send(s(1), Bytes::from_static(b"x")).unwrap();
        let got = recv(&eps[1]);
        assert_eq!(&got.bytes[..], b"x");
        assert!(hits.load(Ordering::SeqCst) >= 1);
    }
}
