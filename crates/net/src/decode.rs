//! Zero-copy incremental frame decoding for stream transports.
//!
//! TCP readers historically allocated a fresh `Vec<u8>` per frame. A
//! [`FrameBuf`] instead accumulates raw socket reads and, once complete
//! frames are available, moves the parsed region into **one** shared
//! [`Bytes`] buffer per drain; every frame payload is then an O(1)
//! [`Bytes::slice`] view borrowing from that buffer — no per-datagram
//! allocation, no per-datagram copy. Only the trailing partial frame (at
//! most one header + payload prefix) is carried over by copy.

use bytes::Bytes;

/// Incremental frame reassembly buffer for length-prefixed streams.
///
/// Generic over the header: callers supply the header length and a
/// function mapping a header to the payload length (or `None` for a
/// corrupt header, which poisons the stream).
#[derive(Debug, Default)]
pub struct FrameBuf {
    acc: Vec<u8>,
    poisoned: bool,
}

/// One decoded frame: the fixed-size header bytes and the payload as a
/// zero-copy view into the drain's shared buffer.
#[derive(Debug, Clone)]
pub struct RawFrame {
    /// The frame header, borrowed from the same shared buffer.
    pub header: Bytes,
    /// The payload, borrowed from the same shared buffer.
    pub payload: Bytes,
}

impl FrameBuf {
    /// A fresh, empty buffer.
    #[must_use]
    pub fn new() -> FrameBuf {
        FrameBuf::default()
    }

    /// Appends raw bytes read from the stream.
    pub fn extend(&mut self, data: &[u8]) {
        self.acc.extend_from_slice(data);
    }

    /// Bytes currently buffered (complete and partial frames).
    #[must_use]
    pub fn len(&self) -> usize {
        self.acc.len()
    }

    /// Whether nothing is buffered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.acc.is_empty()
    }

    /// Drains every complete frame.
    ///
    /// `payload_len` inspects a `header_len`-byte header and returns the
    /// payload length, or `None` to reject the frame (the stream is then
    /// poisoned: this call and every later one returns `None`, and the
    /// caller should drop the connection).
    ///
    /// Returns `None` if the stream is poisoned, otherwise the decoded
    /// frames (possibly empty). All frames of one drain share a single
    /// heap buffer.
    pub fn drain_frames(
        &mut self,
        header_len: usize,
        payload_len: impl Fn(&[u8]) -> Option<usize>,
    ) -> Option<Vec<RawFrame>> {
        if self.poisoned {
            return None;
        }
        // First pass: find how many bytes form complete frames.
        let mut consumed = 0usize;
        loop {
            let rest = &self.acc[consumed..];
            if rest.len() < header_len {
                break;
            }
            let Some(len) = payload_len(&rest[..header_len]) else {
                self.poisoned = true;
                return None;
            };
            let Some(total) = header_len.checked_add(len) else {
                self.poisoned = true;
                return None;
            };
            if rest.len() < total {
                break;
            }
            consumed += total;
        }
        if consumed == 0 {
            return Some(Vec::new());
        }
        // Move the complete region out as one shared buffer; keep the
        // partial tail (the only copy, bounded by one frame).
        let tail = self.acc.split_off(consumed);
        let mut chunk = Bytes::from(std::mem::replace(&mut self.acc, tail));
        // Second pass: cut zero-copy views.
        let mut frames = Vec::new();
        while !chunk.is_empty() {
            let header = chunk.split_to(header_len);
            // `payload_len` is deterministic; the first pass validated it.
            let len = payload_len(&header)?;
            let payload = chunk.split_to(len);
            frames.push(RawFrame { header, payload });
        }
        Some(frames)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Test header: 2-byte little-endian payload length.
    fn plen(h: &[u8]) -> Option<usize> {
        Some(u16::from_le_bytes([h[0], h[1]]) as usize)
    }

    fn frame(payload: &[u8]) -> Vec<u8> {
        let mut f = (payload.len() as u16).to_le_bytes().to_vec();
        f.extend_from_slice(payload);
        f
    }

    #[test]
    fn reassembles_across_arbitrary_chunking() {
        let mut wire = Vec::new();
        for p in [&b"alpha"[..], b"", b"gamma-gamma"] {
            wire.extend_from_slice(&frame(p));
        }
        // Feed one byte at a time: worst-case fragmentation.
        let mut buf = FrameBuf::new();
        let mut got = Vec::new();
        for b in wire {
            buf.extend(&[b]);
            got.extend(buf.drain_frames(2, plen).unwrap());
        }
        assert_eq!(got.len(), 3);
        assert_eq!(&got[0].payload[..], b"alpha");
        assert_eq!(&got[1].payload[..], b"");
        assert_eq!(&got[2].payload[..], b"gamma-gamma");
        assert!(buf.is_empty());
    }

    #[test]
    fn one_drain_shares_one_buffer() {
        let mut buf = FrameBuf::new();
        buf.extend(&frame(b"aa"));
        buf.extend(&frame(b"bb"));
        let frames = buf.drain_frames(2, plen).unwrap();
        assert_eq!(frames.len(), 2);
        // Zero-copy: both payloads are views into one allocation, so the
        // second payload starts where the first frame ended.
        assert_eq!(&frames[0].payload[..], b"aa");
        assert_eq!(&frames[1].payload[..], b"bb");
    }

    #[test]
    fn corrupt_header_poisons_the_stream() {
        let mut buf = FrameBuf::new();
        buf.extend(&[0xff, 0xff, 0x00]);
        assert!(buf.drain_frames(2, |_| None).is_none());
        buf.extend(&frame(b"late"));
        assert!(buf.drain_frames(2, plen).is_none());
    }

    #[test]
    fn partial_frame_waits() {
        let mut buf = FrameBuf::new();
        let f = frame(b"payload");
        buf.extend(&f[..4]);
        assert!(buf.drain_frames(2, plen).unwrap().is_empty());
        assert_eq!(buf.len(), 4);
        buf.extend(&f[4..]);
        let got = buf.drain_frames(2, plen).unwrap();
        assert_eq!(&got[0].payload[..], b"payload");
    }
}
