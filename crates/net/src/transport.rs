//! The byte-transport abstraction — owned by the net crate.
//!
//! A [`Transport`] is what a runtime drives to move encoded datagrams
//! between servers: the in-memory mesh ([`MemoryEndpoint`]), localhost
//! TCP ([`TcpEndpoint`]), or the multiplexed shard mesh
//! ([`MuxTcpEndpoint`]). It lived in `aaa-mom`'s runtime historically;
//! it belongs here, beside the endpoint types that implement it (the
//! MOM re-exports it for compatibility).
//!
//! # The readiness contract
//!
//! The trait is **non-blocking by design** so that many endpoints can be
//! multiplexed onto a fixed pool of event-loop shards:
//!
//! - [`Transport::poll_recv`] returns the next ready datagram without
//!   blocking (and records it in the receive counters), or `None` when
//!   the inbox is empty;
//! - [`Transport::set_ready_notifier`] registers a callback invoked
//!   whenever the inbox (possibly) transitions from empty to non-empty.
//!   An evented runtime uses it to schedule the owning server onto a
//!   shard's run queue; nothing about the callback may block.
//!
//! Thread-per-server runtimes that want to *sleep* until traffic arrives
//! wrap the notifier in a [`ReadyMailbox`] — the blocking adapter: the
//! notifier pokes a wakeup channel the legacy `select!` loop can park on.
//!
//! Transports speak batches natively: [`Transport::send_batch`] hands the
//! transport every wire packet a group-commit flush produced for one peer,
//! so implementations with per-send cost (syscalls, locks) can amortize it
//! — [`TcpEndpoint`] writes one contiguous buffer per batch. The default
//! implementation falls back to one [`Transport::send`] per packet.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use aaa_base::{Result, ServerId};
use aaa_obs::Meter;
use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::RwLock;

use crate::health::PeerState;
use crate::memory::{Incoming, MemoryEndpoint};
use crate::mux::MuxTcpEndpoint;
use crate::tcp::TcpEndpoint;

/// A readiness callback: invoked by a transport when its inbox may have
/// become non-empty. Must be cheap and must never block — it typically
/// flips an atomic flag and pushes a server index onto a run queue.
pub type ReadyNotifier = Arc<dyn Fn() + Send + Sync>;

/// A shared, swappable slot holding an endpoint's [`ReadyNotifier`].
///
/// Senders (peer endpoints, reader threads) clone the slot and call
/// [`NotifySlot::notify`] after pushing into the inbox; the runtime
/// installs the callback through [`Transport::set_ready_notifier`].
/// Until one is installed, notifications are silently dropped — runtimes
/// must poll once after installing to cover the gap.
#[derive(Clone, Default)]
pub struct NotifySlot(Arc<RwLock<Option<ReadyNotifier>>>);

impl NotifySlot {
    /// A fresh, empty slot.
    #[must_use]
    pub fn new() -> NotifySlot {
        NotifySlot::default()
    }

    /// Installs (or replaces) the notifier.
    pub fn set(&self, notifier: ReadyNotifier) {
        *self.0.write() = Some(notifier);
    }

    /// Invokes the installed notifier, if any.
    pub fn notify(&self) {
        if let Some(n) = self.0.read().as_ref() {
            n();
        }
    }
}

impl std::fmt::Debug for NotifySlot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NotifySlot")
            .field("installed", &self.0.read().is_some())
            .finish()
    }
}

/// The blocking adapter over the readiness contract.
///
/// Legacy thread-per-server runtimes park on a channel; an evented
/// transport only offers a notifier callback. `ReadyMailbox` bridges the
/// two: [`ReadyMailbox::notifier`] returns a callback that sends one
/// wakeup token (collapsing bursts through an atomic flag so the channel
/// never grows unboundedly), and the loop `select!`s on
/// [`ReadyMailbox::receiver`]. Call [`ReadyMailbox::ack`] *before*
/// draining [`Transport::poll_recv`] so a datagram arriving mid-drain
/// re-arms the wakeup.
pub struct ReadyMailbox {
    armed: Arc<AtomicBool>,
    tx: Sender<()>,
    rx: Receiver<()>,
}

impl ReadyMailbox {
    /// A fresh mailbox with no pending wakeups.
    #[must_use]
    pub fn new() -> ReadyMailbox {
        let (tx, rx) = unbounded();
        ReadyMailbox {
            armed: Arc::new(AtomicBool::new(false)),
            tx,
            rx,
        }
    }

    /// The notifier to install via [`Transport::set_ready_notifier`].
    #[must_use]
    pub fn notifier(&self) -> ReadyNotifier {
        let armed = self.armed.clone();
        let tx = self.tx.clone();
        Arc::new(move || {
            if !armed.swap(true, Ordering::AcqRel) {
                // Receiver alive for the mailbox's lifetime; a send can
                // only fail during teardown, when the wakeup is moot.
                // audit:allow(error-swallow)
                let _ = tx.send(());
            }
        })
    }

    /// The wakeup channel to park on (`select!`/`recv_timeout`).
    #[must_use]
    pub fn receiver(&self) -> &Receiver<()> {
        &self.rx
    }

    /// Re-arms the mailbox; call before draining the transport so
    /// arrivals during the drain produce a fresh wakeup.
    pub fn ack(&self) {
        self.armed.store(false, Ordering::Release);
    }

    /// Queues a wakeup to self — used when a bounded drain stopped early
    /// and the loop must come back for the remainder.
    pub fn reschedule(&self) {
        if !self.armed.swap(true, Ordering::AcqRel) {
            // Same as in `notifier`: failure means teardown.
            // audit:allow(error-swallow)
            let _ = self.tx.send(());
        }
    }
}

impl Default for ReadyMailbox {
    fn default() -> Self {
        ReadyMailbox::new()
    }
}

impl std::fmt::Debug for ReadyMailbox {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReadyMailbox")
            .field("armed", &self.armed.load(Ordering::Relaxed))
            .finish()
    }
}

/// A byte transport a runtime can drive: the in-memory mesh
/// ([`MemoryEndpoint`]), localhost TCP ([`TcpEndpoint`]), or the
/// multiplexed shard mesh ([`MuxTcpEndpoint`]).
pub trait Transport: Send + 'static {
    /// This endpoint's server id.
    fn me(&self) -> ServerId;

    /// Sends `bytes` to `to`.
    ///
    /// # Errors
    ///
    /// Transport-specific failures; the caller treats them as packet loss
    /// (the link layer retransmits).
    fn send(&self, to: ServerId, bytes: Bytes) -> Result<()>;

    /// Sends several already-encoded wire packets to `to`, preserving
    /// order. The default forwards each packet to [`Transport::send`];
    /// transports with per-send overhead override this to pay it once per
    /// batch.
    ///
    /// # Errors
    ///
    /// As for [`Transport::send`]. A mid-batch failure may leave a prefix
    /// delivered; the link layer retransmits the rest.
    fn send_batch(&self, to: ServerId, batch: &[Bytes]) -> Result<()> {
        for bytes in batch {
            self.send(to, bytes.clone())?;
        }
        Ok(())
    }

    /// Returns the next ready datagram without blocking (`None` when the
    /// inbox is empty). Implementations record the frame in their receive
    /// counters, so runtimes need no separate accounting call.
    ///
    /// # Errors
    ///
    /// Returns [`aaa_base::Error::Closed`] once the transport has shut
    /// down and no more datagrams can ever arrive.
    fn poll_recv(&self) -> Result<Option<Incoming>>;

    /// Installs the readiness callback invoked whenever the inbox may
    /// have become non-empty (see the module docs for the contract).
    /// Replaces any previously installed notifier. Poll once after
    /// installing: datagrams that arrived earlier produced no callback.
    fn set_ready_notifier(&mut self, notifier: ReadyNotifier);

    /// Attaches a metrics meter (default: no instrumentation).
    fn attach_meter(&mut self, _meter: &Meter) {}

    /// Failure-detector verdict for `to`, if this transport tracks one.
    ///
    /// Runtimes use this to stop hot-looping retransmissions into a peer
    /// that is [`PeerState::Down`] (they still send low-rate probes so a
    /// recovery is noticed). The default says every peer is up, which is
    /// always safe — just not self-healing.
    fn peer_state(&self, _to: ServerId) -> PeerState {
        PeerState::Up
    }
}

impl Transport for MemoryEndpoint {
    fn me(&self) -> ServerId {
        MemoryEndpoint::me(self)
    }
    fn send(&self, to: ServerId, bytes: Bytes) -> Result<()> {
        MemoryEndpoint::send(self, to, bytes)
    }
    fn poll_recv(&self) -> Result<Option<Incoming>> {
        MemoryEndpoint::try_recv(self)
    }
    fn set_ready_notifier(&mut self, notifier: ReadyNotifier) {
        MemoryEndpoint::set_ready_notifier(self, notifier);
    }
    fn attach_meter(&mut self, meter: &Meter) {
        MemoryEndpoint::attach_meter(self, meter);
    }
}

impl Transport for TcpEndpoint {
    fn me(&self) -> ServerId {
        TcpEndpoint::me(self)
    }
    fn send(&self, to: ServerId, bytes: Bytes) -> Result<()> {
        TcpEndpoint::send(self, to, bytes)
    }
    fn send_batch(&self, to: ServerId, batch: &[Bytes]) -> Result<()> {
        TcpEndpoint::send_batch(self, to, batch)
    }
    fn poll_recv(&self) -> Result<Option<Incoming>> {
        TcpEndpoint::try_recv(self)
    }
    fn set_ready_notifier(&mut self, notifier: ReadyNotifier) {
        TcpEndpoint::set_ready_notifier(self, notifier);
    }
    fn attach_meter(&mut self, meter: &Meter) {
        TcpEndpoint::attach_meter(self, meter);
    }
    fn peer_state(&self, to: ServerId) -> PeerState {
        TcpEndpoint::peer_state(self, to)
    }
}

impl Transport for MuxTcpEndpoint {
    fn me(&self) -> ServerId {
        MuxTcpEndpoint::me(self)
    }
    fn send(&self, to: ServerId, bytes: Bytes) -> Result<()> {
        MuxTcpEndpoint::send(self, to, bytes)
    }
    fn send_batch(&self, to: ServerId, batch: &[Bytes]) -> Result<()> {
        MuxTcpEndpoint::send_batch(self, to, batch)
    }
    fn poll_recv(&self) -> Result<Option<Incoming>> {
        MuxTcpEndpoint::try_recv(self)
    }
    fn set_ready_notifier(&mut self, notifier: ReadyNotifier) {
        MuxTcpEndpoint::set_ready_notifier(self, notifier);
    }
    fn attach_meter(&mut self, meter: &Meter) {
        MuxTcpEndpoint::attach_meter(self, meter);
    }
    fn peer_state(&self, to: ServerId) -> PeerState {
        MuxTcpEndpoint::peer_state(self, to)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::MemoryNetwork;
    use crate::tcp::TcpNetwork;
    use std::sync::atomic::AtomicUsize;
    use std::time::{Duration, Instant};

    fn drive<T: Transport>(eps: &[T], recv: impl Fn(&T) -> Incoming) {
        let batch = vec![
            Bytes::from_static(b"one"),
            Bytes::from_static(b"two"),
            Bytes::from_static(b"three"),
        ];
        eps[0].send_batch(ServerId::new(1), &batch).unwrap();
        for expect in [&b"one"[..], b"two", b"three"] {
            let got = recv(&eps[1]);
            assert_eq!(got.from, ServerId::new(0));
            assert_eq!(&got.bytes[..], expect);
        }
    }

    /// Blocking drain through the trait's poll contract, for tests.
    fn poll_until<T: Transport>(ep: &T, deadline: Duration) -> Incoming {
        let start = Instant::now();
        loop {
            if let Some(inc) = ep.poll_recv().unwrap() {
                return inc;
            }
            assert!(
                start.elapsed() < deadline,
                "no datagram within {deadline:?}"
            );
            std::thread::sleep(Duration::from_micros(200));
        }
    }

    #[test]
    fn memory_send_batch_preserves_order() {
        let eps = MemoryNetwork::create(2);
        drive(&eps, |ep| poll_until(ep, Duration::from_secs(1)));
    }

    #[test]
    fn tcp_send_batch_is_one_buffer_many_packets() {
        let eps = TcpNetwork::create(2).unwrap();
        drive(&eps, |ep| poll_until(ep, Duration::from_secs(5)));
    }

    #[test]
    fn empty_batch_is_a_noop() {
        let eps = MemoryNetwork::create(2);
        Transport::send_batch(&eps[0], ServerId::new(1), &[]).unwrap();
        assert!(eps[1].poll_recv().unwrap().is_none());
    }

    #[test]
    fn notifier_fires_on_send() {
        let mut eps = MemoryNetwork::create(2);
        let hits = Arc::new(AtomicUsize::new(0));
        let h = hits.clone();
        eps[1].set_ready_notifier(Arc::new(move || {
            h.fetch_add(1, Ordering::SeqCst);
        }));
        eps[0]
            .send(ServerId::new(1), Bytes::from_static(b"x"))
            .unwrap();
        assert_eq!(hits.load(Ordering::SeqCst), 1);
        assert!(eps[1].poll_recv().unwrap().is_some());
    }

    #[test]
    fn ready_mailbox_collapses_bursts_and_rearms() {
        let mut eps = MemoryNetwork::create(2);
        let mailbox = ReadyMailbox::new();
        eps[1].set_ready_notifier(mailbox.notifier());
        for _ in 0..10 {
            eps[0]
                .send(ServerId::new(1), Bytes::from_static(b"x"))
                .unwrap();
        }
        // A burst produces exactly one wakeup token.
        assert!(mailbox
            .receiver()
            .recv_timeout(Duration::from_secs(1))
            .is_ok());
        assert!(mailbox.receiver().try_recv().is_err());
        // Ack, drain, and the next send re-arms the wakeup.
        mailbox.ack();
        while eps[1].poll_recv().unwrap().is_some() {}
        eps[0]
            .send(ServerId::new(1), Bytes::from_static(b"y"))
            .unwrap();
        assert!(mailbox
            .receiver()
            .recv_timeout(Duration::from_secs(1))
            .is_ok());
        // Explicit reschedule queues a wakeup without traffic.
        mailbox.ack();
        mailbox.reschedule();
        assert!(mailbox.receiver().try_recv().is_ok());
    }
}
