//! The byte-transport abstraction — owned by the net crate.
//!
//! A [`Transport`] is what a runtime drives to move encoded datagrams
//! between servers: the in-memory mesh ([`MemoryEndpoint`]) or localhost
//! TCP ([`TcpEndpoint`]). It lived in `aaa-mom`'s runtime historically;
//! it belongs here, beside the endpoint types that implement it (the
//! MOM re-exports it for compatibility).
//!
//! Transports speak batches natively: [`Transport::send_batch`] hands the
//! transport every wire packet a group-commit flush produced for one peer,
//! so implementations with per-send cost (syscalls, locks) can amortize it
//! — [`TcpEndpoint`] writes one contiguous buffer per batch. The default
//! implementation falls back to one [`Transport::send`] per packet.

use aaa_base::{Result, ServerId};
use aaa_obs::Meter;
use bytes::Bytes;
use crossbeam::channel::Receiver;

use crate::health::PeerState;
use crate::memory::{Incoming, MemoryEndpoint};
use crate::tcp::TcpEndpoint;

/// A byte transport a runtime can drive: the in-memory mesh
/// ([`MemoryEndpoint`]) or localhost TCP ([`TcpEndpoint`]).
pub trait Transport: Send + 'static {
    /// This endpoint's server id.
    fn me(&self) -> ServerId;

    /// Sends `bytes` to `to`.
    ///
    /// # Errors
    ///
    /// Transport-specific failures; the caller treats them as packet loss
    /// (the link layer retransmits).
    fn send(&self, to: ServerId, bytes: Bytes) -> Result<()>;

    /// Sends several already-encoded wire packets to `to`, preserving
    /// order. The default forwards each packet to [`Transport::send`];
    /// transports with per-send overhead override this to pay it once per
    /// batch.
    ///
    /// # Errors
    ///
    /// As for [`Transport::send`]. A mid-batch failure may leave a prefix
    /// delivered; the link layer retransmits the rest.
    fn send_batch(&self, to: ServerId, batch: &[Bytes]) -> Result<()> {
        for bytes in batch {
            self.send(to, bytes.clone())?;
        }
        Ok(())
    }

    /// The inbox receiver for `select!`.
    fn inbox_receiver(&self) -> &Receiver<Incoming>;

    /// Attaches a metrics meter (default: no instrumentation).
    fn attach_meter(&mut self, _meter: &Meter) {}

    /// Records one received frame (runtimes draining `inbox_receiver`
    /// directly call this per frame; default: no-op).
    fn record_rx(&self, _from: ServerId, _len: usize) {}

    /// Failure-detector verdict for `to`, if this transport tracks one.
    ///
    /// Runtimes use this to stop hot-looping retransmissions into a peer
    /// that is [`PeerState::Down`] (they still send low-rate probes so a
    /// recovery is noticed). The default says every peer is up, which is
    /// always safe — just not self-healing.
    fn peer_state(&self, _to: ServerId) -> PeerState {
        PeerState::Up
    }
}

impl Transport for MemoryEndpoint {
    fn me(&self) -> ServerId {
        MemoryEndpoint::me(self)
    }
    fn send(&self, to: ServerId, bytes: Bytes) -> Result<()> {
        MemoryEndpoint::send(self, to, bytes)
    }
    fn inbox_receiver(&self) -> &Receiver<Incoming> {
        MemoryEndpoint::inbox_receiver(self)
    }
    fn attach_meter(&mut self, meter: &Meter) {
        MemoryEndpoint::attach_meter(self, meter);
    }
    fn record_rx(&self, from: ServerId, len: usize) {
        MemoryEndpoint::record_rx(self, from, len);
    }
}

impl Transport for TcpEndpoint {
    fn me(&self) -> ServerId {
        TcpEndpoint::me(self)
    }
    fn send(&self, to: ServerId, bytes: Bytes) -> Result<()> {
        TcpEndpoint::send(self, to, bytes)
    }
    fn send_batch(&self, to: ServerId, batch: &[Bytes]) -> Result<()> {
        TcpEndpoint::send_batch(self, to, batch)
    }
    fn inbox_receiver(&self) -> &Receiver<Incoming> {
        TcpEndpoint::inbox_receiver(self)
    }
    fn attach_meter(&mut self, meter: &Meter) {
        TcpEndpoint::attach_meter(self, meter);
    }
    fn record_rx(&self, from: ServerId, len: usize) {
        TcpEndpoint::record_rx(self, from, len);
    }
    fn peer_state(&self, to: ServerId) -> PeerState {
        TcpEndpoint::peer_state(self, to)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::MemoryNetwork;
    use crate::tcp::TcpNetwork;
    use std::time::Duration;

    fn drive<T: Transport>(eps: &[T], recv: impl Fn(&T) -> Incoming) {
        let batch = vec![
            Bytes::from_static(b"one"),
            Bytes::from_static(b"two"),
            Bytes::from_static(b"three"),
        ];
        eps[0].send_batch(ServerId::new(1), &batch).unwrap();
        for expect in [&b"one"[..], b"two", b"three"] {
            let got = recv(&eps[1]);
            assert_eq!(got.from, ServerId::new(0));
            assert_eq!(&got.bytes[..], expect);
        }
    }

    #[test]
    fn memory_send_batch_preserves_order() {
        let eps = MemoryNetwork::create(2);
        drive(&eps, |ep| {
            ep.recv_timeout(Duration::from_secs(1)).unwrap().unwrap()
        });
    }

    #[test]
    fn tcp_send_batch_is_one_buffer_many_packets() {
        let eps = TcpNetwork::create(2).unwrap();
        drive(&eps, |ep| {
            ep.recv_timeout(Duration::from_secs(5)).unwrap().unwrap()
        });
    }

    #[test]
    fn empty_batch_is_a_noop() {
        let eps = MemoryNetwork::create(2);
        Transport::send_batch(&eps[0], ServerId::new(1), &[]).unwrap();
        assert!(eps[1].try_recv().unwrap().is_none());
    }
}
