//! TCP transport over localhost — the paper's actual substrate.
//!
//! The authors ran one JVM per agent server, meshed over TCP on a LAN.
//! [`TcpNetwork::create`] reproduces that shape inside one process: every
//! endpoint binds a localhost listener; outbound connections are opened
//! lazily and kept open; a reader thread per connection decodes
//! length-prefixed frames into the endpoint's inbox.
//!
//! Wire format per frame: `u16` sender id (little-endian), `u32` payload
//! length, payload bytes. Send failures (peer not yet listening,
//! connection reset) surface as errors to the caller — the channel's
//! link-layer retransmission absorbs them, exactly as it absorbs packet
//! loss.

use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use aaa_base::{Error, Result, ServerId};
use aaa_obs::Meter;
use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;

use crate::decode::FrameBuf;
use crate::health::{retry_backoff_ms, PeerHealth, PeerState};
use crate::memory::Incoming;
use crate::metrics::NetMetrics;
use crate::transport::{NotifySlot, ReadyNotifier};

fn io_err(context: &str, e: std::io::Error) -> Error {
    Error::Storage(format!("tcp {context}: {e}"))
}

/// Default timeout for establishing an outbound connection (override
/// with [`TcpEndpoint::with_connect_timeout`]).
pub const DEFAULT_CONNECT_TIMEOUT: Duration = Duration::from_secs(2);

/// Send attempts per packet (first try + retries with capped
/// exponential backoff). The link layer's retransmission remains the
/// backstop beyond this.
const MAX_SEND_ATTEMPTS: u32 = 3;

/// Connection table: open streams plus the set of peers ever connected
/// to (so re-establishments can be told apart from first connections).
#[derive(Debug, Default)]
struct ConnTable {
    open: HashMap<ServerId, TcpStream>,
    ever: std::collections::HashSet<ServerId>,
}

/// One server's handle on the TCP mesh.
#[derive(Debug)]
pub struct TcpEndpoint {
    me: ServerId,
    addrs: Arc<Vec<SocketAddr>>,
    inbox: Receiver<Incoming>,
    conns: Mutex<ConnTable>,
    shutdown: Arc<AtomicBool>,
    notify: NotifySlot,
    metrics: Option<NetMetrics>,
    connect_timeout: Duration,
    health: PeerHealth,
}

impl TcpEndpoint {
    /// This endpoint's server id.
    pub fn me(&self) -> ServerId {
        self.me
    }

    /// Attaches a metrics meter; subsequent traffic updates the
    /// `aaa_net_tx_*`/`aaa_net_rx_*` per-peer counters and
    /// `aaa_net_reconnects_total` in the meter's registry.
    pub fn attach_meter(&mut self, meter: &Meter) {
        self.metrics = Some(NetMetrics::with_reconnects(meter, self.addrs.len()));
        self.health.attach_meter(meter);
    }

    /// Overrides the timeout used when establishing an outbound
    /// connection (default [`DEFAULT_CONNECT_TIMEOUT`]). Builder-style;
    /// apply before handing the endpoint to a runtime.
    #[must_use]
    pub fn with_connect_timeout(mut self, timeout: Duration) -> TcpEndpoint {
        self.connect_timeout = timeout;
        self
    }

    /// The configured outbound connect timeout.
    pub fn connect_timeout(&self) -> Duration {
        self.connect_timeout
    }

    /// Failure-detector verdict for `to` (see [`PeerHealth`]): send
    /// outcomes walk a peer `Up` → `Suspect` → `Down`; a success snaps
    /// it back to `Up`.
    pub fn peer_state(&self, to: ServerId) -> PeerState {
        self.health.state(to)
    }

    /// Records one received frame of `len` payload bytes from `from`.
    ///
    /// [`TcpEndpoint::recv_timeout`] calls this internally; runtimes
    /// draining [`TcpEndpoint::inbox_receiver`] directly should call it
    /// per drained frame so receive counters stay accurate.
    pub fn record_rx(&self, from: ServerId, len: usize) {
        if let Some(m) = &self.metrics {
            m.on_rx(from, len);
        }
    }

    /// Number of servers on the mesh.
    pub fn peer_count(&self) -> usize {
        self.addrs.len()
    }

    /// The listening address of `peer`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownServer`] if `peer` is not on the mesh.
    pub fn addr_of(&self, peer: ServerId) -> Result<SocketAddr> {
        self.addrs
            .get(peer.as_usize())
            .copied()
            .ok_or(Error::UnknownServer(peer))
    }

    /// Frames `bytes` with the 6-byte header into `out`.
    fn frame_into(&self, out: &mut Vec<u8>, bytes: &[u8]) {
        let mut header = [0u8; 6];
        header[0..2].copy_from_slice(&self.me.as_u16().to_le_bytes());
        // Saturating length prefix: a >4 GiB frame cannot be represented, and
        // the saturated header makes the reader fail loudly on a short body
        // instead of silently truncating via `as u32` wraparound.
        header[2..6].copy_from_slice(&u32::try_from(bytes.len()).unwrap_or(u32::MAX).to_le_bytes());
        out.extend_from_slice(&header);
        out.extend_from_slice(bytes);
    }

    /// Writes one contiguous buffer to `to`, connecting lazily and
    /// dropping the connection on failure so the next attempt reconnects.
    fn write_to_peer(&self, to: ServerId, buf: &[u8]) -> Result<()> {
        let addr = self.addr_of(to)?;
        let mut conns = self.conns.lock();
        if !conns.open.contains_key(&to) {
            // Intentional coupling: the connection-table lock covers the
            // lazy connect so two senders cannot race a socket into
            // existence twice. Bounded by connect_timeout.
            // audit:allow(guard-across-blocking)
            let stream = TcpStream::connect_timeout(&addr, self.connect_timeout)
                .map_err(|e| io_err("connect", e))?;
            stream.set_nodelay(true).map_err(|e| io_err("nodelay", e))?;
            if !conns.ever.insert(to) {
                // The peer was connected before: this is a reconnect.
                if let Some(m) = &self.metrics {
                    m.on_reconnect(to);
                }
            }
            conns.open.insert(to, stream);
        }
        let stream = match conns.open.get_mut(&to) {
            Some(s) => s,
            // Unreachable (inserted just above); surfaced as a failed
            // write so the link layer's retransmission path recovers.
            None => {
                return Err(io_err(
                    "connect",
                    std::io::Error::other("connection missing"),
                ))
            }
        };
        // Intentional coupling: per-peer frames are serialized under the
        // connection-table lock — the per-link FIFO the causal protocol
        // needs. One syscall per hold; no retry sleep under the lock.
        // audit:allow(guard-across-blocking)
        if let Err(e) = stream.write_all(buf) {
            conns.open.remove(&to); // reconnect on the next attempt
            return Err(io_err("write", e));
        }
        Ok(())
    }

    /// Self-healing write: up to [`MAX_SEND_ATTEMPTS`] tries with capped
    /// exponential backoff and deterministic jitter between them (no lock
    /// is held across an attempt — [`TcpEndpoint::write_to_peer`] scopes
    /// the connection-table guard internally). Outcomes feed the
    /// [`PeerHealth`] failure detector either way; an unknown peer is
    /// never retried.
    fn write_with_retry(&self, to: ServerId, buf: &[u8]) -> Result<()> {
        let mut attempt = 0u32;
        loop {
            match self.write_to_peer(to, buf) {
                Ok(()) => {
                    self.health.on_success(to);
                    return Ok(());
                }
                Err(e @ Error::UnknownServer(_)) => return Err(e),
                Err(e) => {
                    self.health.on_failure(to);
                    attempt = attempt.saturating_add(1);
                    if attempt >= MAX_SEND_ATTEMPTS {
                        return Err(e);
                    }
                    let backoff = retry_backoff_ms(self.me, to, attempt);
                    self.health.on_retry(to, backoff);
                    std::thread::sleep(Duration::from_millis(backoff));
                }
            }
        }
    }

    /// Sends `bytes` to `to`, connecting lazily.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownServer`] for an unknown peer, or a
    /// transport error if the connection cannot be established or the
    /// write fails (callers rely on link-layer retransmission to recover).
    pub fn send(&self, to: ServerId, bytes: Bytes) -> Result<()> {
        let mut buf = Vec::with_capacity(6 + bytes.len());
        self.frame_into(&mut buf, &bytes);
        self.write_with_retry(to, &buf)?;
        if let Some(m) = &self.metrics {
            m.on_tx(to, bytes.len());
        }
        Ok(())
    }

    /// Sends several packets to `to` as **one** buffered socket write —
    /// the transport half of group-commit batching: a flush of `k`
    /// coalesced datagrams costs one syscall instead of `k`.
    ///
    /// # Errors
    ///
    /// As for [`TcpEndpoint::send`]. On failure the whole batch counts as
    /// lost and the link layer retransmits it.
    pub fn send_batch(&self, to: ServerId, batch: &[Bytes]) -> Result<()> {
        if batch.is_empty() {
            return Ok(());
        }
        let total: usize = batch.iter().map(|b| 6 + b.len()).sum();
        let mut buf = Vec::with_capacity(total);
        for bytes in batch {
            self.frame_into(&mut buf, bytes);
        }
        self.write_with_retry(to, &buf)?;
        if let Some(m) = &self.metrics {
            for bytes in batch {
                m.on_tx(to, bytes.len());
            }
        }
        Ok(())
    }

    /// Installs this endpoint's readiness notifier (see
    /// [`crate::Transport::set_ready_notifier`] for the contract): the
    /// reader threads invoke it after pushing decoded frames into the
    /// inbox.
    pub fn set_ready_notifier(&mut self, notifier: ReadyNotifier) {
        self.notify.set(notifier);
    }

    /// Receives without blocking; `Ok(None)` if the inbox is empty.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Closed`] once the endpoint has shut down.
    pub fn try_recv(&self) -> Result<Option<Incoming>> {
        match self.inbox.try_recv() {
            Ok(msg) => {
                self.record_rx(msg.from, msg.bytes.len());
                Ok(Some(msg))
            }
            Err(crossbeam::channel::TryRecvError::Empty) => Ok(None),
            Err(crossbeam::channel::TryRecvError::Disconnected) => {
                Err(Error::Closed("tcp endpoint"))
            }
        }
    }

    /// Receives the next frame, blocking up to `timeout`; `Ok(None)` on
    /// timeout.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Closed`] once the endpoint has shut down.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<Option<Incoming>> {
        match self.inbox.recv_timeout(timeout) {
            Ok(msg) => {
                self.record_rx(msg.from, msg.bytes.len());
                Ok(Some(msg))
            }
            Err(crossbeam::channel::RecvTimeoutError::Timeout) => Ok(None),
            Err(crossbeam::channel::RecvTimeoutError::Disconnected) => {
                Err(Error::Closed("tcp endpoint"))
            }
        }
    }
}

impl Drop for TcpEndpoint {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::Release);
    }
}

/// Factory for a fully meshed localhost TCP network.
#[derive(Debug)]
pub struct TcpNetwork;

impl TcpNetwork {
    /// Binds `n` ephemeral-port listeners on `127.0.0.1` and returns the
    /// endpoints. Reader threads run until the endpoint is dropped.
    ///
    /// # Errors
    ///
    /// Returns a transport error if a listener cannot be bound.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or exceeds the `u16` server-id space.
    pub fn create(n: usize) -> Result<Vec<TcpEndpoint>> {
        Self::create_with_connect_timeout(n, DEFAULT_CONNECT_TIMEOUT)
    }

    /// Like [`TcpNetwork::create`], with an explicit outbound connect
    /// timeout for every endpoint (the satellite knob for impatient
    /// runtimes and fast-failing tests).
    ///
    /// # Errors
    ///
    /// As for [`TcpNetwork::create`].
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or exceeds the `u16` server-id space.
    pub fn create_with_connect_timeout(n: usize, timeout: Duration) -> Result<Vec<TcpEndpoint>> {
        assert!(n > 0, "a network needs at least one endpoint");
        // Server ids are u16 on the wire; an unguarded `i as u16` below
        // would silently alias endpoint 65536 onto id 0.
        assert!(
            n <= usize::from(u16::MAX) + 1,
            "server ids are u16: cannot create {n} endpoints"
        );
        let mut listeners = Vec::with_capacity(n);
        let mut addrs = Vec::with_capacity(n);
        for _ in 0..n {
            let listener = TcpListener::bind("127.0.0.1:0").map_err(|e| io_err("bind", e))?;
            addrs.push(listener.local_addr().map_err(|e| io_err("local_addr", e))?);
            listeners.push(listener);
        }
        let addrs = Arc::new(addrs);

        let mut endpoints = Vec::with_capacity(n);
        for (i, listener) in listeners.into_iter().enumerate() {
            let (tx, rx) = unbounded();
            let shutdown = Arc::new(AtomicBool::new(false));
            let notify = NotifySlot::new();
            spawn_acceptor(listener, tx, shutdown.clone(), notify.clone())?;
            endpoints.push(TcpEndpoint {
                me: ServerId::new(i as u16),
                addrs: addrs.clone(),
                inbox: rx,
                conns: Mutex::new(ConnTable::default()),
                shutdown,
                notify,
                metrics: None,
                connect_timeout: timeout,
                health: PeerHealth::new(n),
            });
        }
        Ok(endpoints)
    }
}

fn spawn_acceptor(
    listener: TcpListener,
    tx: Sender<Incoming>,
    shutdown: Arc<AtomicBool>,
    notify: NotifySlot,
) -> Result<()> {
    listener
        .set_nonblocking(true)
        .map_err(|e| io_err("nonblocking", e))?;
    std::thread::spawn(move || {
        while !shutdown.load(Ordering::Acquire) {
            match listener.accept() {
                Ok((stream, _)) => {
                    let tx = tx.clone();
                    let shutdown = shutdown.clone();
                    let notify = notify.clone();
                    std::thread::spawn(move || reader_loop(stream, tx, shutdown, notify));
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(2));
                }
                Err(_) => break,
            }
        }
    });
    Ok(())
}

/// Payload length from a 6-byte `(from u16, len u32)` header; rejects
/// absurd frames so a corrupt stream drops the connection.
fn tcp_payload_len(header: &[u8]) -> Option<usize> {
    let &[_, _, l0, l1, l2, l3] = header else {
        return None;
    };
    let len = u32::from_le_bytes([l0, l1, l2, l3]) as usize;
    (len <= 64 << 20).then_some(len)
}

fn reader_loop(
    stream: TcpStream,
    tx: Sender<Incoming>,
    shutdown: Arc<AtomicBool>,
    notify: NotifySlot,
) {
    let mut stream = stream;
    if stream
        .set_read_timeout(Some(Duration::from_millis(50)))
        .is_err()
    {
        return;
    }
    // Zero-copy decode: raw reads accumulate in a FrameBuf; each drain
    // yields payloads as shared views into one buffer per read burst
    // instead of a fresh allocation per frame.
    let mut buf = FrameBuf::new();
    let mut scratch = vec![0u8; 64 * 1024];
    while !shutdown.load(Ordering::Acquire) {
        match stream.read(&mut scratch) {
            Ok(0) => return, // peer closed
            Ok(k) => {
                buf.extend(&scratch[..k]);
                let Some(frames) = buf.drain_frames(6, tcp_payload_len) else {
                    return; // corrupt stream: drop the connection
                };
                let mut any = false;
                for frame in frames {
                    let &[f0, f1, ..] = frame.header.as_ref() else {
                        continue; // impossible: drain_frames yields full headers
                    };
                    let from = ServerId::new(u16::from_le_bytes([f0, f1]));
                    if tx
                        .send(Incoming {
                            from,
                            bytes: frame.payload,
                        })
                        .is_err()
                    {
                        return;
                    }
                    any = true;
                }
                if any {
                    notify.notify();
                }
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut => {}
            Err(_) => return,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_to_point_over_tcp() {
        let eps = TcpNetwork::create(2).unwrap();
        eps[0]
            .send(ServerId::new(1), Bytes::from_static(b"hello tcp"))
            .unwrap();
        let got = eps[1]
            .recv_timeout(Duration::from_secs(5))
            .unwrap()
            .expect("frame arrives");
        assert_eq!(got.from, ServerId::new(0));
        assert_eq!(&got.bytes[..], b"hello tcp");
        assert_eq!(eps[0].peer_count(), 2);
    }

    #[test]
    fn per_connection_fifo() {
        let eps = TcpNetwork::create(2).unwrap();
        for i in 0..50u32 {
            eps[0]
                .send(ServerId::new(1), Bytes::from(i.to_le_bytes().to_vec()))
                .unwrap();
        }
        for i in 0..50u32 {
            let got = eps[1]
                .recv_timeout(Duration::from_secs(5))
                .unwrap()
                .expect("frame arrives in order");
            assert_eq!(got.bytes[..], i.to_le_bytes());
        }
    }

    #[test]
    fn bidirectional_and_multi_peer() {
        let eps = TcpNetwork::create(3);
        let eps = eps.unwrap();
        eps[0]
            .send(ServerId::new(2), Bytes::from_static(b"a"))
            .unwrap();
        eps[2]
            .send(ServerId::new(0), Bytes::from_static(b"b"))
            .unwrap();
        eps[1]
            .send(ServerId::new(2), Bytes::from_static(b"c"))
            .unwrap();
        let at2a = eps[2]
            .recv_timeout(Duration::from_secs(5))
            .unwrap()
            .unwrap();
        let at2b = eps[2]
            .recv_timeout(Duration::from_secs(5))
            .unwrap()
            .unwrap();
        let mut froms = vec![at2a.from, at2b.from];
        froms.sort();
        assert_eq!(froms, vec![ServerId::new(0), ServerId::new(1)]);
        let at0 = eps[0]
            .recv_timeout(Duration::from_secs(5))
            .unwrap()
            .unwrap();
        assert_eq!(at0.from, ServerId::new(2));
    }

    #[test]
    fn connect_timeout_is_plumbed_and_non_listening_port_fails_fast() {
        use std::time::Instant;
        // Default stays at 2 s unless overridden.
        let eps = TcpNetwork::create(1).unwrap();
        assert_eq!(eps[0].connect_timeout(), DEFAULT_CONNECT_TIMEOUT);

        let mut eps =
            TcpNetwork::create_with_connect_timeout(2, Duration::from_millis(100)).unwrap();
        assert_eq!(eps[0].connect_timeout(), Duration::from_millis(100));
        // Kill peer 1's listener: its port stops accepting connections.
        let ep1 = eps.pop().expect("two endpoints");
        drop(ep1);
        std::thread::sleep(Duration::from_millis(100));

        let start = Instant::now();
        let res = eps[0].send(ServerId::new(1), Bytes::from_static(b"x"));
        let elapsed = start.elapsed();
        assert!(res.is_err(), "non-listening port must fail the send");
        // 3 attempts at ≤100 ms connect timeout + ≤60 ms backoff each —
        // far below the historical hardcoded 2 s per attempt.
        assert!(
            elapsed < Duration::from_secs(2),
            "send took {elapsed:?}; connect timeout not honoured"
        );
        // The retry loop exhausted its attempts: the peer is now Down.
        assert_eq!(eps[0].peer_state(ServerId::new(1)), PeerState::Down);
    }

    #[test]
    fn builder_timeout_override_applies() {
        let mut eps = TcpNetwork::create(1).unwrap();
        let ep = eps.pop().expect("endpoint");
        let ep = ep.with_connect_timeout(Duration::from_millis(250));
        assert_eq!(ep.connect_timeout(), Duration::from_millis(250));
    }

    #[test]
    fn unknown_peer_errors() {
        let eps = TcpNetwork::create(1).unwrap();
        assert!(matches!(
            eps[0].send(ServerId::new(7), Bytes::new()),
            Err(Error::UnknownServer(_))
        ));
        assert!(eps[0].addr_of(ServerId::new(0)).is_ok());
    }

    #[test]
    fn empty_payload_roundtrip() {
        let eps = TcpNetwork::create(2).unwrap();
        eps[0].send(ServerId::new(1), Bytes::new()).unwrap();
        let got = eps[1]
            .recv_timeout(Duration::from_secs(5))
            .unwrap()
            .unwrap();
        assert!(got.bytes.is_empty());
    }
}
