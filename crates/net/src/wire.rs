//! A small, explicit binary codec.
//!
//! All integers are little-endian. Variable-length data (payloads, strings,
//! update lists) is length-prefixed with a `u32`. The codec exists instead
//! of a serialization framework because the paper reasons about *bytes on
//! the wire* — the experiments measure stamp sizes exactly.

use aaa_base::{AgentId, DomainId, DomainServerId, Error, MessageId, Result, ServerId};
use aaa_clocks::{MatrixClock, Stamp, UpdateEntry};
use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Incremental encoder over a growable byte buffer.
#[derive(Debug, Default)]
pub struct Encoder {
    buf: BytesMut,
}

impl Encoder {
    /// Creates an empty encoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Returns `true` if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Finishes encoding, returning the frozen buffer.
    pub fn finish(self) -> Bytes {
        self.buf.freeze()
    }

    /// Writes one byte.
    pub fn u8(&mut self, v: u8) -> &mut Self {
        self.buf.put_u8(v);
        self
    }

    /// Writes a little-endian `u16`.
    pub fn u16(&mut self, v: u16) -> &mut Self {
        self.buf.put_u16_le(v);
        self
    }

    /// Writes a little-endian `u32`.
    pub fn u32(&mut self, v: u32) -> &mut Self {
        self.buf.put_u32_le(v);
        self
    }

    /// Writes a little-endian `u64`.
    pub fn u64(&mut self, v: u64) -> &mut Self {
        self.buf.put_u64_le(v);
        self
    }

    /// Writes a `usize` count as a little-endian `u32`, saturating at
    /// `u32::MAX`.
    ///
    /// Saturation is deliberate: an element count that genuinely exceeds
    /// `u32::MAX` cannot be represented on the wire at all, and a saturated
    /// prefix makes the decoder fail loudly (`need` sees fewer bytes than
    /// claimed) instead of silently truncating to a *plausible* small value
    /// the way `as u32` would.
    pub fn count(&mut self, n: usize) -> &mut Self {
        self.u32(u32::try_from(n).unwrap_or(u32::MAX))
    }

    /// Writes a length-prefixed byte slice.
    pub fn bytes(&mut self, v: &[u8]) -> &mut Self {
        self.count(v.len());
        self.buf.put_slice(v);
        self
    }

    /// Writes a length-prefixed UTF-8 string.
    pub fn string(&mut self, v: &str) -> &mut Self {
        self.bytes(v.as_bytes())
    }

    /// Writes a server id.
    pub fn server_id(&mut self, v: ServerId) -> &mut Self {
        self.u16(v.as_u16())
    }

    /// Writes a domain id.
    pub fn domain_id(&mut self, v: DomainId) -> &mut Self {
        self.u16(v.as_u16())
    }

    /// Writes an agent id.
    pub fn agent_id(&mut self, v: AgentId) -> &mut Self {
        self.server_id(v.server());
        self.u32(v.local())
    }

    /// Writes a message id.
    pub fn message_id(&mut self, v: MessageId) -> &mut Self {
        self.server_id(v.origin());
        self.u64(v.seq())
    }

    /// Writes an optional stamp: tag 2 for "no stamp" (unordered QoS),
    /// otherwise as [`Encoder::stamp`].
    pub fn stamp_opt(&mut self, v: &Option<Stamp>) -> &mut Self {
        match v {
            Some(stamp) => self.stamp(stamp),
            None => self.u8(2),
        }
    }

    /// Writes a stamp: a 1-byte tag, then either the full matrix
    /// (width + cells), an update list (count + triples; delta and hybrid
    /// stamps differ only in tag), the reduced row/column vectors plus
    /// their correction list, or — for the zero-byte group-commit
    /// continuation — nothing at all.
    pub fn stamp(&mut self, v: &Stamp) -> &mut Self {
        match v {
            Stamp::Full(m) => {
                self.u8(0);
                // Widths are bounded by the u16 server-id space, far below
                // u32::MAX; `count` keeps the narrowing checked anyway.
                self.count(m.width());
                for row in 0..m.width() {
                    for col in 0..m.width() {
                        self.u64(m.get(row, col));
                    }
                }
            }
            Stamp::Delta(entries) => {
                self.u8(1);
                self.count(entries.len());
                for e in entries {
                    self.u16(e.row);
                    self.u16(e.col);
                    self.u64(e.value);
                }
            }
            // Tag 2 is taken by "no stamp" in `stamp_opt`.
            Stamp::GroupNext => {
                self.u8(3);
            }
            Stamp::Reduced { row, col, extra } => {
                self.u8(4);
                // The row and column are always domain-width, so one count
                // covers both dense vectors.
                self.count(row.len());
                debug_assert_eq!(row.len(), col.len());
                for v in row {
                    self.u64(*v);
                }
                for v in col {
                    self.u64(*v);
                }
                self.count(extra.len());
                for e in extra {
                    self.u16(e.row);
                    self.u16(e.col);
                    self.u64(e.value);
                }
            }
            Stamp::Hybrid(entries) => {
                self.u8(5);
                self.count(entries.len());
                for e in entries {
                    self.u16(e.row);
                    self.u16(e.col);
                    self.u64(e.value);
                }
            }
        }
        self
    }
}

/// Incremental decoder over a byte buffer.
#[derive(Debug)]
pub struct Decoder {
    buf: Bytes,
}

impl Decoder {
    /// Creates a decoder over `buf`.
    pub fn new(buf: Bytes) -> Self {
        Decoder { buf }
    }

    /// Bytes remaining.
    pub fn remaining(&self) -> usize {
        self.buf.remaining()
    }

    fn need(&self, n: usize, what: &str) -> Result<()> {
        if self.buf.remaining() < n {
            Err(Error::Codec(format!(
                "truncated frame: need {n} bytes for {what}, have {}",
                self.buf.remaining()
            )))
        } else {
            Ok(())
        }
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8> {
        self.need(1, "u8")?;
        Ok(self.buf.get_u8())
    }

    /// Reads a little-endian `u16`.
    pub fn u16(&mut self) -> Result<u16> {
        self.need(2, "u16")?;
        Ok(self.buf.get_u16_le())
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32> {
        self.need(4, "u32")?;
        Ok(self.buf.get_u32_le())
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64> {
        self.need(8, "u64")?;
        Ok(self.buf.get_u64_le())
    }

    /// Reads a length-prefixed byte string.
    pub fn bytes(&mut self) -> Result<Bytes> {
        let len = self.u32()? as usize;
        self.need(len, "bytes body")?;
        Ok(self.buf.split_to(len))
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn string(&mut self) -> Result<String> {
        let raw = self.bytes()?;
        String::from_utf8(raw.to_vec())
            .map_err(|e| Error::Codec(format!("invalid utf-8 string: {e}")))
    }

    /// Reads a server id.
    pub fn server_id(&mut self) -> Result<ServerId> {
        Ok(ServerId::new(self.u16()?))
    }

    /// Reads a domain id.
    pub fn domain_id(&mut self) -> Result<DomainId> {
        Ok(DomainId::new(self.u16()?))
    }

    /// Reads a domain-server id.
    pub fn domain_server_id(&mut self) -> Result<DomainServerId> {
        Ok(DomainServerId::new(self.u16()?))
    }

    /// Reads an agent id.
    pub fn agent_id(&mut self) -> Result<AgentId> {
        let server = self.server_id()?;
        let local = self.u32()?;
        Ok(AgentId::new(server, local))
    }

    /// Reads a message id.
    pub fn message_id(&mut self) -> Result<MessageId> {
        let origin = self.server_id()?;
        let seq = self.u64()?;
        Ok(MessageId::new(origin, seq))
    }

    /// Reads an optional stamp written by [`Encoder::stamp_opt`].
    ///
    /// # Errors
    ///
    /// As for [`Decoder::stamp`].
    pub fn stamp_opt(&mut self) -> Result<Option<Stamp>> {
        // Peek is awkward on Bytes; re-dispatch on the tag directly.
        match self.u8()? {
            2 => Ok(None),
            tag => self.stamp_tagged(tag).map(Some),
        }
    }

    /// Reads a stamp written by [`Encoder::stamp`].
    ///
    /// # Errors
    ///
    /// Returns [`Error::Codec`] on truncation, an unknown tag, an absurd
    /// matrix width, or out-of-range delta coordinates.
    pub fn stamp(&mut self) -> Result<Stamp> {
        let tag = self.u8()?;
        self.stamp_tagged(tag)
    }

    fn stamp_tagged(&mut self, tag: u8) -> Result<Stamp> {
        match tag {
            0 => {
                let n = self.u32()? as usize;
                if n == 0 || n > u16::MAX as usize {
                    return Err(Error::Codec(format!("invalid matrix width {n}")));
                }
                self.need(n * n * 8, "matrix cells")?;
                let mut m = MatrixClock::new(n);
                for row in 0..n {
                    for col in 0..n {
                        m.set(row, col, self.buf.get_u64_le());
                    }
                }
                Ok(Stamp::Full(m))
            }
            1 => Ok(Stamp::Delta(self.update_entries()?)),
            3 => Ok(Stamp::GroupNext),
            4 => {
                let n = self.u32()? as usize;
                if n == 0 || n > u16::MAX as usize {
                    return Err(Error::Codec(format!("invalid reduced stamp width {n}")));
                }
                self.need(2 * n * 8, "reduced stamp vectors")?;
                let row = (0..n).map(|_| self.buf.get_u64_le()).collect();
                let col = (0..n).map(|_| self.buf.get_u64_le()).collect();
                let extra = self.update_entries()?;
                Ok(Stamp::Reduced { row, col, extra })
            }
            5 => Ok(Stamp::Hybrid(self.update_entries()?)),
            tag => Err(Error::Codec(format!("unknown stamp tag {tag}"))),
        }
    }

    /// Reads a counted list of modified-entry triples, shared by the delta,
    /// reduced (correction set) and hybrid stamp encodings.
    fn update_entries(&mut self) -> Result<Vec<UpdateEntry>> {
        let count = self.u32()? as usize;
        self.need(count * UpdateEntry::WIRE_LEN, "update entries")?;
        let mut entries = Vec::with_capacity(count);
        for _ in 0..count {
            entries.push(UpdateEntry {
                row: self.buf.get_u16_le(),
                col: self.buf.get_u16_le(),
                value: self.buf.get_u64_le(),
            });
        }
        Ok(entries)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_roundtrip() {
        let mut e = Encoder::new();
        e.u8(7)
            .u16(0xBEEF)
            .u32(0xDEAD_BEEF)
            .u64(u64::MAX)
            .bytes(b"abc")
            .string("caf\u{e9}");
        assert!(!e.is_empty());
        let mut d = Decoder::new(e.finish());
        assert_eq!(d.u8().unwrap(), 7);
        assert_eq!(d.u16().unwrap(), 0xBEEF);
        assert_eq!(d.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(d.u64().unwrap(), u64::MAX);
        assert_eq!(&d.bytes().unwrap()[..], b"abc");
        assert_eq!(d.string().unwrap(), "caf\u{e9}");
        assert_eq!(d.remaining(), 0);
    }

    #[test]
    fn id_roundtrip() {
        let mut e = Encoder::new();
        let agent = AgentId::new(ServerId::new(3), 42);
        let msg = MessageId::new(ServerId::new(9), 1234567);
        e.server_id(ServerId::new(5))
            .domain_id(DomainId::new(2))
            .agent_id(agent)
            .message_id(msg);
        let mut d = Decoder::new(e.finish());
        assert_eq!(d.server_id().unwrap(), ServerId::new(5));
        assert_eq!(d.domain_id().unwrap(), DomainId::new(2));
        assert_eq!(d.agent_id().unwrap(), agent);
        assert_eq!(d.message_id().unwrap(), msg);
    }

    #[test]
    fn full_stamp_roundtrip_and_size() {
        let mut m = MatrixClock::new(4);
        m.set(1, 2, 99);
        m.set(3, 3, 7);
        let stamp = Stamp::Full(m);
        let mut e = Encoder::new();
        e.stamp(&stamp);
        // 1 tag byte + declared encoded length.
        assert_eq!(e.len(), stamp.encoded_len() + 1);
        let decoded = Decoder::new(e.finish()).stamp().unwrap();
        assert_eq!(decoded, stamp);
    }

    #[test]
    fn delta_stamp_roundtrip_and_size() {
        let stamp = Stamp::Delta(vec![
            UpdateEntry {
                row: 0,
                col: 1,
                value: 5,
            },
            UpdateEntry {
                row: 3,
                col: 2,
                value: 11,
            },
        ]);
        let mut e = Encoder::new();
        e.stamp(&stamp);
        assert_eq!(e.len(), stamp.encoded_len() + 1);
        let decoded = Decoder::new(e.finish()).stamp().unwrap();
        assert_eq!(decoded, stamp);
    }

    #[test]
    fn group_next_stamp_is_one_tag_byte() {
        let stamp = Stamp::GroupNext;
        let mut e = Encoder::new();
        e.stamp(&stamp);
        assert_eq!(e.len(), 1, "continuation stamps cost only their tag");
        assert_eq!(e.len(), stamp.encoded_len() + 1);
        let decoded = Decoder::new(e.finish()).stamp().unwrap();
        assert_eq!(decoded, stamp);

        // Also through the optional path.
        let mut e = Encoder::new();
        e.stamp_opt(&Some(Stamp::GroupNext)).stamp_opt(&None);
        let mut d = Decoder::new(e.finish());
        assert_eq!(d.stamp_opt().unwrap(), Some(Stamp::GroupNext));
        assert_eq!(d.stamp_opt().unwrap(), None);
    }

    #[test]
    fn reduced_stamp_roundtrip_and_size() {
        let stamp = Stamp::Reduced {
            row: vec![1, 0, 3],
            col: vec![0, 2, 0],
            extra: vec![UpdateEntry {
                row: 2,
                col: 1,
                value: 9,
            }],
        };
        let mut e = Encoder::new();
        e.stamp(&stamp);
        assert_eq!(e.len(), stamp.encoded_len() + 1);
        let decoded = Decoder::new(e.finish()).stamp().unwrap();
        assert_eq!(decoded, stamp);
    }

    #[test]
    fn hybrid_stamp_roundtrip_and_size() {
        let stamp = Stamp::Hybrid(vec![
            UpdateEntry {
                row: 0,
                col: 1,
                value: 5,
            },
            UpdateEntry {
                row: 4,
                col: 0,
                value: 1,
            },
        ]);
        let mut e = Encoder::new();
        e.stamp(&stamp);
        assert_eq!(e.len(), stamp.encoded_len() + 1);
        let decoded = Decoder::new(e.finish()).stamp().unwrap();
        assert_eq!(decoded, stamp);
        // Hybrid and delta stamps must not decode into each other.
        assert!(decoded.kind() == "Hybrid");
    }

    #[test]
    fn reduced_stamp_rejects_absurd_width() {
        let mut e = Encoder::new();
        e.u8(4).count(0);
        assert!(Decoder::new(e.finish()).stamp().is_err());
    }

    #[test]
    fn truncated_input_errors() {
        let mut e = Encoder::new();
        e.u64(1);
        let mut d = Decoder::new(e.finish());
        // Read the u64 back as two named u32 halves so a decode error here
        // fails the test at the read that broke, instead of being discarded
        // and surfacing three fields later as garbage alignment.
        let lo = d.u32().expect("low half of the u64 is present");
        let hi = d.u32().expect("high half of the u64 is present");
        assert_eq!((lo, hi), (1, 0), "little-endian halves of 1u64");
        assert!(matches!(d.u8(), Err(Error::Codec(_))));

        let mut d = Decoder::new(Bytes::from_static(&[0, 255, 255, 255, 255]));
        assert!(matches!(d.stamp(), Err(Error::Codec(_))));
    }

    #[test]
    fn unknown_stamp_tag_errors() {
        let mut d = Decoder::new(Bytes::from_static(&[9]));
        assert!(matches!(d.stamp(), Err(Error::Codec(_))));
    }

    #[test]
    fn oversized_bytes_length_errors() {
        let mut e = Encoder::new();
        e.u32(1_000_000); // claims a megabyte that is not there
        let mut d = Decoder::new(e.finish());
        assert!(matches!(d.bytes(), Err(Error::Codec(_))));
    }
}
