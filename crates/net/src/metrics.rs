//! Per-link traffic instruments shared by both transports.
//!
//! [`NetMetrics`] is the optional metric bundle of a transport endpoint
//! ([`crate::MemoryEndpoint`], [`crate::TcpEndpoint`]): frames and payload
//! bytes per direction and peer, plus TCP reconnects. Counters are minted
//! eagerly for every peer when a meter is attached — the hot path indexes a
//! `Vec` and performs one relaxed atomic add, no lock, no map lookup.
//!
//! Metric vocabulary (families carry the meter's base labels, for example
//! `server="<id>"`; each sample adds `peer="<id>"`):
//!
//! | name | kind | unit |
//! |---|---|---|
//! | `aaa_net_tx_frames_total` | counter | transport frames |
//! | `aaa_net_tx_bytes_total` | counter | payload bytes |
//! | `aaa_net_rx_frames_total` | counter | transport frames |
//! | `aaa_net_rx_bytes_total` | counter | payload bytes |
//! | `aaa_net_reconnects_total` | counter | re-established connections |

use aaa_base::ServerId;
use aaa_obs::{Counter, Meter};

/// Per-peer traffic counters of one transport endpoint.
#[derive(Debug, Clone)]
pub struct NetMetrics {
    tx_frames: Vec<Counter>,
    tx_bytes: Vec<Counter>,
    rx_frames: Vec<Counter>,
    rx_bytes: Vec<Counter>,
    /// Only minted for connection-oriented transports (TCP).
    reconnects: Option<Vec<Counter>>,
}

fn per_peer(meter: &Meter, peers: usize, name: &'static str, help: &'static str) -> Vec<Counter> {
    (0..peers)
        .map(|p| meter.counter_with(name, help, &[("peer", p.to_string())]))
        .collect()
}

impl NetMetrics {
    /// Mints tx/rx counters toward `peers` servers.
    pub fn new(meter: &Meter, peers: usize) -> Self {
        NetMetrics {
            tx_frames: per_peer(
                meter,
                peers,
                "aaa_net_tx_frames_total",
                "Transport frames sent to a peer",
            ),
            tx_bytes: per_peer(
                meter,
                peers,
                "aaa_net_tx_bytes_total",
                "Transport payload bytes sent to a peer",
            ),
            rx_frames: per_peer(
                meter,
                peers,
                "aaa_net_rx_frames_total",
                "Transport frames received from a peer",
            ),
            rx_bytes: per_peer(
                meter,
                peers,
                "aaa_net_rx_bytes_total",
                "Transport payload bytes received from a peer",
            ),
            reconnects: None,
        }
    }

    /// Like [`NetMetrics::new`], additionally minting reconnect counters
    /// (for connection-oriented transports).
    pub fn with_reconnects(meter: &Meter, peers: usize) -> Self {
        let mut m = NetMetrics::new(meter, peers);
        m.reconnects = Some(per_peer(
            meter,
            peers,
            "aaa_net_reconnects_total",
            "TCP connections re-established to a peer after a failure",
        ));
        m
    }

    /// Records one frame of `len` payload bytes sent to `peer`.
    pub fn on_tx(&self, peer: ServerId, len: usize) {
        if let Some(c) = self.tx_frames.get(peer.as_usize()) {
            c.inc();
            self.tx_bytes[peer.as_usize()].add(len as u64);
        }
    }

    /// Records one frame of `len` payload bytes received from `peer`.
    pub fn on_rx(&self, peer: ServerId, len: usize) {
        if let Some(c) = self.rx_frames.get(peer.as_usize()) {
            c.inc();
            self.rx_bytes[peer.as_usize()].add(len as u64);
        }
    }

    /// Records one re-established connection to `peer`.
    pub fn on_reconnect(&self, peer: ServerId) {
        if let Some(rc) = &self.reconnects {
            if let Some(c) = rc.get(peer.as_usize()) {
                c.inc();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aaa_obs::Registry;

    #[test]
    fn counters_index_by_peer() {
        let registry = Registry::new();
        let meter = Meter::new(&registry).with_label("server", "0");
        let m = NetMetrics::with_reconnects(&meter, 2);
        m.on_tx(ServerId::new(1), 10);
        m.on_tx(ServerId::new(1), 5);
        m.on_rx(ServerId::new(0), 7);
        m.on_reconnect(ServerId::new(1));
        // Out-of-range peers are ignored, not panicked on.
        m.on_tx(ServerId::new(9), 1);
        m.on_reconnect(ServerId::new(9));

        let snap = registry.snapshot();
        let labels = [("server", "0"), ("peer", "1")];
        assert_eq!(snap.counter("aaa_net_tx_frames_total", &labels), Some(2));
        assert_eq!(snap.counter("aaa_net_tx_bytes_total", &labels), Some(15));
        assert_eq!(snap.counter("aaa_net_reconnects_total", &labels), Some(1));
        assert_eq!(
            snap.counter("aaa_net_rx_bytes_total", &[("server", "0"), ("peer", "0")]),
            Some(7)
        );
        assert_eq!(snap.sum_counter("aaa_net_tx_frames_total"), 2);
    }

    #[test]
    fn reconnects_absent_without_flag() {
        let registry = Registry::new();
        let meter = Meter::new(&registry);
        let m = NetMetrics::new(&meter, 2);
        m.on_reconnect(ServerId::new(0));
        assert!(registry
            .snapshot()
            .family("aaa_net_reconnects_total")
            .is_none());
    }
}
