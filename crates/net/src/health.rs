//! Peer failure detection for self-healing runtimes.
//!
//! The paper's AAA channel assumes live causal routers; a real deployment
//! sees peers crash and come back. [`PeerHealth`] is a tiny, lock-free
//! failure detector every transport endpoint can own: consecutive send
//! failures walk a peer [`PeerState::Up`] → [`PeerState::Suspect`] →
//! [`PeerState::Down`], one successful send snaps it back to `Up`. The
//! threaded runtime consults [`PeerHealth::state`] to stop hot-looping
//! retransmissions into a dead peer (it keeps sending low-rate probes so
//! recovery is noticed).
//!
//! Metric vocabulary (optional, minted by [`PeerHealth::attach_meter`];
//! every sample carries `peer="<id>"` beside the meter's base labels):
//!
//! | name | kind | meaning |
//! |---|---|---|
//! | `aaa_net_peer_state` | gauge | 0=down, 1=suspect, 2=up |
//! | `aaa_net_send_retries_total` | counter | send attempts beyond the first |
//! | `aaa_net_backoff_ms` | histogram | backoff slept before a retry |
//! | `aaa_net_peer_recoveries_total` | counter | down→up transitions observed |

use std::sync::atomic::{AtomicU32, AtomicU8, Ordering};

use aaa_base::ServerId;
use aaa_obs::{Counter, Gauge, Histogram, Meter};

/// Consecutive failures after which a peer becomes [`PeerState::Suspect`].
pub const SUSPECT_AFTER: u32 = 1;
/// Consecutive failures after which a peer becomes [`PeerState::Down`].
pub const DOWN_AFTER: u32 = 3;

/// Liveness verdict for one peer, as seen from one endpoint.
///
/// The numeric values are the ones exported on the `aaa_net_peer_state`
/// gauge, chosen so "bigger is healthier".
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum PeerState {
    /// Three or more consecutive send failures: treat as crashed. The
    /// runtime suppresses routine (re)transmissions and only probes.
    Down = 0,
    /// At least one recent send failure; keep transmitting normally.
    Suspect = 1,
    /// No recent failures (the initial state).
    Up = 2,
}

impl PeerState {
    fn from_u8(v: u8) -> PeerState {
        match v {
            0 => PeerState::Down,
            1 => PeerState::Suspect,
            _ => PeerState::Up,
        }
    }
}

#[derive(Debug, Default)]
struct PeerSlot {
    /// Encoded [`PeerState`]; `2` (up) initially.
    state: AtomicU8,
    /// Consecutive failure count since the last success.
    failures: AtomicU32,
}

struct HealthInstruments {
    state: Vec<Gauge>,
    retries: Vec<Counter>,
    recoveries: Vec<Counter>,
    backoff_ms: Histogram,
}

impl std::fmt::Debug for HealthInstruments {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HealthInstruments").finish_non_exhaustive()
    }
}

/// Lock-free per-peer failure detector (see the [module docs](self)).
///
/// All transitions are driven by the owner reporting send outcomes via
/// [`PeerHealth::on_success`] / [`PeerHealth::on_failure`]; reads via
/// [`PeerHealth::state`] are a single relaxed atomic load.
#[derive(Debug)]
pub struct PeerHealth {
    slots: Vec<PeerSlot>,
    instruments: Option<HealthInstruments>,
}

impl PeerHealth {
    /// A detector tracking `peers` servers, all initially [`PeerState::Up`].
    #[must_use]
    pub fn new(peers: usize) -> Self {
        let slots = (0..peers)
            .map(|_| PeerSlot {
                state: AtomicU8::new(PeerState::Up as u8),
                failures: AtomicU32::new(0),
            })
            .collect();
        PeerHealth {
            slots,
            instruments: None,
        }
    }

    /// Number of peers tracked.
    #[must_use]
    pub fn peers(&self) -> usize {
        self.slots.len()
    }

    /// Mints the `aaa_net_peer_state` / `aaa_net_send_retries_total` /
    /// `aaa_net_backoff_ms` / `aaa_net_peer_recoveries_total` instruments
    /// on `meter` (one labelled series per peer) and starts updating them.
    pub fn attach_meter(&mut self, meter: &Meter) {
        let state: Vec<Gauge> = (0..self.slots.len())
            .map(|p| {
                meter.with_label("peer", p.to_string()).gauge(
                    "aaa_net_peer_state",
                    "Failure-detector verdict per peer (0=down, 1=suspect, 2=up)",
                )
            })
            .collect();
        for (g, slot) in state.iter().zip(&self.slots) {
            g.set(i64::from(slot.state.load(Ordering::Relaxed)));
        }
        let retries = (0..self.slots.len())
            .map(|p| {
                meter.counter_with(
                    "aaa_net_send_retries_total",
                    "Transport send attempts beyond the first, per peer",
                    &[("peer", p.to_string())],
                )
            })
            .collect();
        let recoveries = (0..self.slots.len())
            .map(|p| {
                meter.counter_with(
                    "aaa_net_peer_recoveries_total",
                    "Peer transitions from down back to up",
                    &[("peer", p.to_string())],
                )
            })
            .collect();
        let backoff_ms = meter.histogram(
            "aaa_net_backoff_ms",
            "Milliseconds of backoff slept before a send retry",
            &[1, 2, 5, 10, 20, 40, 80],
        );
        self.instruments = Some(HealthInstruments {
            state,
            retries,
            recoveries,
            backoff_ms,
        });
    }

    /// Current verdict for `peer`. Unknown peers read as [`PeerState::Up`]
    /// (the detector never blocks traffic it knows nothing about).
    #[must_use]
    pub fn state(&self, peer: ServerId) -> PeerState {
        self.slots.get(peer.as_usize()).map_or(PeerState::Up, |s| {
            PeerState::from_u8(s.state.load(Ordering::Relaxed))
        })
    }

    /// Records a successful send to `peer`: resets the failure streak and
    /// snaps the verdict back to [`PeerState::Up`] (counting a recovery if
    /// the peer was [`PeerState::Down`]).
    pub fn on_success(&self, peer: ServerId) {
        let Some(slot) = self.slots.get(peer.as_usize()) else {
            return;
        };
        slot.failures.store(0, Ordering::Relaxed);
        // Single-writer: only the thread driving sends to `peer` mutates
        // this slot (per-link FIFO pins a peer's traffic to one socket
        // writer); other threads only read an advisory verdict, so no
        // ordering-based publication is needed.
        // audit:allow(atomic-protocol)
        let prev = slot.state.swap(PeerState::Up as u8, Ordering::Relaxed);
        if prev != PeerState::Up as u8 {
            self.export_state(peer, PeerState::Up);
            if prev == PeerState::Down as u8 {
                if let Some(ins) = &self.instruments {
                    if let Some(c) = ins.recoveries.get(peer.as_usize()) {
                        c.inc();
                    }
                }
            }
        }
    }

    /// Records a failed send to `peer`: bumps the consecutive-failure
    /// streak and degrades the verdict (`Up` → `Suspect` at
    /// [`SUSPECT_AFTER`], → `Down` at [`DOWN_AFTER`]). Returns the new
    /// verdict.
    pub fn on_failure(&self, peer: ServerId) -> PeerState {
        let Some(slot) = self.slots.get(peer.as_usize()) else {
            return PeerState::Up;
        };
        let streak = slot
            .failures
            .fetch_add(1, Ordering::Relaxed)
            .saturating_add(1);
        let next = if streak >= DOWN_AFTER {
            PeerState::Down
        } else if streak >= SUSPECT_AFTER {
            PeerState::Suspect
        } else {
            PeerState::Up
        };
        // Single-writer, as in on_success: the failure streak and verdict
        // for a peer are only written by that peer's sending thread; the
        // verdict is advisory for readers.
        // audit:allow(atomic-protocol)
        let prev = slot.state.swap(next as u8, Ordering::Relaxed);
        if prev != next as u8 {
            self.export_state(peer, next);
        }
        next
    }

    /// Records one retry attempt toward `peer` that slept `backoff_ms`
    /// before retransmitting (feeds `aaa_net_send_retries_total` and
    /// `aaa_net_backoff_ms`).
    pub fn on_retry(&self, peer: ServerId, backoff_ms: u64) {
        if let Some(ins) = &self.instruments {
            if let Some(c) = ins.retries.get(peer.as_usize()) {
                c.inc();
            }
            ins.backoff_ms.observe(backoff_ms);
        }
    }

    fn export_state(&self, peer: ServerId, state: PeerState) {
        if let Some(ins) = &self.instruments {
            if let Some(g) = ins.state.get(peer.as_usize()) {
                g.set(i64::from(state as u8));
            }
        }
    }
}

/// Deterministic backoff schedule for send retries: capped exponential
/// with a small deterministic "jitter" derived from `(me, to, attempt)` —
/// no wall clock, no OS entropy, so chaos tests replay identically.
///
/// `attempt` is 1-based (the first *retry* is attempt 1). Returns the
/// number of milliseconds to sleep before that retry.
#[must_use]
pub fn retry_backoff_ms(me: ServerId, to: ServerId, attempt: u32) -> u64 {
    const BASE_MS: u64 = 5;
    const CAP_MS: u64 = 40;
    let exp = attempt.saturating_sub(1).min(8);
    let base = BASE_MS.saturating_mul(1_u64 << exp).min(CAP_MS);
    // SplitMix64-style avalanche of the (me, to, attempt) triple.
    let mut z = (me.as_usize() as u64)
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(to.as_usize() as u64)
        .wrapping_mul(0xbf58_476d_1ce4_e5b9)
        .wrapping_add(u64::from(attempt));
    z ^= z >> 27;
    z = z.wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^= z >> 31;
    base + z % (base / 2 + 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use aaa_obs::Registry;

    #[test]
    fn transitions_up_suspect_down_and_back() {
        let h = PeerHealth::new(2);
        let p = ServerId::new(1);
        assert_eq!(h.state(p), PeerState::Up);
        assert_eq!(h.on_failure(p), PeerState::Suspect);
        assert_eq!(h.on_failure(p), PeerState::Suspect);
        assert_eq!(h.on_failure(p), PeerState::Down);
        assert_eq!(h.state(p), PeerState::Down);
        // Other peers are unaffected.
        assert_eq!(h.state(ServerId::new(0)), PeerState::Up);
        h.on_success(p);
        assert_eq!(h.state(p), PeerState::Up);
    }

    #[test]
    fn metrics_track_state_and_recoveries() {
        let registry = Registry::new();
        let meter = Meter::new(&registry).with_label("server", "0");
        let mut h = PeerHealth::new(2);
        h.attach_meter(&meter);
        let p = ServerId::new(1);
        let labels = [("server", "0"), ("peer", "1")];
        assert_eq!(
            registry.snapshot().gauge("aaa_net_peer_state", &labels),
            Some(2)
        );
        for _ in 0..3 {
            h.on_failure(p);
        }
        assert_eq!(
            registry.snapshot().gauge("aaa_net_peer_state", &labels),
            Some(0)
        );
        h.on_retry(p, 7);
        h.on_success(p);
        let snap = registry.snapshot();
        assert_eq!(snap.gauge("aaa_net_peer_state", &labels), Some(2));
        assert_eq!(
            snap.counter("aaa_net_peer_recoveries_total", &labels),
            Some(1)
        );
        assert_eq!(snap.counter("aaa_net_send_retries_total", &labels), Some(1));
    }

    #[test]
    fn unknown_peers_are_up_and_ignored() {
        let h = PeerHealth::new(1);
        let ghost = ServerId::new(9);
        assert_eq!(h.state(ghost), PeerState::Up);
        assert_eq!(h.on_failure(ghost), PeerState::Up);
        h.on_success(ghost);
        h.on_retry(ghost, 1);
    }

    #[test]
    fn backoff_is_deterministic_capped_and_grows() {
        let a = ServerId::new(0);
        let b = ServerId::new(1);
        for attempt in 1..10 {
            assert_eq!(
                retry_backoff_ms(a, b, attempt),
                retry_backoff_ms(a, b, attempt),
                "same inputs, same backoff"
            );
            // base ≤ 40, jitter ≤ base/2 → hard ceiling of 60 ms.
            assert!(retry_backoff_ms(a, b, attempt) <= 60);
        }
        assert!(retry_backoff_ms(a, b, 1) < retry_backoff_ms(a, b, 4));
    }
}
