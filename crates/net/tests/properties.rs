//! Property-based tests for the wire codec and the reliable link.

use aaa_base::{AgentId, DomainId, MessageId, ServerId, VDuration, VTime};
use aaa_clocks::{MatrixClock, Stamp, UpdateEntry};
use aaa_net::link::Datagram;
use aaa_net::{LinkFrame, LinkReceiver, LinkSender, WireMessage};
use bytes::Bytes;
use proptest::prelude::*;

fn arb_stamp() -> impl Strategy<Value = Option<Stamp>> {
    prop_oneof![
        Just(None),
        (1usize..8, prop::collection::vec(0u64..100, 0..64)).prop_map(|(n, cells)| {
            let mut m = MatrixClock::new(n);
            for (k, v) in cells.into_iter().enumerate() {
                m.set(k / n % n, k % n, v);
            }
            Some(Stamp::Full(m))
        }),
        prop::collection::vec((0u16..64, 0u16..64, 0u64..1000), 0..20).prop_map(|es| {
            Some(Stamp::Delta(
                es.into_iter()
                    .map(|(row, col, value)| UpdateEntry { row, col, value })
                    .collect(),
            ))
        }),
    ]
}

fn arb_message() -> impl Strategy<Value = WireMessage> {
    (
        0u16..100,
        0u64..1_000_000,
        (0u16..100, 0u32..50),
        (0u16..100, 0u32..50),
        0u16..100,
        0u16..100,
        0u16..20,
        arb_stamp(),
        "[a-z]{0,12}",
        prop::collection::vec(any::<u8>(), 0..200),
    )
        .prop_map(
            |(origin, seq, from, to, src, dest, domain, stamp, kind, body)| WireMessage {
                id: MessageId::new(ServerId::new(origin), seq),
                from_agent: AgentId::new(ServerId::new(from.0), from.1),
                to_agent: AgentId::new(ServerId::new(to.0), to.1),
                src_server: ServerId::new(src),
                dest_server: ServerId::new(dest),
                domain: DomainId::new(domain),
                stamp,
                kind,
                body: Bytes::from(body),
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Wire messages round-trip exactly through the codec.
    #[test]
    fn wire_message_roundtrip(msg in arb_message()) {
        let decoded = WireMessage::decode(msg.encode()).expect("decodes");
        prop_assert_eq!(decoded, msg);
    }

    /// Datagrams round-trip exactly.
    #[test]
    fn datagram_roundtrip(seq in 0u64..u64::MAX, payload in prop::collection::vec(any::<u8>(), 0..300)) {
        let d = Datagram::Data(LinkFrame { seq, payload: Bytes::from(payload) });
        prop_assert_eq!(Datagram::decode(d.encode()).expect("decodes"), d);
        let a = Datagram::Ack { cum_seq: seq };
        prop_assert_eq!(Datagram::decode(a.encode()).expect("decodes"), a);
    }

    /// Truncating an encoded message anywhere never panics — it errors.
    #[test]
    fn truncated_messages_error_cleanly(msg in arb_message(), cut in 0usize..100) {
        let bytes = msg.encode();
        prop_assume!(!bytes.is_empty());
        let cut = cut % bytes.len();
        let res = WireMessage::decode(bytes.slice(0..cut));
        prop_assert!(res.is_err());
    }

    /// Under any adversarial schedule of loss, duplication and reordering,
    /// the reliable link delivers exactly the sent sequence, in order.
    ///
    /// Schedule encoding: each sent frame gets a list of "transmission
    /// attempts"; each attempt is delivered or lost; delivered attempts
    /// are processed in an order chosen by the permutation seed.
    #[test]
    fn link_is_exactly_once_fifo(
        payloads in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..20), 1..30),
        loss_pattern in prop::collection::vec(any::<bool>(), 1..30),
        shuffle in any::<u64>(),
    ) {
        let rto = VDuration::from_millis(10);
        let mut tx = LinkSender::with_rto(rto);
        let mut rx = LinkReceiver::new();
        let mut now = VTime::ZERO;

        // First transmissions, some lost.
        let mut in_flight: Vec<LinkFrame> = Vec::new();
        for (i, p) in payloads.iter().enumerate() {
            let frame = tx.send(Bytes::from(p.clone()), now);
            if !loss_pattern[i % loss_pattern.len()] {
                in_flight.push(frame);
            }
        }

        // Deterministic shuffle of the surviving first attempts.
        let mut order: Vec<usize> = (0..in_flight.len()).collect();
        let mut state = shuffle | 1;
        for i in (1..order.len()).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            order.swap(i, (state >> 33) as usize % (i + 1));
        }

        let mut delivered: Vec<Bytes> = Vec::new();
        for &i in &order {
            let out = rx.on_frame(in_flight[i].clone());
            delivered.extend(out.delivered);
            if let Some(a) = out.ack {
                tx.on_ack(a);
            }
        }

        // Retransmission rounds until everything is through.
        for _ in 0..payloads.len() + 2 {
            now += VDuration::from_millis(20);
            for frame in tx.due_retransmissions(now) {
                let out = rx.on_frame(frame);
                delivered.extend(out.delivered);
                if let Some(a) = out.ack {
                    tx.on_ack(a);
                }
            }
        }

        prop_assert_eq!(tx.in_flight(), 0, "all frames must be acknowledged");
        let expected: Vec<Bytes> = payloads.into_iter().map(Bytes::from).collect();
        prop_assert_eq!(delivered, expected, "exactly-once FIFO delivery");
    }

    /// Duplicated frames (e.g. spurious retransmissions) never produce
    /// duplicate deliveries.
    #[test]
    fn duplicates_never_deliver_twice(
        count in 1usize..20,
        dup_factor in 2usize..4,
    ) {
        let mut tx = LinkSender::new();
        let mut rx = LinkReceiver::new();
        let mut delivered = 0usize;
        for i in 0..count {
            let frame = tx.send(Bytes::from(vec![i as u8]), VTime::ZERO);
            for _ in 0..dup_factor {
                delivered += rx.on_frame(frame.clone()).delivered.len();
            }
        }
        prop_assert_eq!(delivered, count);
    }
}
