//! Virtual time for the discrete-event simulator.
//!
//! The performance figures of the paper measure wall-clock milliseconds on a
//! physical testbed. Our reproduction replays the same protocol inside a
//! discrete-event simulator; [`VTime`] is the simulator's clock. The unit is
//! the *microsecond*, which gives enough resolution for the cost model while
//! keeping arithmetic in plain `u64`.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

use serde::{Deserialize, Serialize};

/// A point in virtual time, in microseconds since simulation start.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct VTime(u64);

/// A span of virtual time, in microseconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Duration(u64);

impl VTime {
    /// The origin of virtual time.
    pub const ZERO: VTime = VTime(0);

    /// Creates a time point from raw microseconds.
    pub const fn from_micros(us: u64) -> Self {
        VTime(us)
    }

    /// Returns the raw number of microseconds since the origin.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Returns the time as fractional milliseconds (used when printing
    /// experiment tables in the paper's unit).
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Duration elapsed since `earlier`.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is later than `self`.
    pub fn since(self, earlier: VTime) -> Duration {
        Duration(
            self.0
                .checked_sub(earlier.0)
                .expect("`earlier` must not be later than `self`"),
        )
    }
}

impl Duration {
    /// The zero-length duration.
    pub const ZERO: Duration = Duration(0);

    /// Creates a duration from raw microseconds.
    pub const fn from_micros(us: u64) -> Self {
        Duration(us)
    }

    /// Creates a duration from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        Duration(ms * 1_000)
    }

    /// Returns the raw number of microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Returns the duration as fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Saturating duration addition.
    pub fn saturating_add(self, other: Duration) -> Duration {
        Duration(self.0.saturating_add(other.0))
    }

    /// Scales the duration by an integer factor.
    pub fn scale(self, factor: u64) -> Duration {
        Duration(self.0 * factor)
    }
}

impl Add<Duration> for VTime {
    type Output = VTime;

    fn add(self, d: Duration) -> VTime {
        VTime(self.0 + d.0)
    }
}

impl AddAssign<Duration> for VTime {
    fn add_assign(&mut self, d: Duration) {
        self.0 += d.0;
    }
}

impl Add for Duration {
    type Output = Duration;

    fn add(self, other: Duration) -> Duration {
        Duration(self.0 + other.0)
    }
}

impl AddAssign for Duration {
    fn add_assign(&mut self, other: Duration) {
        self.0 += other.0;
    }
}

impl Sub for VTime {
    type Output = Duration;

    fn sub(self, other: VTime) -> Duration {
        self.since(other)
    }
}

impl fmt::Display for VTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.as_millis_f64())
    }
}

impl fmt::Display for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.as_millis_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let t = VTime::ZERO + Duration::from_millis(2);
        assert_eq!(t.as_micros(), 2_000);
        let t2 = t + Duration::from_micros(500);
        assert_eq!((t2 - t).as_micros(), 500);
        assert_eq!(t2.since(VTime::ZERO).as_micros(), 2_500);
    }

    #[test]
    fn display_in_millis() {
        assert_eq!(VTime::from_micros(1_500).to_string(), "1.500ms");
        assert_eq!(Duration::from_micros(250).to_string(), "0.250ms");
    }

    #[test]
    #[should_panic(expected = "`earlier` must not be later")]
    fn since_panics_on_inverted_order() {
        let _ = VTime::ZERO.since(VTime::from_micros(1));
    }

    #[test]
    fn scale_and_saturating_add() {
        let d = Duration::from_micros(3).scale(4);
        assert_eq!(d.as_micros(), 12);
        let big = Duration::from_micros(u64::MAX);
        assert_eq!(big.saturating_add(d).as_micros(), u64::MAX);
    }

    #[test]
    fn ordering() {
        assert!(VTime::from_micros(1) < VTime::from_micros(2));
        assert!(Duration::from_millis(1) > Duration::from_micros(999));
    }
}
