//! The [`Absorb`] trait: merging per-step statistics into accumulators.
//!
//! Both runtimes drain per-step counter structs out of the sans-IO cores
//! and fold them into cumulative totals (`ChannelStats`, `StepStats`, …).
//! `Absorb` is the common vocabulary for that fold, so generic experiment
//! code can accumulate any of them uniformly.

/// A statistics bundle that can merge another instance into itself.
///
/// Implementations add every counter of `other` onto `self`; absorbing a
/// default-constructed value must be a no-op.
///
/// # Examples
///
/// ```
/// use aaa_base::Absorb;
///
/// #[derive(Default)]
/// struct Hits {
///     n: u64,
/// }
///
/// impl Absorb for Hits {
///     fn absorb(&mut self, other: Hits) {
///         self.n += other.n;
///     }
/// }
///
/// let mut total = Hits::default();
/// total.absorb(Hits { n: 3 });
/// total.absorb(Hits { n: 4 });
/// assert_eq!(total.n, 7);
/// ```
pub trait Absorb {
    /// Adds `other` into `self`.
    fn absorb(&mut self, other: Self);
}
