//! Strongly-typed identifiers.
//!
//! The paper distinguishes two namespaces for servers (§5): the *global*
//! identifier used by application agents (here [`ServerId`]) and the
//! *per-domain* identifier used by the causal-ordering machinery (here
//! [`DomainServerId`]). Keeping them as distinct newtypes makes it impossible
//! to index a domain matrix clock with a global identifier by accident.

use std::fmt;

use serde::{Deserialize, Serialize};

macro_rules! u16_id {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default,
            Serialize, Deserialize,
        )]
        pub struct $name(u16);

        impl $name {
            /// Creates an identifier from its raw numeric value.
            pub const fn new(raw: u16) -> Self {
                Self(raw)
            }

            /// Returns the raw numeric value.
            pub const fn as_u16(self) -> u16 {
                self.0
            }

            /// Returns the raw value widened to `usize`, convenient for
            /// indexing vectors and matrices.
            pub const fn as_usize(self) -> usize {
                self.0 as usize
            }
        }

        impl From<u16> for $name {
            fn from(raw: u16) -> Self {
                Self(raw)
            }
        }

        impl From<$name> for u16 {
            fn from(id: $name) -> u16 {
                id.0
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

u16_id!(
    /// Global identifier of an agent server, unique across the whole MOM.
    ///
    /// This is the identifier application-level agents see; they are unaware
    /// of the domain decomposition (§5 of the paper).
    ServerId,
    "S"
);

u16_id!(
    /// Identifier of a domain of causality.
    DomainId,
    "D"
);

u16_id!(
    /// Identifier of a server *within one domain*.
    ///
    /// Matrix clocks are indexed by `DomainServerId`, never by [`ServerId`];
    /// the per-domain `id_table` translates between the two.
    DomainServerId,
    "d"
);

/// Identifier of an agent: the server hosting it plus a server-local index.
///
/// Agents are the persistent reactive objects of the AAA programming model
/// (§3). Their names are global and stable across the life of the system.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct AgentId {
    server: ServerId,
    local: u32,
}

impl AgentId {
    /// Creates an agent identifier hosted on `server` with server-local
    /// index `local`.
    pub const fn new(server: ServerId, local: u32) -> Self {
        Self { server, local }
    }

    /// The server hosting the agent.
    pub const fn server(self) -> ServerId {
        self.server
    }

    /// The server-local index of the agent.
    pub const fn local(self) -> u32 {
        self.local
    }
}

impl fmt::Display for AgentId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}#{}", self.server, self.local)
    }
}

/// Globally unique message identifier: originating server plus a
/// per-originator sequence number.
///
/// Used for duplicate suppression in the reliable link layer and for
/// correlating entries in recorded traces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct MessageId {
    origin: ServerId,
    seq: u64,
}

impl MessageId {
    /// Creates a message identifier.
    pub const fn new(origin: ServerId, seq: u64) -> Self {
        Self { origin, seq }
    }

    /// The server that created the message.
    pub const fn origin(self) -> ServerId {
        self.origin
    }

    /// The per-origin sequence number.
    pub const fn seq(self) -> u64 {
        self.seq
    }
}

impl fmt::Display for MessageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "m{}:{}", self.origin.as_u16(), self.seq)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn server_id_roundtrip() {
        let s = ServerId::new(42);
        assert_eq!(s.as_u16(), 42);
        assert_eq!(s.as_usize(), 42);
        assert_eq!(u16::from(s), 42);
        assert_eq!(ServerId::from(42u16), s);
    }

    #[test]
    fn display_formats() {
        assert_eq!(ServerId::new(7).to_string(), "S7");
        assert_eq!(DomainId::new(2).to_string(), "D2");
        assert_eq!(DomainServerId::new(0).to_string(), "d0");
        assert_eq!(AgentId::new(ServerId::new(1), 4).to_string(), "S1#4");
        assert_eq!(MessageId::new(ServerId::new(3), 9).to_string(), "m3:9");
    }

    #[test]
    fn ids_are_ordered() {
        assert!(ServerId::new(1) < ServerId::new(2));
        let a = MessageId::new(ServerId::new(0), 1);
        let b = MessageId::new(ServerId::new(0), 2);
        assert!(a < b);
    }

    #[test]
    fn distinct_newtypes_do_not_compare() {
        // Compile-time property: this test documents that ServerId and
        // DomainServerId are distinct types; equality across them does not
        // type-check, which is the point of the newtypes.
        let s = ServerId::new(1);
        let d = DomainServerId::new(1);
        assert_eq!(s.as_u16(), d.as_u16());
    }

    #[test]
    fn agent_id_accessors() {
        let a = AgentId::new(ServerId::new(5), 17);
        assert_eq!(a.server(), ServerId::new(5));
        assert_eq!(a.local(), 17);
    }

    #[test]
    fn message_id_accessors() {
        let m = MessageId::new(ServerId::new(8), 123);
        assert_eq!(m.origin(), ServerId::new(8));
        assert_eq!(m.seq(), 123);
    }

    #[test]
    fn hash_and_default_work() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(ServerId::default());
        set.insert(ServerId::new(0));
        assert_eq!(set.len(), 1);
    }
}
