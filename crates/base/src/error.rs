//! The common error type shared across the workspace.

use std::fmt;

use crate::{DomainId, ServerId};

/// Convenience alias used throughout the workspace.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors produced by the middleware crates.
///
/// A single error enum is shared by all crates in the workspace so that the
/// top-level API surfaces one coherent type; variants are grouped by the
/// subsystem that produces them.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Error {
    /// A referenced server does not exist in the configuration.
    UnknownServer(ServerId),
    /// A referenced domain does not exist in the configuration.
    UnknownDomain(DomainId),
    /// The server is not a member of the given domain.
    NotInDomain {
        /// The server that was expected to be a member.
        server: ServerId,
        /// The domain it is not a member of.
        domain: DomainId,
    },
    /// The domain interconnection graph contains a cycle, violating the
    /// precondition (P2) of the paper's main theorem.
    CyclicDomainGraph {
        /// A witness cycle, as a sequence of domain identifiers.
        cycle: Vec<DomainId>,
    },
    /// The server interconnection graph is not connected: no route exists
    /// between the two servers.
    NoRoute {
        /// Route source.
        from: ServerId,
        /// Route destination.
        to: ServerId,
    },
    /// A topology was structurally invalid (empty domain, duplicate member,
    /// out-of-range identifier, ...). The string describes the defect.
    InvalidTopology(String),
    /// Decoding a wire frame failed. The string describes the defect.
    Codec(String),
    /// An operation was attempted on a closed or crashed component.
    Closed(&'static str),
    /// Stable storage failed. The string describes the failure.
    Storage(String),
    /// A configuration value was invalid. The string describes the defect.
    Config(String),
    /// The server's outstanding-message budget is exhausted: accepting more
    /// client sends would grow the postponed/retransmit queues without
    /// bound. Retry after in-flight traffic drains (or raise the cap).
    Backpressure,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::UnknownServer(s) => write!(f, "unknown server {s}"),
            Error::UnknownDomain(d) => write!(f, "unknown domain {d}"),
            Error::NotInDomain { server, domain } => {
                write!(f, "server {server} is not a member of domain {domain}")
            }
            Error::CyclicDomainGraph { cycle } => {
                write!(f, "domain interconnection graph has a cycle: ")?;
                for (i, d) in cycle.iter().enumerate() {
                    if i > 0 {
                        write!(f, " -> ")?;
                    }
                    write!(f, "{d}")?;
                }
                Ok(())
            }
            Error::NoRoute { from, to } => {
                write!(f, "no route from {from} to {to}")
            }
            Error::InvalidTopology(why) => write!(f, "invalid topology: {why}"),
            Error::Codec(why) => write!(f, "codec error: {why}"),
            Error::Closed(what) => write!(f, "{what} is closed"),
            Error::Storage(why) => write!(f, "storage error: {why}"),
            Error::Config(why) => write!(f, "invalid configuration: {why}"),
            Error::Backpressure => {
                write!(f, "backpressure: outstanding-message budget exhausted")
            }
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_concise() {
        let e = Error::UnknownServer(ServerId::new(9));
        assert_eq!(e.to_string(), "unknown server S9");
        let e = Error::NoRoute {
            from: ServerId::new(1),
            to: ServerId::new(2),
        };
        assert_eq!(e.to_string(), "no route from S1 to S2");
    }

    #[test]
    fn cycle_display_lists_domains() {
        let e = Error::CyclicDomainGraph {
            cycle: vec![DomainId::new(0), DomainId::new(1), DomainId::new(0)],
        };
        assert_eq!(
            e.to_string(),
            "domain interconnection graph has a cycle: D0 -> D1 -> D0"
        );
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync + 'static>() {}
        assert_send_sync::<Error>();
    }

    #[test]
    fn error_trait_object() {
        let e: Box<dyn std::error::Error> = Box::new(Error::Closed("channel"));
        assert_eq!(e.to_string(), "channel is closed");
    }
}
