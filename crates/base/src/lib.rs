#![warn(missing_docs)]
#![forbid(unsafe_code)]

//! Shared primitive types for the AAA causal middleware.
//!
//! This crate holds the small vocabulary used by every other crate in the
//! workspace: strongly-typed identifiers ([`ServerId`], [`DomainId`],
//! [`DomainServerId`], [`AgentId`], [`MessageId`]), the common error type
//! ([`Error`]), and the virtual-time representation ([`VTime`]) used by the
//! discrete-event simulator.
//!
//! # Examples
//!
//! ```
//! use aaa_base::{ServerId, DomainId};
//!
//! let s = ServerId::new(3);
//! let d = DomainId::new(0);
//! assert_eq!(s.as_u16(), 3);
//! assert_eq!(format!("{d}"), "D0");
//! ```

mod error;
mod id;
mod stats;
mod vtime;

pub use error::{Error, Result};
pub use id::{AgentId, DomainId, DomainServerId, MessageId, ServerId};
pub use stats::Absorb;
pub use vtime::{Duration as VDuration, VTime};
