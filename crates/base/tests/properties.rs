//! Property tests for the base types.

use aaa_base::{AgentId, MessageId, ServerId, VDuration, VTime};
use proptest::prelude::*;

proptest! {
    /// VTime arithmetic is consistent: (t + d) - t == d.
    #[test]
    fn vtime_add_then_since(t in 0u64..u64::MAX / 4, d in 0u64..u64::MAX / 4) {
        let start = VTime::from_micros(t);
        let dur = VDuration::from_micros(d);
        let end = start + dur;
        prop_assert_eq!(end - start, dur);
        prop_assert_eq!(end.since(start), dur);
        prop_assert!(end >= start);
    }

    /// Duration addition is commutative and associative.
    #[test]
    fn duration_laws(a in 0u64..u64::MAX / 8, b in 0u64..u64::MAX / 8, c in 0u64..u64::MAX / 8) {
        let (a, b, c) = (
            VDuration::from_micros(a),
            VDuration::from_micros(b),
            VDuration::from_micros(c),
        );
        prop_assert_eq!(a + b, b + a);
        prop_assert_eq!((a + b) + c, a + (b + c));
        prop_assert_eq!(a.saturating_add(b), a + b);
    }

    /// Milliseconds conversion is consistent with microseconds.
    #[test]
    fn millis_micros_consistency(ms in 0u64..(1u64 << 40)) {
        let d = VDuration::from_millis(ms);
        prop_assert_eq!(d.as_micros(), ms * 1_000);
        // f64 has 52 mantissa bits; below 2^40 ms the conversion is exact.
        prop_assert!((d.as_millis_f64() - ms as f64).abs() < 1e-6);
    }

    /// Identifier ordering matches the raw numeric ordering.
    #[test]
    fn id_order_matches_raw(a in 0u16..u16::MAX, b in 0u16..u16::MAX) {
        prop_assert_eq!(ServerId::new(a) < ServerId::new(b), a < b);
        prop_assert_eq!(ServerId::new(a) == ServerId::new(b), a == b);
    }

    /// Message ids order by (origin, seq) lexicographically.
    #[test]
    fn message_id_order(o1 in 0u16..100, s1 in 0u64..1000, o2 in 0u16..100, s2 in 0u64..1000) {
        let a = MessageId::new(ServerId::new(o1), s1);
        let b = MessageId::new(ServerId::new(o2), s2);
        prop_assert_eq!(a < b, (o1, s1) < (o2, s2));
    }

    /// Agent ids expose their parts faithfully.
    #[test]
    fn agent_id_parts(s in 0u16..u16::MAX, l in 0u32..u32::MAX) {
        let a = AgentId::new(ServerId::new(s), l);
        prop_assert_eq!(a.server().as_u16(), s);
        prop_assert_eq!(a.local(), l);
        prop_assert_eq!(a, AgentId::new(ServerId::new(s), l));
    }
}
