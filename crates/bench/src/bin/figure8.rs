//! Figure 8 — broadcast **without** domains of causality.
//!
//! One domain of `n` servers; the main agent on server 0 sends to every
//! other server and waits for all echoes. The paper reports 636 ms at
//! n = 10 growing to 25.3 s at n = 90 — strongly superlinear.

use aaa_bench::{paper, print_table, report_fit, Row};
use aaa_clocks::StampMode;
use aaa_sim::{experiments, CostModel};
use aaa_topology::TopologySpec;

fn main() {
    let rounds = 10;
    let mut rows = Vec::new();
    for (i, &n) in paper::FIG8_N.iter().enumerate() {
        let t = experiments::broadcast(
            TopologySpec::single_domain(n as u16),
            StampMode::Updates,
            CostModel::paper_calibrated(),
            rounds,
        )
        .expect("simulation runs");
        rows.push(Row {
            n,
            paper_ms: Some(paper::FIG8_MS[i]),
            ours_ms: t.avg.as_millis_f64(),
        });
    }
    print_table(
        "Figure 8: broadcast without domains (avg completion time)",
        "ms",
        &rows,
    );
    println!();
    let fit = report_fit(&rows);
    fit.print();
    assert!(
        fit.prefers_quadratic(),
        "figure 8 must reproduce the superlinear shape"
    );
    // Growth factor 10 -> 90 servers: the paper sees ~40x.
    let growth = rows.last().unwrap().ours_ms / rows[0].ours_ms;
    println!(
        "growth 10 -> 90 servers: ours {growth:.1}x, paper {:.1}x",
        paper::FIG8_MS[6] / paper::FIG8_MS[0]
    );
    assert!(
        growth > 10.0,
        "broadcast must grow superlinearly, got {growth:.1}x"
    );
}
