//! Experiment X2 — persistence traffic per message, with vs without
//! domains.
//!
//! §3 motivates the decomposition with two costs: network overload *and*
//! "high disk I/O activity to maintain a persistent image of the matrix on
//! each server". Here we enable real transactional persistence in the
//! simulator and count the bytes each configuration writes per delivered
//! message.

use aaa_base::{AgentId, ServerId};
use aaa_mom::{EchoAgent, Notification, ServerConfig, StampMode};
use aaa_sim::{CostModel, Simulation};
use aaa_topology::TopologySpec;

fn persisted_bytes_per_delivery(spec: TopologySpec) -> f64 {
    let topo = spec.validate().expect("valid topology");
    let config = ServerConfig {
        stamp_mode: StampMode::Updates,
        persist: true,
        ..ServerConfig::default()
    };
    let mut sim = Simulation::new(topo, config, CostModel::zero()).expect("sim builds");
    let servers: Vec<ServerId> = sim.topology().servers().collect();
    for &s in &servers {
        sim.register_agent(s, 1, Box::new(EchoAgent));
    }
    // Ping-pong from server 0 to the farthest server, 20 rounds.
    let target = aaa_sim::experiments::farthest_server(sim.topology()).unwrap();
    for _ in 0..20 {
        sim.client_send(
            AgentId::new(ServerId::new(0), 100),
            AgentId::new(target, 1),
            Notification::signal("ping"),
        );
        sim.run_until_quiet().expect("sim runs");
    }
    let total = sim.total_stats();
    total.disk_bytes as f64 / total.delivered.max(1) as f64
}

fn main() {
    println!("\n## X2: stable-storage bytes per delivered message");
    println!();
    println!("| configuration | disk bytes / delivery |");
    println!("|:---|---:|");
    let mut prev = None;
    for n in [16usize, 36, 64] {
        let flat = persisted_bytes_per_delivery(TopologySpec::single_domain(n as u16));
        let bus = persisted_bytes_per_delivery(aaa_bench::bus_for(n));
        println!("| flat n={n} | {flat:.0} |");
        println!("| bus √n×√n, n={n} | {bus:.0} |");
        assert!(
            bus < flat,
            "domains must shrink the persistent image: {bus} vs {flat} at n={n}"
        );
        if let Some((pf, _pb)) = prev {
            // The flat image grows quadratically; the bus image stays small.
            assert!(flat > pf, "flat persistence must grow with n");
        }
        prev = Some((flat, bus));
    }
    println!();
    println!(
        "The flat MOM journals an O(n²) matrix image on every transaction; \
         with domains each server journals only its domains' O(s²) clocks."
    );
}
