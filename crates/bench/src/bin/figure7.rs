//! Figure 7 — remote unicast **without** domains of causality.
//!
//! One domain of `n` servers; ping-pong between server 0 and a remote
//! server, 100 rounds. The paper reports 61…201 ms for n = 10…50 with a
//! quadratic fit.

use aaa_bench::{paper, print_table, report_fit, Row};
use aaa_clocks::StampMode;
use aaa_sim::{experiments, CostModel};
use aaa_topology::TopologySpec;

fn main() {
    let rounds = 100;
    let mut rows = Vec::new();
    for (i, &n) in paper::FIG7_N.iter().enumerate() {
        let rtt = experiments::remote_unicast_avg_rtt(
            TopologySpec::single_domain(n as u16),
            StampMode::Updates,
            CostModel::paper_calibrated(),
            rounds,
        )
        .expect("simulation runs");
        rows.push(Row {
            n,
            paper_ms: Some(paper::FIG7_MS[i]),
            ours_ms: rtt.as_millis_f64(),
        });
    }
    print_table(
        "Figure 7: remote unicast without domains (avg RTT, 100 sends)",
        "ms",
        &rows,
    );
    println!();
    report_fit(&rows).print();
    assert!(
        report_fit(&rows).prefers_quadratic(),
        "figure 7 must reproduce the quadratic shape"
    );
}
