//! §6.2 — the analytical cost model, checked against the simulator.
//!
//! The paper derives `C ≈ (2d+1)·s²` for a message crossing a domain tree
//! of depth `d` with `s` servers per domain, predicts linear cost for the
//! bus split (`d = 1`, `s ≈ √n`) and logarithmic-but-larger-constant cost
//! for deeper trees. This binary tabulates the analytic predictions and
//! cross-checks the trend against simulated measurements.

use aaa_clocks::StampMode;
use aaa_sim::{experiments, CostModel};
use aaa_topology::cost;
use aaa_topology::TopologySpec;

fn main() {
    println!("\n## §6.2 analytic cost model: C ≈ (2d+1)·s²  (unit: cell ops)");
    println!();
    println!("| n | flat n² | bus 3n | ratio |");
    println!("|---:|---:|---:|---:|");
    for n in [16usize, 64, 144, 400, 1024, 10_000] {
        let flat = cost::flat_message_cost(n);
        let bus = cost::bus_message_cost(n);
        println!(
            "| {n} | {flat} | {bus} | {:.1}x |",
            flat as f64 / bus as f64
        );
    }

    println!();
    println!("### Bus vs deeper trees at fixed domain size s = 6, fanout k = 2");
    println!();
    println!("| depth d | servers n | per-message cost (2d+1)s² | cost per server |");
    println!("|---:|---:|---:|---:|");
    for d in 1..=5usize {
        let n = cost::tree_server_count(d, 2, 6);
        let c = cost::tree_message_cost(d, 6);
        println!("| {d} | {n} | {c} | {:.2} |", c as f64 / n as f64);
    }
    println!();
    println!(
        "Deeper trees reach more servers for the same per-message cost \
         (logarithmic scaling), but each unit of depth adds 2s² of routing \
         work — the paper's K' > K caveat."
    );

    // Simulated cross-check: the analytic ratio flat/bus at n=100 should
    // show up in measured round-trip *causal* cost. Use the zero model so
    // only operation counts matter.
    println!();
    println!("### Simulated cross-check (cell operations per round trip, n = 100)");
    let flat = experiments::remote_unicast(
        TopologySpec::single_domain(100),
        StampMode::Updates,
        CostModel::zero(),
        20,
    )
    .expect("simulation runs");
    let bus = experiments::remote_unicast(
        aaa_bench::bus_for(100),
        StampMode::Updates,
        CostModel::zero(),
        20,
    )
    .expect("simulation runs");
    let flat_ops = flat.stats.cell_ops as f64 / 20.0;
    let bus_ops = bus.stats.cell_ops as f64 / 20.0;
    println!();
    println!("| configuration | measured cell ops / round trip |");
    println!("|:---|---:|");
    println!("| flat (n=100) | {flat_ops:.0} |");
    println!("| bus (√n domains) | {bus_ops:.0} |");
    println!("| measured ratio | {:.1}x |", flat_ops / bus_ops);
    println!(
        "| analytic ratio n²/3n | {:.1}x |",
        cost::flat_message_cost(100) as f64 / cost::bus_message_cost(100) as f64
    );
    assert!(
        flat_ops / bus_ops > 10.0,
        "decomposition must cut cell operations by an order of magnitude"
    );
}
