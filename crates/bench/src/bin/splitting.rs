//! Experiment X4 — automatic domain splitting (the paper's §7 future
//! work, implemented in `aaa_topology::split`).
//!
//! A clustered application (communities with heavy internal and light
//! external traffic) is deployed three ways: one flat domain, a naive
//! uniform bus, and the traffic-aware split. The table compares the §6.2
//! analytic expected cost and the simulated average delivery time of a
//! traffic-shaped workload.

use aaa_clocks::StampMode;
use aaa_sim::{experiments, CostModel};
use aaa_topology::split::{expected_cost, split_by_traffic, HopCost, SplitConfig, TrafficMatrix};
use aaa_topology::TopologySpec;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// `communities` groups of `size` servers; intra-community pair rate
/// `intra`, inter-community pair rate `inter`.
fn clustered_traffic(communities: usize, size: usize, intra: f64, inter: f64) -> TrafficMatrix {
    let n = communities * size;
    let mut t = TrafficMatrix::new(n);
    for i in 0..n {
        for j in 0..n {
            if i == j {
                continue;
            }
            let rate = if i / size == j / size { intra } else { inter };
            t.set(i, j, rate);
        }
    }
    t
}

/// Samples `count` (from, to) pairs with probability proportional to the
/// traffic rates.
fn sample_workload(traffic: &TrafficMatrix, count: usize, seed: u64) -> Vec<(u16, u16)> {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = traffic.len();
    let total = traffic.total();
    let mut out = Vec::with_capacity(count);
    while out.len() < count {
        let mut pick = rng.gen_range(0.0..total);
        'scan: for i in 0..n {
            for j in 0..n {
                if i == j {
                    continue;
                }
                pick -= traffic.get(i, j);
                if pick <= 0.0 {
                    out.push((i as u16, j as u16));
                    break 'scan;
                }
            }
        }
    }
    out
}

fn main() {
    let communities = 4;
    let size = 6;
    let n = communities * size;
    let traffic = clustered_traffic(communities, size, 10.0, 0.2);
    let workload = sample_workload(&traffic, 120, 7);

    let flat = TopologySpec::single_domain(n as u16);
    let bus = aaa_bench::bus_for(n);
    let aware = split_by_traffic(
        &traffic,
        &SplitConfig {
            max_domain_size: size + 1,
        },
    )
    .expect("splitter succeeds");

    println!("\n## X4: automatic domain splitting (4 communities x 6 servers)");
    println!();
    println!("| deployment | domains | analytic cost (rel.) | simulated avg delivery (ms) |");
    println!("|:---|---:|---:|---:|");

    let hop = HopCost::default();
    let mut base_cost = None;
    let mut results = Vec::new();
    for (name, spec) in [
        ("flat (1 domain)", flat),
        ("uniform bus", bus),
        ("traffic-aware split", aware),
    ] {
        let topo = spec.clone().validate().expect("valid");
        let cost = expected_cost(&topo, &traffic, &hop).expect("cost computes");
        let base = *base_cost.get_or_insert(cost);
        let t = experiments::pair_workload_avg_time(
            spec,
            StampMode::Updates,
            CostModel::paper_calibrated(),
            &workload,
        )
        .expect("simulation runs")
        .as_millis_f64();
        println!(
            "| {name} | {} | {:.2} | {t:.1} |",
            topo.domain_count(),
            cost / base,
        );
        results.push((name, cost, t));
    }

    println!();
    let aware_t = results[2].2;
    let bus_t = results[1].2;
    println!(
        "traffic-aware split vs uniform bus: {:.1}% of the simulated latency",
        100.0 * aware_t / bus_t
    );
    assert!(
        aware_t < bus_t,
        "the traffic-aware split must beat the traffic-blind bus: {aware_t} vs {bus_t}"
    );
    assert!(
        results[2].1 < results[1].1,
        "and its analytic cost must be lower too"
    );
}
