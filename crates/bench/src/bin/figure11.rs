//! Figure 11 — remote unicast with vs without domains of causality.
//!
//! Overlays Figures 7 and 10 on a common sweep and locates the crossover:
//! below it the flat MOM's smaller routing constant wins; beyond it the
//! quadratic matrix-clock cost overwhelms, and the domain decomposition
//! wins by a widening margin.

use aaa_bench::bus_for;
use aaa_clocks::StampMode;
use aaa_sim::{experiments, CostModel};
use aaa_topology::TopologySpec;

fn main() {
    let rounds = 50;
    let ns = [10usize, 20, 30, 40, 50, 60, 90, 120, 150];
    println!("\n## Figure 11: with vs without domains of causality (avg RTT)");
    println!();
    println!("| n | without domains (ms) | with domains (ms) | winner |");
    println!("|---:|---:|---:|:---|");
    let mut crossover = None;
    let mut prev_winner = None;
    for &n in &ns {
        let flat = experiments::remote_unicast_avg_rtt(
            TopologySpec::single_domain(n as u16),
            StampMode::Updates,
            CostModel::paper_calibrated(),
            rounds,
        )
        .expect("simulation runs")
        .as_millis_f64();
        let bus = experiments::remote_unicast_avg_rtt(
            bus_for(n),
            StampMode::Updates,
            CostModel::paper_calibrated(),
            rounds,
        )
        .expect("simulation runs")
        .as_millis_f64();
        let winner = if flat <= bus { "flat" } else { "domains" };
        if prev_winner == Some("flat") && winner == "domains" {
            crossover = Some(n);
        }
        prev_winner = Some(winner);
        println!("| {n} | {flat:.1} | {bus:.1} | {winner} |");
    }
    println!();
    match crossover {
        Some(n) => println!("crossover: domains start winning at n ≈ {n}"),
        None => println!("crossover outside the sweep"),
    }
    // The paper's Figure 11 shows the domain version losing at n = 10-30
    // (larger constant) and winning clearly by n = 90+.
    let flat90 = experiments::remote_unicast_avg_rtt(
        TopologySpec::single_domain(90),
        StampMode::Updates,
        CostModel::paper_calibrated(),
        rounds,
    )
    .unwrap()
    .as_millis_f64();
    let bus90 = experiments::remote_unicast_avg_rtt(
        bus_for(90),
        StampMode::Updates,
        CostModel::paper_calibrated(),
        rounds,
    )
    .unwrap()
    .as_millis_f64();
    assert!(
        bus90 < flat90,
        "domains must win at n=90: {bus90} vs {flat90}"
    );
}
