//! Appendix A — the Updates optimized algorithm, measured.
//!
//! Compares the wire size of causal stamps in Full mode (ship the whole
//! matrix: `O(n²)` bytes) against Updates mode (ship modified entries
//! only), for the paper's ping-pong workload, and shows the end-to-end
//! effect on a bandwidth-limited (WAN) link where bytes dominate.

use aaa_bench::bus_for;
use aaa_clocks::StampMode;
use aaa_sim::{experiments, CostModel};
use aaa_topology::TopologySpec;

fn main() {
    println!("\n## Appendix A: Updates stamp-size ablation (avg stamp bytes/message)");
    println!();
    println!("| n | full matrix (B) | updates (B) | reduction |");
    println!("|---:|---:|---:|---:|");
    for n in [10u16, 20, 30, 50, 90] {
        let full = experiments::stamp_bytes_per_message(
            TopologySpec::single_domain(n),
            StampMode::Full,
            50,
        )
        .expect("simulation runs");
        let upd = experiments::stamp_bytes_per_message(
            TopologySpec::single_domain(n),
            StampMode::Updates,
            50,
        )
        .expect("simulation runs");
        println!(
            "| {n} | {full:.0} | {upd:.0} | {:.0}x |",
            full / upd.max(1.0)
        );
        assert!(
            upd * 4.0 < full,
            "updates must cut stamp bytes at n={n}: {upd} vs {full}"
        );
    }

    println!();
    println!("### Updates × domains: combined effect");
    println!();
    println!("| configuration | stamp bytes/message |");
    println!("|:---|---:|");
    let flat_full =
        experiments::stamp_bytes_per_message(TopologySpec::single_domain(100), StampMode::Full, 50)
            .unwrap();
    let flat_upd = experiments::stamp_bytes_per_message(
        TopologySpec::single_domain(100),
        StampMode::Updates,
        50,
    )
    .unwrap();
    let bus_full = experiments::stamp_bytes_per_message(bus_for(100), StampMode::Full, 50).unwrap();
    let bus_upd =
        experiments::stamp_bytes_per_message(bus_for(100), StampMode::Updates, 50).unwrap();
    println!("| flat, full matrix (n=100) | {flat_full:.0} |");
    println!("| flat, updates | {flat_upd:.0} |");
    println!("| bus domains, full matrix | {bus_full:.0} |");
    println!("| bus domains, updates | {bus_upd:.0} |");
    assert!(
        bus_upd < flat_full / 100.0,
        "combined reduction should exceed 100x"
    );

    println!();
    println!("### End-to-end round trip on a 100 B/ms WAN link (n=20)");
    println!();
    println!("| mode | avg RTT (ms) |");
    println!("|:---|---:|");
    for (name, mode) in [
        ("full matrix", StampMode::Full),
        ("updates", StampMode::Updates),
    ] {
        let rtt = experiments::remote_unicast_avg_rtt(
            TopologySpec::single_domain(20),
            mode,
            CostModel::wan(100.0),
            50,
        )
        .expect("simulation runs");
        println!("| {name} | {:.1} |", rtt.as_millis_f64());
    }
}
