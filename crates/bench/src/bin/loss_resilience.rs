//! Experiment X6 — causal delivery under packet loss.
//!
//! The AAA bus guarantees *reliable* causal delivery over an unreliable
//! network (§3). This experiment injects seeded packet loss into the
//! simulator and sweeps the drop probability: round trips degrade
//! gracefully (retransmission latency), while end-to-end delivery stays
//! exactly-once and causally ordered — verified on the recorded trace.

use aaa_base::{AgentId, ServerId, VDuration};
use aaa_mom::{EchoAgent, Notification, ServerConfig, StampMode};
use aaa_sim::{CostModel, FaultPlan, Simulation};
use aaa_topology::TopologySpec;
use aaa_trace::TraceRecorder;

fn run(drop: f64) -> (f64, u64, usize, bool) {
    let topo = TopologySpec::bus(3, 3).validate().expect("valid bus");
    let config = ServerConfig {
        stamp_mode: StampMode::Updates,
        rto: VDuration::from_millis(80),
        ..ServerConfig::default()
    };
    let mut sim = Simulation::with_fault_plan(
        topo,
        config,
        CostModel::paper_calibrated(),
        FaultPlan::drop_only(drop, 42),
    )
    .expect("sim builds");
    let recorder = TraceRecorder::new();
    sim.record_into(&recorder);
    for s in 0..9u16 {
        sim.register_agent(ServerId::new(s), 1, Box::new(EchoAgent));
    }

    let rounds = 30u32;
    let main = AgentId::new(ServerId::new(0), 100);
    let echo = AgentId::new(ServerId::new(8), 1); // other end of the bus
    let mut total = VDuration::ZERO;
    for _ in 0..rounds {
        let t0 = sim.now();
        sim.client_send(main, echo, Notification::signal("ping"));
        sim.run_until_quiet().expect("sim runs");
        total += sim.last_delivery() - t0;
    }
    let avg_ms = total.as_millis_f64() / f64::from(rounds);
    let trace = recorder.snapshot().expect("trace ok");
    (
        avg_ms,
        sim.dropped_datagrams(),
        trace.message_count(),
        trace.check_causality().is_ok(),
    )
}

fn main() {
    println!("\n## X6: round-trip under packet loss (bus 3x3, RTO 80 ms)");
    println!();
    println!("| drop prob. | avg RTT (ms) | datagrams lost | messages delivered | causal |");
    println!("|---:|---:|---:|---:|:---|");
    let mut baseline = None;
    for drop in [0.0, 0.05, 0.10, 0.20, 0.30] {
        let (avg, lost, msgs, causal) = run(drop);
        println!(
            "| {:.0}% | {avg:.1} | {lost} | {msgs} | {} |",
            drop * 100.0,
            if causal { "yes" } else { "NO" }
        );
        assert_eq!(msgs, 60, "every ping and pong must eventually deliver");
        assert!(causal, "loss must never reorder causal delivery");
        let base = *baseline.get_or_insert(avg);
        assert!(avg >= base * 0.99, "loss should not make things faster");
    }
    println!();
    println!(
        "Loss slows rounds down by retransmission delays but never costs a \
         message or a causal inversion: the link layer's sequence numbers \
         and cumulative acks feed the causal channel an exactly-once FIFO \
         stream, whatever the network does."
    );
}
