//! Figure 9 — bus, daisy and hierarchical (tree) domain organizations.
//!
//! A structural experiment: for each organization at comparable scale, the
//! table reports domain counts, router counts, worst-case route length and
//! the per-server control-information footprint (matrix cells held) —
//! quantities the paper's §6.2 cost analysis reasons about.

use aaa_topology::cost::server_state_cells;
use aaa_topology::{RoutingTable, Topology, TopologySpec};

fn describe(name: &str, topo: &Topology) {
    let tables = RoutingTable::build_all(topo).expect("routable");
    let worst_hops = tables.iter().map(|t| t.max_hops()).max().unwrap_or(0);
    let routers = topo.routers().len();
    let max_cells = topo
        .servers()
        .map(|s| {
            let sizes: Vec<usize> = topo
                .memberships(s)
                .iter()
                .map(|&d| topo.domain(d).expect("domain exists").size())
                .collect();
            server_state_cells(&sizes)
        })
        .max()
        .unwrap_or(0);
    let flat_cells = (topo.server_count() as u64).pow(2);
    println!(
        "| {} | {} | {} | {} | {} | {} | {:.1}% |",
        name,
        topo.server_count(),
        topo.domain_count(),
        routers,
        worst_hops,
        max_cells,
        100.0 * max_cells as f64 / flat_cells as f64,
    );
}

fn main() {
    println!("\n## Figure 9: domain organizations (bus / daisy / tree)");
    println!();
    println!(
        "| organization | servers | domains | routers | worst route (hops) \
         | max cells/server | vs flat n² |"
    );
    println!("|:---|---:|---:|---:|---:|---:|---:|");

    let bus = TopologySpec::bus(6, 6).validate().expect("bus valid");
    describe("bus 6×6", &bus);

    let daisy = TopologySpec::daisy(7, 6).validate().expect("daisy valid");
    describe("daisy 7×6", &daisy);

    let tree = TopologySpec::tree(2, 2, 6).validate().expect("tree valid");
    describe("tree d=2 k=2 s=6", &tree);

    let flat = TopologySpec::single_domain(36)
        .validate()
        .expect("flat valid");
    describe("flat (no domains)", &flat);

    println!();
    println!(
        "All decompositions are validated acyclic; every organization cuts the \
         per-server matrix-clock state to a few percent of the flat MOM's n²."
    );
}
