//! Experiment X3 — local unicast baseline (§6.1's first test).
//!
//! Ping-pong between two agents on the *same* server: the local bus
//! bypasses the causal machinery entirely, so the time is flat in the
//! number of servers — the baseline against which remote costs are read.

use aaa_bench::{print_table, Row};
use aaa_clocks::StampMode;
use aaa_sim::{experiments, CostModel};
use aaa_topology::TopologySpec;

fn main() {
    let rounds = 100;
    let mut rows = Vec::new();
    for n in [10usize, 20, 30, 40, 50] {
        let m = experiments::local_unicast(
            TopologySpec::single_domain(n as u16),
            StampMode::Updates,
            CostModel::paper_calibrated(),
            rounds,
        )
        .expect("simulation runs");
        rows.push(Row {
            n,
            paper_ms: None,
            ours_ms: m.avg.as_millis_f64(),
        });
    }
    print_table(
        "X3: local unicast (same-server ping-pong, avg RTT)",
        "ms",
        &rows,
    );
    println!();
    let first = rows[0].ours_ms;
    assert!(
        rows.iter().all(|r| (r.ours_ms - first).abs() < 1e-6),
        "local unicast must be independent of the number of servers"
    );
    println!("flat across n, as expected: local bus bypasses causal ordering");
}
