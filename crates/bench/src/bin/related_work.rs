//! Related-work baseline (§2): vector-clock causal *broadcast* vs
//! matrix-clock point-to-point.
//!
//! The paper dismisses vector-clock schemes because they "require causal
//! broadcast and therefore do not scale well": a vector timestamp is only
//! O(n) bytes, but to keep it sound every message — even a unicast — must
//! reach every process. This experiment quantifies that trade-off for a
//! unicast workload: k messages between fixed pairs in a group of n.
//!
//! - **BSS (Birman–Schiper–Stephenson)**: each unicast becomes n−1
//!   transmissions carrying an n-entry vector.
//! - **Matrix clock (this paper, Updates mode)**: each unicast is one
//!   transmission carrying only the modified matrix entries.

use aaa_base::DomainServerId;
use aaa_clocks::vector::BssState;
use aaa_clocks::{Batching, CausalState, StampMode};

fn d(i: usize) -> DomainServerId {
    DomainServerId::new(i as u16)
}

/// Simulates `rounds` unicasts 0 -> 1 under BSS causal broadcast and
/// returns (messages on the wire, stamp bytes on the wire).
fn bss_unicast_cost(n: usize, rounds: usize) -> (u64, u64) {
    let mut procs: Vec<BssState> = (0..n).map(|i| BssState::new(d(i), n)).collect();
    let mut msgs = 0u64;
    let mut bytes = 0u64;
    for _ in 0..rounds {
        let stamp = procs[0].stamp_broadcast();
        // The broadcast reaches every other process, carrying the vector.
        for proc in procs.iter_mut().skip(1) {
            msgs += 1;
            bytes += stamp.encoded_len() as u64;
            assert!(proc.can_deliver(d(0), &stamp));
            proc.deliver(d(0), &stamp);
        }
    }
    (msgs, bytes)
}

/// Simulates `rounds` unicasts 0 -> 1 under the matrix-clock protocol and
/// returns (messages on the wire, stamp bytes on the wire).
fn matrix_unicast_cost(n: usize, rounds: usize, mode: StampMode) -> (u64, u64) {
    let mut a = CausalState::new(d(0), n, mode);
    let mut b = CausalState::new(d(1), n, mode);
    let mut bytes = 0u64;
    for _ in 0..rounds {
        let stamp = a.stamp_send(d(1), Batching::Single);
        bytes += stamp.encoded_len() as u64;
        let p = b.on_frame(d(0), stamp);
        b.deliver(d(0), &p);
    }
    (rounds as u64, bytes)
}

fn main() {
    let rounds = 100;
    println!("\n## Related work (§2): unicast workload, {rounds} messages 0 -> 1");
    println!();
    println!(
        "| n | BSS msgs | BSS stamp bytes | matrix msgs | updates stamp bytes \
         | full-matrix stamp bytes |"
    );
    println!("|---:|---:|---:|---:|---:|---:|");
    for n in [10usize, 30, 50, 90, 150] {
        let (bss_msgs, bss_bytes) = bss_unicast_cost(n, rounds);
        let (mat_msgs, upd_bytes) = matrix_unicast_cost(n, rounds, StampMode::Updates);
        let (_, full_bytes) = matrix_unicast_cost(n, rounds, StampMode::Full);
        println!("| {n} | {bss_msgs} | {bss_bytes} | {mat_msgs} | {upd_bytes} | {full_bytes} |");
        // The paper's point, checked: BSS floods the network with
        // messages (n−1 per unicast)...
        assert_eq!(bss_msgs, (n as u64 - 1) * rounds as u64);
        assert_eq!(mat_msgs, rounds as u64);
        // ...and with Updates the matrix protocol even wins on bytes.
        assert!(
            upd_bytes < bss_bytes,
            "updates bytes {upd_bytes} should undercut BSS {bss_bytes} at n={n}"
        );
    }
    println!();
    println!(
        "BSS ships O(n) bytes per message but O(n) messages per unicast; the \
         matrix protocol ships one message, and with Appendix A's Updates \
         encoding its stamps are smaller than BSS's vectors too. Only for \
         genuine broadcast workloads does the vector approach break even — \
         which is why the paper scales the matrix approach with domains \
         instead."
    );
}
