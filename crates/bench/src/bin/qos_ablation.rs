//! Experiment X7 — what causal ordering *costs*: causal vs unordered QoS.
//!
//! The paper's intro cites the CORBA Messaging specification, which makes
//! ordering a quality-of-service knob. Our bus exposes the same knob; this
//! experiment prices it: the same flat-MOM ping-pong with causal stamps
//! and with the unordered policy. The difference *is* the causal-ordering
//! term of §6.1 — and it is exactly the term the domain decomposition
//! makes affordable.

use aaa_base::{AgentId, ServerId};
use aaa_mom::{EchoAgent, FnAgent, Notification, ServerConfig, StampMode};
use aaa_sim::{CostModel, Simulation};
use aaa_topology::TopologySpec;

fn rtt(n: u16, unordered: bool, rounds: u32) -> f64 {
    let topo = TopologySpec::single_domain(n).validate().expect("valid");
    let mut sim = Simulation::new(
        topo,
        ServerConfig {
            stamp_mode: StampMode::Updates,
            ..ServerConfig::default()
        },
        CostModel::paper_calibrated(),
    )
    .expect("sim builds");
    for s in 0..n {
        if unordered {
            // Echo back with the same (unordered) policy so the whole
            // round trip bypasses the causal machinery.
            sim.register_agent(
                ServerId::new(s),
                1,
                Box::new(FnAgent::new(|ctx, from, note: &Notification| {
                    ctx.send_unordered(from, note.clone());
                })),
            );
        } else {
            sim.register_agent(ServerId::new(s), 1, Box::new(EchoAgent));
        }
    }
    let main = AgentId::new(ServerId::new(0), 100);
    let echo = AgentId::new(ServerId::new(n - 1), 1);
    let mut total = 0.0;
    for _ in 0..rounds {
        let t0 = sim.now();
        if unordered {
            sim.client_send_unordered(main, echo, Notification::signal("p"));
        } else {
            sim.client_send(main, echo, Notification::signal("p"));
        }
        sim.run_until_quiet().expect("sim runs");
        total += (sim.last_delivery() - t0).as_millis_f64();
    }
    total / f64::from(rounds)
}

fn main() {
    println!("\n## X7: the price of causal order (flat MOM, avg RTT, ms)");
    println!();
    println!("| n | causal | unordered | causal-ordering term |");
    println!("|---:|---:|---:|---:|");
    for n in [10u16, 30, 50, 90] {
        let causal = rtt(n, false, 30);
        let fast = rtt(n, true, 30);
        println!("| {n} | {causal:.1} | {fast:.1} | {:.1} |", causal - fast);
        assert!(fast < causal, "unordered must be cheaper at n={n}");
    }
    // The unordered baseline is flat in n; the causal surcharge grows
    // quadratically — the exact decomposition §6 motivates.
    let flat10 = rtt(10, true, 10);
    let flat90 = rtt(90, true, 10);
    assert!(
        (flat90 - flat10).abs() < 5.0,
        "unordered RTT must not grow with n: {flat10} vs {flat90}"
    );
    println!();
    println!(
        "The unordered baseline is flat (≈2 transfer hops regardless of n); \
         the causal surcharge is the quadratic matrix-clock term of §6.1 — \
         the very cost the domain decomposition reduces to linear without \
         giving up the ordering guarantee."
    );
}
