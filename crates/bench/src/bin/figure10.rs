//! Figure 10 — remote unicast **with** domains of causality (bus).
//!
//! The MOM is split into ≈ √n leaf domains of ≈ √n servers joined by a
//! backbone domain (the paper's bus organization). The paper reports
//! 159…218 ms for n = 10…150, with a gentle linear fit — routing through
//! two routers raises the constant, while the per-domain matrix clocks
//! shrink the causal-ordering term from O(n²) to O(n).

use aaa_bench::{bus_for, paper, print_table, report_fit, Row};
use aaa_clocks::StampMode;
use aaa_sim::{experiments, CostModel};

fn main() {
    let rounds = 100;
    let mut rows = Vec::new();
    for (i, &n) in paper::FIG10_N.iter().enumerate() {
        let rtt = experiments::remote_unicast_avg_rtt(
            bus_for(n),
            StampMode::Updates,
            CostModel::paper_calibrated(),
            rounds,
        )
        .expect("simulation runs");
        rows.push(Row {
            n,
            paper_ms: Some(paper::FIG10_MS[i]),
            ours_ms: rtt.as_millis_f64(),
        });
    }
    print_table(
        "Figure 10: remote unicast with domains of causality (bus, avg RTT)",
        "ms",
        &rows,
    );
    println!();
    let fit = report_fit(&rows);
    fit.print();
    assert!(
        !fit.prefers_quadratic(),
        "figure 10 must reproduce the linear shape"
    );
    // The whole sweep must stay within the same order of magnitude —
    // the paper grows only 1.37x from n=10 to n=150.
    let growth = rows.last().unwrap().ours_ms / rows[0].ours_ms;
    println!(
        "growth 10 -> 150 servers: ours {growth:.2}x, paper {:.2}x",
        paper::FIG10_MS[8] / paper::FIG10_MS[0]
    );
    assert!(growth < 3.0, "domain decomposition must flatten the curve");
}
