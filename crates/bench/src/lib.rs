#![warn(missing_docs)]
#![forbid(unsafe_code)]

//! Shared plumbing for the experiment harness.
//!
//! Each binary under `src/bin/` regenerates one table or figure of the
//! paper (see `DESIGN.md`'s experiment index). This library holds what
//! they share: the paper's published series, topology helpers, series
//! formatting, and shape checks (linear/quadratic fits).

use aaa_topology::TopologySpec;

/// The paper's published measurements, transcribed from the figures.
pub mod paper {
    /// Figure 7 — remote unicast without domains: server counts.
    pub const FIG7_N: [usize; 5] = [10, 20, 30, 40, 50];
    /// Figure 7 — remote unicast without domains: milliseconds.
    pub const FIG7_MS: [f64; 5] = [61.0, 69.0, 88.0, 136.0, 201.0];

    /// Figure 8 — broadcast without domains: server counts.
    pub const FIG8_N: [usize; 7] = [10, 20, 30, 40, 50, 60, 90];
    /// Figure 8 — broadcast without domains: milliseconds.
    pub const FIG8_MS: [f64; 7] = [636.0, 1382.0, 2771.0, 4187.0, 6613.0, 8933.0, 25323.0];

    /// Figure 10 — remote unicast with domains (bus): server counts.
    pub const FIG10_N: [usize; 9] = [10, 20, 30, 40, 50, 60, 90, 120, 150];
    /// Figure 10 — remote unicast with domains (bus): milliseconds.
    pub const FIG10_MS: [f64; 9] = [
        159.0, 175.0, 185.0, 192.0, 189.0, 205.0, 212.0, 217.0, 218.0,
    ];
}

/// Builds the near-square bus decomposition the paper used for Figure 10:
/// `k ≈ √n` leaf domains whose sizes partition exactly `n` servers, with a
/// backbone domain joining the first server of each leaf.
///
/// # Panics
///
/// Panics if `n` is zero.
pub fn bus_for(n: usize) -> TopologySpec {
    assert!(n > 0, "need at least one server");
    let k = (n as f64).sqrt().round().max(1.0) as usize;
    // Partition n into k groups of size base or base+1.
    let base = n / k;
    let extra = n % k;
    let mut domains: Vec<Vec<u16>> = Vec::with_capacity(k + 1);
    let mut backbone = Vec::with_capacity(k);
    let mut next = 0u16;
    for i in 0..k {
        let size = base + usize::from(i < extra);
        let members: Vec<u16> = (next..next + size as u16).collect();
        // The router is the *last* server of the leaf, so that server 0 —
        // the paper's measuring server — is an ordinary leaf member and
        // remote routes cross the full src → router → router → dest path.
        backbone.push(next + size as u16 - 1);
        next += size as u16;
        domains.push(members);
    }
    domains.insert(0, backbone);
    TopologySpec::from_domains(domains)
}

/// One row of an experiment table: the swept parameter, the paper's value
/// (if published) and ours.
#[derive(Debug, Clone, Copy)]
pub struct Row {
    /// The swept parameter (number of servers).
    pub n: usize,
    /// The paper's measurement in ms, if published for this point.
    pub paper_ms: Option<f64>,
    /// Our measurement in ms.
    pub ours_ms: f64,
}

/// Prints an experiment table in a fixed format shared by all binaries.
pub fn print_table(title: &str, unit: &str, rows: &[Row]) {
    println!("\n## {title}");
    println!();
    println!("| n | paper ({unit}) | ours ({unit}) |");
    println!("|---:|---:|---:|");
    for r in rows {
        match r.paper_ms {
            Some(p) => println!("| {} | {:.0} | {:.1} |", r.n, p, r.ours_ms),
            None => println!("| {} | — | {:.1} |", r.n, r.ours_ms),
        }
    }
}

/// Reports which of a linear or quadratic least-squares fit explains a
/// series better, echoing the paper's "quadratic fit"/"linear fit" lines.
pub fn report_fit(rows: &[Row]) -> FitReport {
    let xs: Vec<f64> = rows.iter().map(|r| r.n as f64).collect();
    let ys: Vec<f64> = rows.iter().map(|r| r.ours_ms).collect();
    let (a_l, b_l, rmse_l) = aaa_topology::cost::fit::linear(&xs, &ys);
    let (a_q, b_q, rmse_q) = aaa_topology::cost::fit::quadratic(&xs, &ys);
    FitReport {
        linear: (a_l, b_l, rmse_l),
        quadratic: (a_q, b_q, rmse_q),
    }
}

/// Fit coefficients and errors for both candidate shapes.
#[derive(Debug, Clone, Copy)]
pub struct FitReport {
    /// `(intercept, slope, rmse)` of `y = a + b·n`.
    pub linear: (f64, f64, f64),
    /// `(intercept, coefficient, rmse)` of `y = a + b·n²`.
    pub quadratic: (f64, f64, f64),
}

impl FitReport {
    /// `true` if the quadratic fit is strictly better.
    pub fn prefers_quadratic(&self) -> bool {
        self.quadratic.2 < self.linear.2
    }

    /// Prints both fits.
    pub fn print(&self) {
        let (a, b, e) = self.linear;
        println!("linear fit   : {a:9.2} + {b:8.4}·n    (rmse {e:8.2})");
        let (a, b, e) = self.quadratic;
        println!("quadratic fit: {a:9.2} + {b:8.4}·n²   (rmse {e:8.2})");
        println!(
            "better shape : {}",
            if self.prefers_quadratic() {
                "quadratic"
            } else {
                "linear"
            }
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bus_for_partitions_exactly() {
        for n in [4usize, 10, 30, 50, 100, 150] {
            let spec = bus_for(n);
            assert_eq!(spec.server_count(), n, "n={n}");
            let topo = spec.validate().expect("valid bus");
            assert_eq!(topo.server_count(), n);
            // k leaves + 1 backbone
            let k = (n as f64).sqrt().round().max(1.0) as usize;
            assert_eq!(topo.domain_count(), k + 1);
        }
    }

    #[test]
    fn bus_for_singleton() {
        let topo = bus_for(1).validate().unwrap();
        assert_eq!(topo.server_count(), 1);
    }

    #[test]
    fn paper_series_shapes() {
        // Sanity: the paper's own series prefer the expected fits.
        let rows7: Vec<Row> = paper::FIG7_N
            .iter()
            .zip(paper::FIG7_MS)
            .map(|(&n, ms)| Row {
                n,
                paper_ms: None,
                ours_ms: ms,
            })
            .collect();
        assert!(report_fit(&rows7).prefers_quadratic());

        let rows10: Vec<Row> = paper::FIG10_N
            .iter()
            .zip(paper::FIG10_MS)
            .map(|(&n, ms)| Row {
                n,
                paper_ms: None,
                ours_ms: ms,
            })
            .collect();
        assert!(!report_fit(&rows10).prefers_quadratic());
    }
}
