//! Micro-benchmarks of the matrix-clock protocol operations.
//!
//! These measure the real (wall-clock) cost of the operations the paper's
//! cost model charges for: stamping, deliverability checking and delivery
//! merging, across domain sizes, in both stamp modes.

use aaa_base::DomainServerId;
use aaa_clocks::{Batching, CausalState, StampMode};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

fn d(i: u16) -> DomainServerId {
    DomainServerId::new(i)
}

fn bench_stamp_send(c: &mut Criterion) {
    let mut group = c.benchmark_group("stamp_send");
    for &n in &[8usize, 32, 64, 128] {
        for (name, mode) in [("full", StampMode::Full), ("updates", StampMode::Updates)] {
            group.throughput(Throughput::Elements(1));
            group.bench_with_input(BenchmarkId::new(name, n), &n, |b, &n| {
                let mut state = CausalState::new(d(0), n, mode);
                b.iter(|| black_box(state.stamp_send(d(1), Batching::Single)));
            });
        }
    }
    group.finish();
}

fn bench_check_and_deliver(c: &mut Criterion) {
    let mut group = c.benchmark_group("check_deliver");
    for &n in &[8usize, 32, 64, 128] {
        group.bench_with_input(BenchmarkId::new("full", n), &n, |b, &n| {
            b.iter_with_setup(
                || {
                    let mut tx = CausalState::new(d(0), n, StampMode::Full);
                    let mut rx = CausalState::new(d(1), n, StampMode::Full);
                    let stamp = tx.stamp_send(d(1), Batching::Single);
                    let pending = rx.on_frame(d(0), stamp);
                    (rx, pending)
                },
                |(mut rx, pending)| {
                    assert!(rx.can_deliver(d(0), &pending));
                    rx.deliver(d(0), &pending);
                    black_box(rx);
                },
            );
        });
    }
    group.finish();
}

fn bench_round_trip(c: &mut Criterion) {
    // A full protocol round (stamp + frame + check + deliver both ways),
    // the unit the paper's Figure 7 measures per hop.
    let mut group = c.benchmark_group("protocol_round_trip");
    for &n in &[8usize, 32, 64, 128] {
        group.bench_with_input(BenchmarkId::new("updates", n), &n, |b, &n| {
            let mut a = CausalState::new(d(0), n, StampMode::Updates);
            let mut z = CausalState::new(d(1), n, StampMode::Updates);
            b.iter(|| {
                let s = a.stamp_send(d(1), Batching::Single);
                let p = z.on_frame(d(0), s);
                z.deliver(d(0), &p);
                let s = z.stamp_send(d(0), Batching::Single);
                let p = a.on_frame(d(1), s);
                a.deliver(d(1), &p);
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_stamp_send,
    bench_check_and_deliver,
    bench_round_trip
);
criterion_main!(benches);
