//! Micro-benchmarks of topology validation and routing-table
//! construction — the boot-time work of §5.

use aaa_base::ServerId;
use aaa_topology::{RoutingTable, TopologySpec};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_validate(c: &mut Criterion) {
    let mut group = c.benchmark_group("topology_validate");
    for &n in &[36usize, 144, 400] {
        let k = (n as f64).sqrt() as u16;
        group.bench_with_input(BenchmarkId::new("bus", n), &k, |b, &k| {
            b.iter(|| black_box(TopologySpec::bus(k, k).validate().unwrap()));
        });
    }
    group.finish();
}

fn bench_build_tables(c: &mut Criterion) {
    let mut group = c.benchmark_group("routing_tables");
    for &k in &[6u16, 12, 20] {
        let topo = TopologySpec::bus(k, k).validate().unwrap();
        group.bench_with_input(
            BenchmarkId::new("all_servers_bus", k as usize * k as usize),
            &topo,
            |b, topo| {
                b.iter(|| black_box(RoutingTable::build_all(topo).unwrap()));
            },
        );
    }
    group.finish();
}

fn bench_lookup(c: &mut Criterion) {
    let topo = TopologySpec::bus(12, 12).validate().unwrap();
    let table = RoutingTable::build(&topo, ServerId::new(1)).unwrap();
    c.bench_function("routing_lookup", |b| {
        b.iter(|| black_box(table.next_hop(ServerId::new(143)).unwrap()));
    });
}

criterion_group!(benches, bench_validate, bench_build_tables, bench_lookup);
criterion_main!(benches);
