//! Micro-benchmarks of the engine: reaction dispatch and pub/sub fan-out.

use aaa_base::{AgentId, MessageId, ServerId};
use aaa_mom::engine::EngineCore;
use aaa_mom::pubsub::{publication, subscription, TopicAgent};
use aaa_mom::{AgentMessage, EchoAgent, Notification};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

fn aid(s: u16, l: u32) -> AgentId {
    AgentId::new(ServerId::new(s), l)
}

fn msg_from(from: AgentId, to: AgentId, note: Notification) -> AgentMessage {
    AgentMessage {
        id: MessageId::new(ServerId::new(9), 1),
        from,
        to,
        note,
    }
}

fn msg(to: AgentId, note: Notification) -> AgentMessage {
    msg_from(aid(9, 9), to, note)
}

fn bench_reaction_dispatch(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_reaction");
    group.throughput(Throughput::Elements(1));
    group.bench_function("echo_agent", |b| {
        let mut eng = EngineCore::new();
        eng.register(aid(0, 1), Box::new(EchoAgent));
        b.iter(|| {
            eng.enqueue(msg(aid(0, 1), Notification::signal("ping")));
            black_box(eng.step())
        });
    });
    group.bench_function("dead_letter", |b| {
        let mut eng = EngineCore::new();
        b.iter(|| {
            eng.enqueue(msg(aid(0, 42), Notification::signal("void")));
            black_box(eng.step())
        });
    });
    group.finish();
}

fn bench_topic_fanout(c: &mut Criterion) {
    let mut group = c.benchmark_group("topic_fanout");
    for &subs in &[4usize, 32, 256] {
        group.throughput(Throughput::Elements(subs as u64));
        group.bench_with_input(BenchmarkId::from_parameter(subs), &subs, |b, &subs| {
            let mut eng = EngineCore::new();
            let topic = aid(0, 1);
            eng.register(topic, Box::new(TopicAgent::new()));
            for i in 0..subs {
                eng.enqueue(msg_from(aid(1, i as u32), topic, subscription()));
            }
            while eng.step().is_some() {}
            let publish = publication("tick", b"x".to_vec());
            b.iter(|| {
                eng.enqueue(msg(topic, publish.clone()));
                black_box(eng.step())
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_reaction_dispatch, bench_topic_fanout);
criterion_main!(benches);
