//! Micro-benchmarks of the wire codec: encoding and decoding stamped
//! middleware messages, full-matrix vs Updates stamps.

use aaa_base::{AgentId, DomainId, MessageId, ServerId};
use aaa_clocks::{MatrixClock, Stamp, UpdateEntry};
use aaa_net::WireMessage;
use bytes::Bytes;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

fn message_with(stamp: Stamp) -> WireMessage {
    WireMessage {
        id: MessageId::new(ServerId::new(3), 42),
        from_agent: AgentId::new(ServerId::new(3), 1),
        to_agent: AgentId::new(ServerId::new(9), 2),
        src_server: ServerId::new(3),
        dest_server: ServerId::new(9),
        domain: DomainId::new(1),
        stamp: Some(stamp),
        kind: "quote".to_owned(),
        body: Bytes::from_static(b"ACME:42.17:20010917"),
    }
}

fn bench_encode(c: &mut Criterion) {
    let mut group = c.benchmark_group("wire_encode");
    for &n in &[8usize, 32, 128] {
        let full = message_with(Stamp::Full(MatrixClock::new(n)));
        group.throughput(Throughput::Bytes(full.encoded_len() as u64));
        group.bench_with_input(BenchmarkId::new("full", n), &full, |b, msg| {
            b.iter(|| black_box(msg.encode()));
        });
    }
    let delta = message_with(Stamp::Delta(
        (0..4)
            .map(|i| UpdateEntry {
                row: i,
                col: i + 1,
                value: u64::from(i) * 7,
            })
            .collect(),
    ));
    group.bench_function("delta_4_entries", |b| {
        b.iter(|| black_box(delta.encode()));
    });
    group.finish();
}

fn bench_decode(c: &mut Criterion) {
    let mut group = c.benchmark_group("wire_decode");
    for &n in &[8usize, 32, 128] {
        let bytes = message_with(Stamp::Full(MatrixClock::new(n))).encode();
        group.throughput(Throughput::Bytes(bytes.len() as u64));
        group.bench_with_input(BenchmarkId::new("full", n), &bytes, |b, bytes| {
            b.iter(|| black_box(WireMessage::decode(bytes.clone()).unwrap()));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_encode, bench_decode);
criterion_main!(benches);
