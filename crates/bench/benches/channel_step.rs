//! Micro-benchmarks of the channel state machine: end-to-end submit →
//! stamp → receive → deliver steps on flat and decomposed topologies.

use aaa_base::{AgentId, ServerId};
use aaa_clocks::StampMode;
use aaa_mom::channel::ChannelCore;
use aaa_mom::Notification;
use aaa_topology::TopologySpec;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn aid(s: u16, l: u32) -> AgentId {
    AgentId::new(ServerId::new(s), l)
}

fn bench_flat_hop(c: &mut Criterion) {
    let mut group = c.benchmark_group("channel_hop_flat");
    for &n in &[8u16, 32, 64] {
        group.bench_with_input(BenchmarkId::new("updates", n), &n, |b, &n| {
            let topo = TopologySpec::single_domain(n).validate().unwrap();
            let mut tx = ChannelCore::new(&topo, ServerId::new(0), StampMode::Updates).unwrap();
            let mut rx = ChannelCore::new(&topo, ServerId::new(1), StampMode::Updates).unwrap();
            b.iter(|| {
                tx.submit(aid(0, 1), aid(1, 1), Notification::signal("x"))
                    .unwrap();
                let out = tx.take_transmissions().unwrap();
                for (_, msg) in out {
                    black_box(rx.on_message(ServerId::new(0), msg).unwrap());
                }
            });
        });
    }
    group.finish();
}

fn bench_router_forward(c: &mut Criterion) {
    // The router's work: deliver in one domain, re-stamp into the next.
    let mut group = c.benchmark_group("channel_router_forward");
    for &s in &[4u16, 16, 32] {
        group.bench_with_input(BenchmarkId::new("bus_leaf_size", s), &s, |b, &s| {
            let topo = TopologySpec::bus(2, s).validate().unwrap();
            // Server 0 is the router of leaf 1 (and on the backbone).
            let src = ServerId::new(1);
            let router = ServerId::new(0);
            let dest_server = ServerId::new(s); // router of leaf 2
            let mut src_ch = ChannelCore::new(&topo, src, StampMode::Updates).unwrap();
            let mut router_ch = ChannelCore::new(&topo, router, StampMode::Updates).unwrap();
            b.iter(|| {
                src_ch
                    .submit(
                        aid(1, 1),
                        AgentId::new(dest_server, 1),
                        Notification::signal("x"),
                    )
                    .unwrap();
                let out = src_ch.take_transmissions().unwrap();
                for (_, msg) in out {
                    router_ch.on_message(src, msg).unwrap();
                }
                black_box(router_ch.take_transmissions().unwrap());
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_flat_hop, bench_router_forward);
criterion_main!(benches);
