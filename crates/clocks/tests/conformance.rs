//! Mode-generic engine conformance suite.
//!
//! Every [`ClockEngine`] must be observationally equivalent: on the same
//! seeded schedule, every mode must postpone the same frames, deliver in
//! the same order, drain its postponed queue to zero, and converge to the
//! same matrices. These tests drive deterministic seeded scenarios through
//! all four modes side by side and compare the full delivery transcript —
//! the contract that lets the middleware switch engines without changing
//! semantics.

use aaa_base::DomainServerId;
use aaa_clocks::{Batching, CausalState, PendingStamp, Stamp, StampMode};
use std::collections::VecDeque;

fn d(i: usize) -> DomainServerId {
    DomainServerId::new(i as u16)
}

/// Deterministic splitmix64: the conformance schedules must be identical
/// across runs and across modes, so no external RNG.
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound
    }
}

/// One message in flight or postponed, tagged with its global send index so
/// delivery transcripts can be compared across modes.
struct Frame {
    from: usize,
    send_idx: usize,
    stamp: Option<Stamp>,
    pending: Option<PendingStamp>,
}

/// A single-domain run of one stamp mode over a seeded schedule.
struct Run {
    n: usize,
    clocks: Vec<CausalState>,
    links: Vec<Vec<VecDeque<Frame>>>,
    postponed: Vec<Vec<Frame>>,
    /// Transcript: (site, send_idx) in delivery order.
    deliveries: Vec<(usize, usize)>,
    /// Postpone events: frames that failed a deliverability check at least
    /// once before delivery.
    postpone_checks: usize,
    stamp_bytes: usize,
    max_postponed_depth: usize,
}

impl Run {
    fn new(n: usize, mode: StampMode) -> Self {
        Run {
            n,
            clocks: (0..n).map(|i| CausalState::new(d(i), n, mode)).collect(),
            links: (0..n)
                .map(|_| (0..n).map(|_| VecDeque::new()).collect())
                .collect(),
            postponed: (0..n).map(|_| Vec::new()).collect(),
            deliveries: Vec::new(),
            postpone_checks: 0,
            stamp_bytes: 0,
            max_postponed_depth: 0,
        }
    }

    fn send(&mut self, from: usize, to: usize, send_idx: usize, batching: Batching) {
        let stamp = self.clocks[from].stamp_send(d(to), batching);
        self.stamp_bytes += stamp.encoded_len();
        self.links[from][to].push_back(Frame {
            from,
            send_idx,
            stamp: Some(stamp),
            pending: None,
        });
    }

    fn arrive(&mut self, from: usize, to: usize) {
        if let Some(mut frame) = self.links[from][to].pop_front() {
            let stamp = frame.stamp.take().expect("frame already arrived");
            frame.pending = Some(self.clocks[to].on_frame(d(from), stamp));
            self.postponed[to].push(frame);
            self.max_postponed_depth = self.max_postponed_depth.max(self.postponed[to].len());
        }
    }

    fn pump(&mut self, who: usize, rot: usize) {
        loop {
            let len = self.postponed[who].len();
            if len == 0 {
                return;
            }
            let mut hit = None;
            for off in 0..len {
                let i = (off + rot) % len;
                let frame = &self.postponed[who][i];
                let p = frame
                    .pending
                    .as_ref()
                    .expect("postponed frames have stamps");
                if self.clocks[who].can_deliver(d(frame.from), p) {
                    hit = Some(i);
                    break;
                }
                self.postpone_checks += 1;
            }
            let Some(i) = hit else { return };
            let frame = self.postponed[who].remove(i);
            let p = frame
                .pending
                .as_ref()
                .expect("postponed frames have stamps");
            self.clocks[who].deliver(d(frame.from), p);
            self.deliveries.push((who, frame.send_idx));
        }
    }

    fn quiesce(&mut self) {
        loop {
            let mut progressed = false;
            for from in 0..self.n {
                for to in 0..self.n {
                    while !self.links[from][to].is_empty() {
                        self.arrive(from, to);
                        progressed = true;
                    }
                }
            }
            for who in 0..self.n {
                let before = self.postponed[who].len();
                self.pump(who, 0);
                if self.postponed[who].len() != before {
                    progressed = true;
                }
            }
            if !progressed {
                return;
            }
        }
    }

    fn postponed_total(&self) -> usize {
        self.postponed.iter().map(Vec::len).sum()
    }
}

/// Drives one seeded scenario through every stamp mode in lock-step and
/// asserts the full transcripts agree. Returns per-mode stamp byte totals
/// for the cost-shape assertions.
fn run_conformance(seed: u64, n: usize, steps: usize) -> Vec<(StampMode, usize)> {
    let mut runs: Vec<(StampMode, Run)> = StampMode::ALL
        .into_iter()
        .map(|m| (m, Run::new(n, m)))
        .collect();
    let mut rng = SplitMix64(seed);
    let mut send_idx = 0usize;
    for _ in 0..steps {
        // One RNG stream drives every mode: identical schedules by
        // construction.
        match rng.below(3) {
            0 => {
                let from = rng.below(n as u64) as usize;
                let to = rng.below(n as u64) as usize;
                if from == to {
                    continue;
                }
                let batching = if rng.below(2) == 0 {
                    Batching::Single
                } else {
                    Batching::Grouped
                };
                for (_, run) in &mut runs {
                    run.send(from, to, send_idx, batching);
                }
                send_idx += 1;
            }
            1 => {
                let from = rng.below(n as u64) as usize;
                let to = rng.below(n as u64) as usize;
                for (_, run) in &mut runs {
                    run.arrive(from, to);
                }
            }
            _ => {
                let who = rng.below(n as u64) as usize;
                let rot = rng.below(16) as usize;
                for (_, run) in &mut runs {
                    run.pump(who, rot);
                }
            }
        }
    }
    for (_, run) in &mut runs {
        run.quiesce();
    }

    let (ref_mode, reference) = &runs[0];
    assert_eq!(*ref_mode, StampMode::Full);
    for (mode, run) in &runs[1..] {
        assert_eq!(
            run.deliveries, reference.deliveries,
            "seed {seed}: {mode} delivery order diverged from full"
        );
        assert_eq!(
            run.postpone_checks, reference.postpone_checks,
            "seed {seed}: {mode} postponed different frames than full"
        );
        assert_eq!(
            run.postponed_total(),
            0,
            "seed {seed}: {mode} left frames postponed after quiescence"
        );
        for i in 0..n {
            assert_eq!(
                run.clocks[i].sent(),
                reference.clocks[i].sent(),
                "seed {seed}: {mode} server {i} matrix diverged"
            );
            assert_eq!(
                run.clocks[i].delivered_total(),
                reference.clocks[i].delivered_total(),
                "seed {seed}: {mode} server {i} delivery count diverged"
            );
        }
    }
    assert_eq!(reference.postponed_total(), 0);
    assert_eq!(reference.deliveries.len(), send_idx);

    runs.iter()
        .map(|(mode, run)| (*mode, run.stamp_bytes))
        .collect()
}

#[test]
fn seeded_scenarios_agree_across_all_modes() {
    for seed in 0..24u64 {
        run_conformance(seed, 2 + (seed as usize % 4), 160);
    }
}

#[test]
fn long_scenario_agrees_across_all_modes() {
    run_conformance(0xC0FFEE, 5, 1200);
}

#[test]
fn bounded_modes_never_cost_more_stamp_bytes_than_full() {
    for seed in [1u64, 7, 42] {
        let totals = run_conformance(seed, 5, 600);
        let full = totals
            .iter()
            .find(|(m, _)| *m == StampMode::Full)
            .expect("full mode ran")
            .1;
        for (mode, bytes) in totals {
            if mode == StampMode::Full {
                continue;
            }
            assert!(
                bytes < full,
                "seed {seed}: {mode} spent {bytes}B, full spent {full}B"
            );
        }
    }
}
