//! Property-based tests for the clock substrate.
//!
//! These tests drive randomized single-domain schedules through the causal
//! delivery protocol and check, against an independent vector-clock oracle,
//! that no message is ever delivered before a causal predecessor — and that
//! every stamp mode takes exactly the same decisions as Full.

use aaa_base::DomainServerId;
use aaa_clocks::vector::CausalOrdering;
use aaa_clocks::{Batching, CausalState, MatrixClock, PendingStamp, StampMode, VectorClock};
use proptest::prelude::*;
use std::collections::VecDeque;

fn d(i: usize) -> DomainServerId {
    DomainServerId::new(i as u16)
}

/// One step of a randomized schedule.
#[derive(Debug, Clone)]
enum Op {
    /// Server `from` sends a message to server `to` (mod n, normalized),
    /// optionally as part of a group-commit batch.
    Send {
        from: usize,
        to: usize,
        batching: Batching,
    },
    /// The link `from -> to` hands its oldest frame to the receiver.
    Arrive { from: usize, to: usize },
    /// Server `who` scans its postponed queue (starting at a rotation) and
    /// delivers everything deliverable.
    Pump { who: usize, rot: usize },
}

fn op_strategy(n: usize) -> impl Strategy<Value = Op> {
    let batching = prop_oneof![Just(Batching::Single), Just(Batching::Grouped)];
    prop_oneof![
        (0..n, 0..n, batching).prop_map(|(from, to, batching)| Op::Send { from, to, batching }),
        (0..n, 0..n).prop_map(|(from, to)| Op::Arrive { from, to }),
        (0..n, 0..16usize).prop_map(|(who, rot)| Op::Pump { who, rot }),
    ]
}

fn mode_strategy() -> impl Strategy<Value = StampMode> {
    prop_oneof![
        Just(StampMode::Full),
        Just(StampMode::Updates),
        Just(StampMode::Reduced),
        Just(StampMode::Hybrid),
    ]
}

/// An in-flight or postponed message, with its oracle vector timestamp.
#[derive(Debug, Clone)]
struct Msg {
    from: usize,
    vc: VectorClock,
    pending: Option<PendingStamp>,
    raw: Option<aaa_clocks::Stamp>,
}

/// A full single-domain simulation in one stamp mode.
struct Domain {
    n: usize,
    clocks: Vec<CausalState>,
    /// Oracle: per-server vector clock over *events*.
    oracle: Vec<VectorClock>,
    /// links[from][to]: frames in flight, FIFO.
    links: Vec<Vec<VecDeque<Msg>>>,
    /// postponed[who]: frames received but not yet deliverable.
    postponed: Vec<Vec<Msg>>,
    /// delivered[who]: vector timestamps of messages delivered at `who`,
    /// in delivery order.
    delivered: Vec<Vec<VectorClock>>,
    /// Log of (site, decision) for cross-mode equivalence checking.
    decisions: Vec<(usize, bool)>,
}

impl Domain {
    fn new(n: usize, mode: StampMode) -> Self {
        Domain {
            n,
            clocks: (0..n).map(|i| CausalState::new(d(i), n, mode)).collect(),
            oracle: (0..n).map(|_| VectorClock::new(n)).collect(),
            links: (0..n)
                .map(|_| (0..n).map(|_| VecDeque::new()).collect())
                .collect(),
            postponed: (0..n).map(|_| Vec::new()).collect(),
            delivered: (0..n).map(|_| Vec::new()).collect(),
            decisions: Vec::new(),
        }
    }

    fn step(&mut self, op: &Op) {
        match *op {
            Op::Send { from, to, batching } => {
                let (from, to) = (from % self.n, to % self.n);
                if from == to {
                    return;
                }
                let stamp = self.clocks[from].stamp_send(d(to), batching);
                self.oracle[from].tick(from);
                let vc = self.oracle[from].clone();
                self.links[from][to].push_back(Msg {
                    from,
                    vc,
                    pending: None,
                    raw: Some(stamp),
                });
            }
            Op::Arrive { from, to } => {
                let (from, to) = (from % self.n, to % self.n);
                if let Some(mut msg) = self.links[from][to].pop_front() {
                    let raw = msg.raw.take().expect("frame not yet arrived");
                    msg.pending = Some(self.clocks[to].on_frame(d(from), raw));
                    self.postponed[to].push(msg);
                }
            }
            Op::Pump { who, rot } => {
                let who = who % self.n;
                self.pump(who, rot);
            }
        }
    }

    fn pump(&mut self, who: usize, rot: usize) {
        loop {
            let len = self.postponed[who].len();
            if len == 0 {
                return;
            }
            let mut hit = None;
            for off in 0..len {
                let i = (off + rot) % len;
                let msg = &self.postponed[who][i];
                let p = msg.pending.as_ref().expect("postponed frames have stamps");
                let ok = self.clocks[who].can_deliver(d(msg.from), p);
                self.decisions.push((who, ok));
                if ok {
                    hit = Some(i);
                    break;
                }
            }
            let Some(i) = hit else { return };
            let msg = self.postponed[who].remove(i);
            let p = msg.pending.as_ref().unwrap();
            self.clocks[who].deliver(d(msg.from), p);

            // Oracle safety check: the newly delivered message must not be a
            // causal predecessor of anything already delivered here.
            for earlier in &self.delivered[who] {
                assert_ne!(
                    msg.vc.compare(earlier),
                    CausalOrdering::Before,
                    "causal order violated at server {who}"
                );
            }
            // Receive event in the oracle.
            self.oracle[who].merge(&msg.vc);
            self.oracle[who].tick(who);
            self.delivered[who].push(msg.vc);
        }
    }

    /// Drain every link and postponed queue under a fair schedule.
    fn quiesce(&mut self) {
        loop {
            let mut progressed = false;
            for from in 0..self.n {
                for to in 0..self.n {
                    while !self.links[from][to].is_empty() {
                        self.step(&Op::Arrive { from, to });
                        progressed = true;
                    }
                }
            }
            for who in 0..self.n {
                let before = self.postponed[who].len();
                self.pump(who, 0);
                if self.postponed[who].len() != before {
                    progressed = true;
                }
            }
            if !progressed {
                break;
            }
        }
    }

    fn all_delivered(&self) -> bool {
        self.links
            .iter()
            .all(|row| row.iter().all(|q| q.is_empty()))
            && self.postponed.iter().all(|q| q.is_empty())
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Safety: random schedules never deliver a message before one of its
    /// causal predecessors, in any stamp mode.
    #[test]
    fn causal_safety_random_schedules(
        n in 2usize..6,
        ops in prop::collection::vec(op_strategy(6), 1..200),
        mode in mode_strategy(),
    ) {
        let mut dom = Domain::new(n, mode);
        for op in &ops {
            dom.step(op);
        }
        // Safety is asserted inside pump(); additionally check liveness.
        dom.quiesce();
        prop_assert!(dom.all_delivered(), "messages stuck after quiescence");
    }

    /// Equivalence: every engine takes identical deliverability decisions
    /// to the Full reference on identical schedules and ends with
    /// identical matrices.
    #[test]
    fn every_mode_equals_full_mode(
        n in 2usize..6,
        ops in prop::collection::vec(op_strategy(6), 1..150),
        mode in mode_strategy(),
    ) {
        let mut full = Domain::new(n, StampMode::Full);
        let mut other = Domain::new(n, mode);
        for op in &ops {
            full.step(op);
            other.step(op);
        }
        prop_assert_eq!(&full.decisions, &other.decisions,
            "mode {} diverged from Full", mode);
        full.quiesce();
        other.quiesce();
        for i in 0..n {
            prop_assert_eq!(full.clocks[i].sent(), other.clocks[i].sent(),
                "server {} matrices diverged in mode {}", i, mode);
            prop_assert_eq!(
                full.clocks[i].delivered_total(),
                other.clocks[i].delivered_total()
            );
        }
    }

    /// Persistence: at any point in a random schedule — including mid-batch,
    /// with a GroupNext continuation pending — every server's state survives
    /// a write_bytes/read_bytes round-trip exactly, and the recovered domain
    /// finishes the schedule identically to the original.
    #[test]
    fn persisted_state_roundtrips_in_every_mode(
        n in 2usize..5,
        ops in prop::collection::vec(op_strategy(5), 1..120),
        cut in 0usize..120,
        mode in mode_strategy(),
    ) {
        let mut dom = Domain::new(n, mode);
        let cut = cut.min(ops.len());
        for op in &ops[..cut] {
            dom.step(op);
        }
        // Crash: persist and recover every server mid-schedule.
        for i in 0..n {
            let mut buf = Vec::new();
            dom.clocks[i].write_bytes(&mut buf);
            let (recovered, used) = CausalState::read_bytes(&buf)
                .expect("persisted image must parse back");
            prop_assert_eq!(used, buf.len(), "trailing bytes in mode {}", mode);
            prop_assert_eq!(&recovered, &dom.clocks[i],
                "server {} state changed across persistence in mode {}", i, mode);
            dom.clocks[i] = recovered;
        }
        // The recovered domain must still complete the schedule: frames in
        // flight (stamped before the crash) reconstruct against recovered
        // images, and mid-batch groups continue.
        for op in &ops[cut..] {
            dom.step(op);
        }
        dom.quiesce();
        prop_assert!(dom.all_delivered(), "messages stuck after recovery");
    }

    /// Matrix merge is a join: idempotent, commutative, monotone.
    #[test]
    fn matrix_merge_lattice_laws(
        n in 1usize..6,
        cells_a in prop::collection::vec(0u64..50, 0..36),
        cells_b in prop::collection::vec(0u64..50, 0..36),
    ) {
        let mut a = MatrixClock::new(n);
        let mut b = MatrixClock::new(n);
        for (i, v) in cells_a.iter().enumerate() {
            a.set(i / n % n, i % n, *v);
        }
        for (i, v) in cells_b.iter().enumerate() {
            b.set(i / n % n, i % n, *v);
        }
        // commutative
        let mut ab = a.clone();
        ab.merge_max(&b, |_, _, _| {});
        let mut ba = b.clone();
        ba.merge_max(&a, |_, _, _| {});
        prop_assert_eq!(&ab, &ba);
        // idempotent
        let mut aa = a.clone();
        aa.merge_max(&a, |_, _, _| {});
        prop_assert_eq!(&aa, &a);
        // monotone (absorbing)
        prop_assert!(a.dominated_by(&ab));
        prop_assert!(b.dominated_by(&ab));
    }

    /// Vector clock compare is consistent with merge.
    #[test]
    fn vector_compare_merge_consistency(
        n in 1usize..6,
        xs in prop::collection::vec(0u64..20, 1..6),
        ys in prop::collection::vec(0u64..20, 1..6),
    ) {
        let mut a = VectorClock::new(n);
        let mut b = VectorClock::new(n);
        for (i, v) in xs.iter().enumerate().take(n) {
            for _ in 0..*v { a.tick(i); }
        }
        for (i, v) in ys.iter().enumerate().take(n) {
            for _ in 0..*v { b.tick(i); }
        }
        let mut m = a.clone();
        m.merge(&b);
        prop_assert_ne!(m.compare(&a), CausalOrdering::Before);
        prop_assert_ne!(m.compare(&b), CausalOrdering::Before);
        if a.compare(&b) == CausalOrdering::Before {
            prop_assert_eq!(&m, &b);
        }
    }
}

/// Deterministic regression: a long FIFO burst with adversarial pump
/// rotations still delivers in causal order.
#[test]
fn burst_with_rotated_pumps() {
    let n = 4;
    let mut dom = Domain::new(n, StampMode::Updates);
    for round in 0..30usize {
        for from in 0..n {
            for to in 0..n {
                if from != to {
                    dom.step(&Op::Send {
                        from,
                        to,
                        batching: Batching::Single,
                    });
                }
            }
        }
        // Deliver with a different scan rotation each round.
        for from in 0..n {
            for to in 0..n {
                dom.step(&Op::Arrive { from, to });
            }
        }
        for who in 0..n {
            dom.step(&Op::Pump { who, rot: round });
        }
    }
    dom.quiesce();
    assert!(dom.all_delivered());
    for who in 0..n {
        assert_eq!(dom.clocks[who].delivered_total(), 30 * (n as u64 - 1));
    }
}
