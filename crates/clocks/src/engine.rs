//! The pluggable clock-engine contract and the state core shared by the
//! built-in engines.
//!
//! [`CausalState`](crate::CausalState) is a thin dispatcher over a
//! [`ClockEngine`]: every stamp mode is one engine, and the engine owns
//! the whole per-domain protocol — what goes on the wire at send time
//! ([`ClockEngine::stamp_send`]), how the exact sender matrix is
//! reconstructed at arrival ([`ClockEngine::on_frame`]), the §4.2
//! delivery predicate ([`ClockEngine::can_deliver`] /
//! [`ClockEngine::deliver`]), and crash-recovery persistence
//! ([`ClockEngine::write_bytes`]).
//!
//! # The engine contract
//!
//! An engine is correct iff, for every FIFO schedule, the
//! [`PendingStamp`] it returns from `on_frame` carries **exactly** the
//! sender's `SENT` matrix at the instant the message was stamped, in the
//! receiver's column — and a sound lower bound elsewhere that loses no
//! knowledge across the delivery merge. Concretely:
//!
//! 1. **Exact predicate column.** `pending.matrix()[k][me]` equals the
//!    sender's `SENT[k][me]` for every `k`. An underestimate delivers a
//!    message before a causal predecessor destined to `me`; an
//!    overestimate deadlocks (the receiver waits for messages that were
//!    never sent to it).
//! 2. **Lossless merge.** For every other cell, either the reconstructed
//!    value equals the sender's, or the receiver's own matrix already
//!    dominates the sender's value at delivery time — so
//!    `SENT := max(SENT, pending)` ends identical to Full-mode delivery.
//! 3. **Persistence round-trip.** `write_bytes` followed by
//!    [`CausalState::read_bytes`](crate::CausalState::read_bytes) resumes
//!    the protocol mid-stream, including mid-batch [`Stamp::GroupNext`]
//!    continuation state and any sender-side buffering.
//!
//! Engines satisfying 1–2 take **identical delivery decisions** — the
//! mode-generic conformance suite (`tests/conformance.rs`) checks this
//! observationally against [`StampMode::Full`].

use aaa_base::DomainServerId;
use serde::{Deserialize, Serialize};

use crate::matrix::MatrixClock;
use crate::protocol::PendingStamp;
use crate::stamp::{Stamp, StampMode, UpdateEntry};

/// Whether a send is part of a batch and may collapse to a zero-byte
/// [`Stamp::GroupNext`] continuation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Batching {
    /// A standalone send: always ships a real stamp.
    #[default]
    Single,
    /// Part of a batched flush: the engine may emit [`Stamp::GroupNext`]
    /// when the matrix has not changed since the previous send to the
    /// same peer. Falls back to a real stamp otherwise, so callers may
    /// use this unconditionally on batched paths.
    Grouped,
}

/// One pluggable causal-stamp engine (see the [module docs](self) for the
/// correctness contract).
///
/// The four built-in engines live in [`crate::engines`]; [`CausalState`]
/// (the only type the rest of the workspace touches) dispatches over them
/// by [`StampMode`].
///
/// [`CausalState`]: crate::CausalState
pub trait ClockEngine {
    /// This server's identifier within the domain.
    fn me(&self) -> DomainServerId;

    /// Number of servers in the domain.
    fn n(&self) -> usize;

    /// The stamp mode this engine implements.
    fn mode(&self) -> StampMode;

    /// The local `SENT` matrix.
    fn sent(&self) -> &MatrixClock;

    /// Messages from `from` delivered here so far.
    fn delivered_from(&self, from: DomainServerId) -> u64;

    /// Total messages delivered here so far.
    fn delivered_total(&self) -> u64;

    /// Stamps a message about to be sent to `to` and updates the local
    /// state. Must be called exactly once per message, in send order.
    ///
    /// # Panics
    ///
    /// Panics if `to` is this server or out of range.
    fn stamp_send(&mut self, to: DomainServerId, batching: Batching) -> Stamp;

    /// Ingests a frame arriving from `from` (in link order) and returns
    /// the message's reconstructed stamp. Must be called exactly once per
    /// frame, in arrival order — the reliable link layer guarantees FIFO,
    /// which every incremental reconstruction relies on.
    ///
    /// # Panics
    ///
    /// Panics if `from` is out of range, or if the stamp kind does not
    /// match this engine's [`StampMode`].
    fn on_frame(&mut self, from: DomainServerId, stamp: Stamp) -> PendingStamp;

    /// Returns `true` if a message from `from` with stamp `pending` may
    /// be delivered now without violating causal order.
    ///
    /// # Panics
    ///
    /// Panics if `from` is out of range.
    fn can_deliver(&self, from: DomainServerId, pending: &PendingStamp) -> bool;

    /// Records delivery of a message from `from` with stamp `pending`,
    /// merging the sender's knowledge into the local matrix.
    ///
    /// # Panics
    ///
    /// Panics if the message is not currently deliverable; call
    /// [`ClockEngine::can_deliver`] first.
    fn deliver(&mut self, from: DomainServerId, pending: &PendingStamp);

    /// Appends a self-describing binary image of the engine state to
    /// `out`, suitable for crash-recovery journaling. The image must
    /// restore through [`CausalState::read_bytes`] to a state that
    /// resumes the protocol exactly where it stopped.
    ///
    /// [`CausalState::read_bytes`]: crate::CausalState::read_bytes
    fn write_bytes(&self, out: &mut Vec<u8>);
}

/// The protocol state every built-in engine shares: the RST matrix/vector
/// pair, the Appendix-A change-tracking bookkeeping, and the per-sender
/// reconstruction images.
///
/// Engines differ only in what [`Stamp`] they emit on send and how they
/// raise the per-sender image on arrival; the predicate, the delivery
/// merge and persistence of these fields are identical and live here.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub(crate) struct EngineCore {
    pub me: DomainServerId,
    pub n: usize,
    /// `SENT[k][l]`: messages sent from `k` to `l` that this server knows
    /// of.
    pub sent: MatrixClock,
    /// `DELIV[k]`: messages from `k` delivered here.
    pub deliv: Vec<u64>,
    /// Logical instant counter for change tracking (`State` in
    /// Appendix A).
    pub state: u64,
    /// Per-cell tag: value of `state` when the cell last changed
    /// (`Mat[k,l].state`).
    pub entry_state: Vec<u64>,
    /// Per-peer: value of `state` at the last send to that peer
    /// (`Node[j].state`).
    pub node_state: Vec<u64>,
    /// Per-peer image of that peer's matrix, rebuilt from received
    /// stamps.
    pub images: Vec<Option<MatrixClock>>,
}

impl EngineCore {
    /// Creates the shared core of server `me` in a domain of `n` servers.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or `me` is out of range.
    pub fn new(me: DomainServerId, n: usize) -> Self {
        assert!(n > 0, "a domain needs at least one server");
        assert!(
            me.as_usize() < n,
            "server id {me} out of range for domain of {n}"
        );
        EngineCore {
            me,
            n,
            sent: MatrixClock::new(n),
            deliv: vec![0; n],
            state: 0,
            entry_state: vec![0; n * n],
            node_state: vec![0; n],
            images: vec![None; n],
        }
    }

    pub fn delivered_total(&self) -> u64 {
        self.deliv.iter().sum()
    }

    /// Validates a send destination (not self, in range).
    pub fn assert_send_target(&self, to: DomainServerId) {
        assert!(to != self.me, "local deliveries bypass the causal protocol");
        assert!(to.as_usize() < self.n, "destination {to} out of range");
    }

    /// The send-side bookkeeping common to every real (non-continuation)
    /// stamp: advance the logical instant, count the send, tag the cell,
    /// and remember the instant of this send to `to`. Returns the change
    /// horizon (`node_state[to]` *before* this send) that delta-style
    /// engines scan from.
    pub fn bump_send(&mut self, to: DomainServerId) -> u64 {
        // Saturating throughout the clock core: a saturated counter keeps
        // comparisons monotone (late, never reordered); wrapping breaks
        // the §4.2 delivery predicate.
        self.state = self.state.saturating_add(1);
        let (me, t) = (self.me.as_usize(), to.as_usize());
        self.sent.increment(me, t);
        let tag = self.state;
        self.entry_state[me * self.n + t] = tag;
        let since = self.node_state[t];
        self.node_state[t] = self.state;
        since
    }

    /// Attempts a zero-byte group continuation to `to`: legal exactly
    /// when the matrix has not changed since the previous send to the
    /// same peer (no other sends, no deliveries in between) — the new
    /// stamp then differs from the previous frame's only by
    /// `SENT[me][to] += 1`, which the receiver reconstructs from its
    /// per-sender image. Applies the send bookkeeping and returns `true`
    /// on success; leaves the state untouched and returns `false` when a
    /// real stamp is required.
    pub fn try_group_continuation(&mut self, to: DomainServerId) -> bool {
        let me = self.me.as_usize();
        let t = to.as_usize();
        // The guard on SENT[me][to] ensures a previous frame to this peer
        // exists, so the receiver has an image to continue from.
        if self.node_state[t] == self.state && self.sent.get(me, t) > 0 {
            self.bump_send(to);
            true
        } else {
            false
        }
    }

    /// Collects the entries modified since logical instant `since` for
    /// which `keep(row, col)` holds, in row-major order.
    pub fn collect_changed(
        &self,
        since: u64,
        mut keep: impl FnMut(usize, usize) -> bool,
    ) -> Vec<UpdateEntry> {
        let mut out = Vec::new();
        for row in 0..self.n {
            for col in 0..self.n {
                if self.entry_state[row * self.n + col] > since && keep(row, col) {
                    // `n <= u16::MAX` is a construction invariant, so the
                    // checked narrowing never saturates in practice; if it
                    // ever did, the peer would reject the frame loudly.
                    out.push(UpdateEntry {
                        row: u16::try_from(row).unwrap_or(u16::MAX),
                        col: u16::try_from(col).unwrap_or(u16::MAX),
                        value: self.sent.get(row, col),
                    });
                }
            }
        }
        out
    }

    /// The per-sender reconstruction image for `from`, created on first
    /// use.
    pub fn image_mut(&mut self, from: DomainServerId) -> &mut MatrixClock {
        let n = self.n;
        self.images[from.as_usize()].get_or_insert_with(|| MatrixClock::new(n))
    }

    /// Reconstructs a [`Stamp::GroupNext`] continuation from `from`:
    /// the previous frame's stamp plus one send from `from` to me.
    ///
    /// # Panics
    ///
    /// Panics if no prior frame from this sender seeded an image — FIFO
    /// links make that a transport-invariant violation, not recoverable
    /// input.
    pub fn continue_group(&mut self, from: DomainServerId) -> PendingStamp {
        let me = self.me.as_usize();
        let image = self.images[from.as_usize()]
            .as_mut()
            // A missing predecessor means the transport violated FIFO — a
            // broken protocol invariant, not recoverable input.
            // audit:allow(panic-freedom)
            .expect("GroupNext continuation with no prior frame from this sender");
        image.increment(from.as_usize(), me);
        PendingStamp::from_matrix(image.clone())
    }

    /// The §4.2 delivery predicate over the reconstructed stamp.
    pub fn can_deliver(&self, from: DomainServerId, pending: &PendingStamp) -> bool {
        let f = from.as_usize();
        let me = self.me.as_usize();
        assert!(f < self.n, "sender {from} out of range");
        if pending.matrix().get(f, me) != self.deliv[f].saturating_add(1) {
            return false;
        }
        (0..self.n).all(|k| k == f || pending.matrix().get(k, me) <= self.deliv[k])
    }

    /// The delivery transition: `DELIV[from] += 1` and
    /// `SENT := max(SENT, pending)`, tagging every raised cell with a
    /// fresh logical instant so delta-style engines ship it onward.
    pub fn deliver(&mut self, from: DomainServerId, pending: &PendingStamp) {
        assert!(
            self.can_deliver(from, pending),
            "delivering a message out of causal order"
        );
        self.deliv[from.as_usize()] = self.deliv[from.as_usize()].saturating_add(1);
        self.state = self.state.saturating_add(1);
        let tag = self.state;
        let n = self.n;
        let entry_state = &mut self.entry_state;
        self.sent.merge_max(pending.matrix(), |row, col, _| {
            entry_state[row * n + col] = tag;
        });
    }

    /// Diagnostic panic for a stamp kind that contradicts the engine —
    /// a programming error in the channel wiring, never wire input
    /// (decoding already rejected it).
    #[cold]
    pub fn stamp_mode_mismatch(mode: StampMode, stamp: &Stamp) -> ! {
        // audit:allow(panic-freedom)
        panic!(
            "stamp kind {} does not match configured mode {mode:?}",
            stamp.kind()
        );
    }

    /// Appends the shared persistence image: identity, the given mode
    /// byte, and every core field. Engine-specific extras follow it.
    pub fn write_bytes(&self, mode_byte: u8, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.me.as_u16().to_le_bytes());
        // Saturating `try_from`: an impossible width writes a prefix the
        // reader rejects rather than a truncated valid-looking one.
        out.extend_from_slice(&u32::try_from(self.n).unwrap_or(u32::MAX).to_le_bytes());
        out.push(mode_byte);
        self.sent.write_bytes(out);
        for v in &self.deliv {
            out.extend_from_slice(&v.to_le_bytes());
        }
        out.extend_from_slice(&self.state.to_le_bytes());
        for v in &self.entry_state {
            out.extend_from_slice(&v.to_le_bytes());
        }
        for v in &self.node_state {
            out.extend_from_slice(&v.to_le_bytes());
        }
        write_optional_matrices(&self.images, out);
    }

    /// Reads an image written by [`EngineCore::write_bytes`] from the
    /// front of `input`, returning the core, the mode byte, and the bytes
    /// consumed. Engine-specific extras follow at the returned offset.
    ///
    /// Returns `None` on truncated or invalid input.
    pub fn read_bytes(input: &[u8]) -> Option<(EngineCore, u8, usize)> {
        let mut at = 0usize;
        let me = DomainServerId::new(u16::from_le_bytes(
            take(input, &mut at, 2)?.try_into().ok()?,
        ));
        let n = u32::from_le_bytes(take(input, &mut at, 4)?.try_into().ok()?) as usize;
        if n == 0 || me.as_usize() >= n {
            return None;
        }
        let mode_byte = take(input, &mut at, 1)?[0];
        let (sent, used) = MatrixClock::read_bytes(&input[at..])?;
        if sent.width() != n {
            return None;
        }
        at += used;
        let deliv = read_u64s(input, &mut at, n)?;
        let state = read_u64s(input, &mut at, 1)?[0];
        let entry_state = read_u64s(input, &mut at, n * n)?;
        let node_state = read_u64s(input, &mut at, n)?;
        let images = read_optional_matrices(input, &mut at, n)?;
        Some((
            EngineCore {
                me,
                n,
                sent,
                deliv,
                state,
                entry_state,
                node_state,
                images,
            },
            mode_byte,
            at,
        ))
    }
}

fn take<'a>(input: &'a [u8], at: &mut usize, n: usize) -> Option<&'a [u8]> {
    let s = input.get(*at..*at + n)?;
    *at += n;
    Some(s)
}

fn read_u64s(input: &[u8], at: &mut usize, count: usize) -> Option<Vec<u64>> {
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        out.push(u64::from_le_bytes(take(input, at, 8)?.try_into().ok()?));
    }
    Some(out)
}

/// Appends a `0`/`1`-tagged vector of optional matrices (the image /
/// knowledge-model persistence shape).
pub(crate) fn write_optional_matrices(ms: &[Option<MatrixClock>], out: &mut Vec<u8>) {
    for m in ms {
        match m {
            None => out.push(0),
            Some(m) => {
                out.push(1);
                m.write_bytes(out);
            }
        }
    }
}

/// Reads `n` optional matrices written by [`write_optional_matrices`],
/// validating each width against `n`.
pub(crate) fn read_optional_matrices(
    input: &[u8],
    at: &mut usize,
    n: usize,
) -> Option<Vec<Option<MatrixClock>>> {
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let tag = *input.get(*at)?;
        *at += 1;
        match tag {
            0 => out.push(None),
            1 => {
                let (m, used) = MatrixClock::read_bytes(&input[*at..])?;
                if m.width() != n {
                    return None;
                }
                *at += used;
                out.push(Some(m));
            }
            _ => return None,
        }
    }
    Some(out)
}
