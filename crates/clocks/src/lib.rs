#![warn(missing_docs)]
#![forbid(unsafe_code)]

//! Logical clocks and the matrix-clock causal-delivery protocol.
//!
//! This crate implements the clock substrate of the AAA middleware
//! reproduction:
//!
//! - [`LamportClock`] — scalar logical time (Lamport 1978), the weakest
//!   ordering device discussed in the paper's introduction;
//! - [`VectorClock`] — exact causal precedence between events, plus the
//!   Birman–Schiper–Stephenson causal *broadcast* protocol
//!   ([`vector::BssState`]) used as a related-work baseline;
//! - [`MatrixClock`] — the `n × n` "what A knows about what B knows" clock
//!   the paper builds on;
//! - [`CausalState`] — the per-domain causal delivery protocol
//!   (Raynal–Schiper–Toueg style) used by every AAA channel, dispatching
//!   to a pluggable [`ClockEngine`] selected by [`StampMode`]:
//!   [`StampMode::Full`] (ship the whole matrix), [`StampMode::Updates`]
//!   (ship only modified entries — Appendix A of the paper),
//!   [`StampMode::Reduced`] (Drummond–Barbosa reduced matrix clocks) or
//!   [`StampMode::Hybrid`] (Almeida-style sender-side buffering).
//!
//! The four engines live in [`engines`]; all take identical delivery
//! decisions and differ only in stamp bytes and bookkeeping cost.
//!
//! # Example: two servers exchanging causally ordered messages
//!
//! ```
//! use aaa_base::DomainServerId;
//! use aaa_clocks::{Batching, CausalState, StampMode};
//!
//! let a = DomainServerId::new(0);
//! let b = DomainServerId::new(1);
//! let mut clock_a = CausalState::new(a, 2, StampMode::Full);
//! let mut clock_b = CausalState::new(b, 2, StampMode::Full);
//!
//! // a sends to b
//! let stamp = clock_a.stamp_send(b, Batching::Single);
//! let pending = clock_b.on_frame(a, stamp);
//! assert!(clock_b.can_deliver(a, &pending));
//! clock_b.deliver(a, &pending);
//! ```

pub mod engine;
pub mod engines;
pub mod lamport;
pub mod matrix;
pub mod protocol;
pub mod stamp;
pub mod vector;

pub use engine::{Batching, ClockEngine};
pub use engines::{FullEngine, HybridEngine, ReducedEngine, UpdatesEngine};
pub use lamport::LamportClock;
pub use matrix::MatrixClock;
pub use protocol::{CausalState, EngineTranscript, PendingStamp};
pub use stamp::{Stamp, StampMode, UpdateEntry};
pub use vector::VectorClock;
