//! The matrix clock data structure.
//!
//! A matrix clock over `n` processes is an `n × n` array of counters. In the
//! AAA channel, cell `(k, l)` of server `i`'s matrix counts the messages
//! sent from `k` to `l` *that `i` knows about* — the "what A knows about
//! what B knows about C" shared knowledge of the paper's introduction. The
//! per-message control information is `O(n²)` in the worst case, which is
//! precisely the scalability problem the domain decomposition attacks.

use std::fmt;

use serde::{Deserialize, Serialize};

/// A square matrix of message counters.
///
/// Cells are addressed `(row, col)` = `(sender, receiver)`. All cells start
/// at zero and only ever grow; merging two matrices takes the cell-wise
/// maximum, making the set of matrices of a given width a join-semilattice.
///
/// # Examples
///
/// ```
/// use aaa_clocks::MatrixClock;
///
/// let mut m = MatrixClock::new(3);
/// m.increment(0, 1);
/// assert_eq!(m.get(0, 1), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct MatrixClock {
    n: usize,
    cells: Vec<u64>,
}

impl MatrixClock {
    /// Creates an all-zero `n × n` matrix clock.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "a matrix clock needs at least one process");
        MatrixClock {
            n,
            cells: vec![0; n * n],
        }
    }

    /// Width of the matrix (number of processes in the domain).
    pub fn width(&self) -> usize {
        self.n
    }

    #[inline]
    fn idx(&self, row: usize, col: usize) -> usize {
        debug_assert!(row < self.n && col < self.n, "matrix index out of range");
        row * self.n + col
    }

    /// The value of cell `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if `row` or `col` is out of range.
    #[inline]
    pub fn get(&self, row: usize, col: usize) -> u64 {
        self.cells[self.idx(row, col)]
    }

    /// Sets cell `(row, col)` to `value`.
    ///
    /// # Panics
    ///
    /// Panics if `row` or `col` is out of range.
    #[inline]
    pub fn set(&mut self, row: usize, col: usize, value: u64) {
        let i = self.idx(row, col);
        self.cells[i] = value;
    }

    /// Raises cell `(row, col)` to `value` if `value` is larger, returning
    /// `true` if the cell changed.
    ///
    /// # Panics
    ///
    /// Panics if `row` or `col` is out of range.
    #[inline]
    pub fn raise(&mut self, row: usize, col: usize, value: u64) -> bool {
        let i = self.idx(row, col);
        if value > self.cells[i] {
            self.cells[i] = value;
            true
        } else {
            false
        }
    }

    /// Increments cell `(row, col)`, returning the new value.
    ///
    /// # Panics
    ///
    /// Panics if `row` or `col` is out of range.
    #[inline]
    pub fn increment(&mut self, row: usize, col: usize) -> u64 {
        let i = self.idx(row, col);
        // Saturating: a saturated SENT cell postpones future deliveries
        // (safe) instead of wrapping and reordering them (unsafe).
        self.cells[i] = self.cells[i].saturating_add(1);
        self.cells[i]
    }

    /// Cell-wise maximum with `other`; calls `changed` for every cell that
    /// grew, with `(row, col, new_value)`.
    ///
    /// Exposing the changed cells lets the Updates optimization re-tag them
    /// with a fresh logical state without a second scan.
    ///
    /// # Panics
    ///
    /// Panics if the widths differ.
    pub fn merge_max(&mut self, other: &MatrixClock, mut changed: impl FnMut(usize, usize, u64)) {
        assert_eq!(
            self.n, other.n,
            "cannot merge matrix clocks of different widths"
        );
        for row in 0..self.n {
            for col in 0..self.n {
                let i = row * self.n + col;
                if other.cells[i] > self.cells[i] {
                    self.cells[i] = other.cells[i];
                    changed(row, col, other.cells[i]);
                }
            }
        }
    }

    /// Returns `true` if every cell of `self` is `<=` the matching cell of
    /// `other`.
    ///
    /// # Panics
    ///
    /// Panics if the widths differ.
    pub fn dominated_by(&self, other: &MatrixClock) -> bool {
        assert_eq!(self.n, other.n);
        self.cells.iter().zip(&other.cells).all(|(a, b)| a <= b)
    }

    /// Iterates over the non-zero cells as `(row, col, value)`.
    pub fn iter_nonzero(&self) -> impl Iterator<Item = (usize, usize, u64)> + '_ {
        self.cells
            .iter()
            .enumerate()
            .filter_map(move |(i, &v)| (v != 0).then_some((i / self.n, i % self.n, v)))
    }

    /// Copies column `col` into a fresh vector (`result[row] = cell(row, col)`).
    ///
    /// The causal delivery check only inspects the receiver's column of the
    /// piggybacked matrix; this accessor keeps that hot path allocation-free
    /// at the call site when reused with [`MatrixClock::column_into`].
    ///
    /// # Panics
    ///
    /// Panics if `col` is out of range.
    pub fn column(&self, col: usize) -> Vec<u64> {
        let mut out = vec![0; self.n];
        self.column_into(col, &mut out);
        out
    }

    /// Copies column `col` into `out`.
    ///
    /// # Panics
    ///
    /// Panics if `col` is out of range or `out` is shorter than the width.
    pub fn column_into(&self, col: usize, out: &mut [u64]) {
        assert!(col < self.n, "matrix index out of range");
        assert!(out.len() >= self.n, "output slice too short");
        for (row, slot) in out.iter_mut().enumerate().take(self.n) {
            *slot = self.cells[row * self.n + col];
        }
    }

    /// The minimum of column `col`: the number of messages destined to
    /// process `col` that *every* process is known to know about.
    ///
    /// This is the shared-knowledge query behind the classical
    /// matrix-clock applications the paper cites (replicated-log pruning,
    /// Wuu & Bernstein, the paper's reference 22): once `column_min(k) >= s`, the sender can
    /// discard its copy of the first `s` messages to `k`, because everyone
    /// provably knows about them.
    ///
    /// # Panics
    ///
    /// Panics if `col` is out of range.
    pub fn column_min(&self, col: usize) -> u64 {
        assert!(col < self.n, "matrix index out of range");
        (0..self.n)
            .map(|row| self.cells[row * self.n + col])
            .min()
            .unwrap_or(0)
    }

    /// Number of non-zero cells.
    pub fn nonzero_count(&self) -> usize {
        self.cells.iter().filter(|&&v| v != 0).count()
    }

    /// Sum of all cells — a crude "total knowledge" measure used by tests.
    pub fn total(&self) -> u64 {
        self.cells.iter().sum()
    }

    /// Encoded size in bytes when shipped whole: `n² × 8`.
    pub fn encoded_len(&self) -> usize {
        self.n * self.n * 8
    }

    /// Appends a self-describing binary image of the matrix to `out`
    /// (little-endian `u32` width, then the cells row-major).
    ///
    /// Used by the persistence layer; the wire codec in `aaa-net` has its
    /// own framing.
    pub fn write_bytes(&self, out: &mut Vec<u8>) {
        // Saturating `try_from`: an impossible width (> u32::MAX servers)
        // writes a prefix `read_bytes` rejects, instead of silently
        // truncating into a *valid-looking* smaller matrix.
        out.extend_from_slice(&u32::try_from(self.n).unwrap_or(u32::MAX).to_le_bytes());
        for v in &self.cells {
            out.extend_from_slice(&v.to_le_bytes());
        }
    }

    /// Reads an image written by [`MatrixClock::write_bytes`] from the
    /// front of `input`, returning the matrix and the bytes consumed.
    ///
    /// Returns `None` on truncated or invalid input.
    pub fn read_bytes(input: &[u8]) -> Option<(MatrixClock, usize)> {
        if input.len() < 4 {
            return None;
        }
        let n = u32::from_le_bytes(input[0..4].try_into().ok()?) as usize;
        if n == 0 || n > u16::MAX as usize {
            return None;
        }
        let need = 4 + n * n * 8;
        if input.len() < need {
            return None;
        }
        let mut cells = Vec::with_capacity(n * n);
        for i in 0..n * n {
            let at = 4 + i * 8;
            cells.push(u64::from_le_bytes(input[at..at + 8].try_into().ok()?));
        }
        Some((MatrixClock { n, cells }, need))
    }
}

impl fmt::Display for MatrixClock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for row in 0..self.n {
            if row > 0 {
                writeln!(f)?;
            }
            write!(f, "[")?;
            for col in 0..self.n {
                if col > 0 {
                    write!(f, " ")?;
                }
                write!(f, "{}", self.get(row, col))?;
            }
            write!(f, "]")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[should_panic(expected = "at least one process")]
    fn zero_width_rejected() {
        let _ = MatrixClock::new(0);
    }

    #[test]
    fn get_set_increment() {
        let mut m = MatrixClock::new(3);
        assert_eq!(m.get(2, 1), 0);
        m.set(2, 1, 5);
        assert_eq!(m.get(2, 1), 5);
        assert_eq!(m.increment(2, 1), 6);
        assert_eq!(m.width(), 3);
    }

    #[test]
    fn raise_only_grows() {
        let mut m = MatrixClock::new(2);
        assert!(m.raise(0, 1, 3));
        assert!(!m.raise(0, 1, 2));
        assert!(!m.raise(0, 1, 3));
        assert_eq!(m.get(0, 1), 3);
    }

    #[test]
    fn merge_reports_changes() {
        let mut a = MatrixClock::new(2);
        let mut b = MatrixClock::new(2);
        a.set(0, 0, 4);
        b.set(0, 0, 2);
        b.set(1, 1, 7);
        let mut changes = Vec::new();
        a.merge_max(&b, |r, c, v| changes.push((r, c, v)));
        assert_eq!(changes, vec![(1, 1, 7)]);
        assert_eq!(a.get(0, 0), 4);
        assert_eq!(a.get(1, 1), 7);
    }

    #[test]
    fn dominated_by_is_reflexive_and_respects_merge() {
        let mut a = MatrixClock::new(3);
        a.set(1, 2, 3);
        assert!(a.dominated_by(&a));
        let mut b = MatrixClock::new(3);
        b.set(0, 0, 1);
        assert!(!a.dominated_by(&b));
        let mut lub = a.clone();
        lub.merge_max(&b, |_, _, _| {});
        assert!(a.dominated_by(&lub));
        assert!(b.dominated_by(&lub));
    }

    #[test]
    fn column_extraction() {
        let mut m = MatrixClock::new(3);
        m.set(0, 1, 10);
        m.set(2, 1, 30);
        assert_eq!(m.column(1), vec![10, 0, 30]);
        let mut buf = vec![99; 3];
        m.column_into(0, &mut buf);
        assert_eq!(buf, vec![0, 0, 0]);
    }

    #[test]
    fn iter_nonzero_and_counts() {
        let mut m = MatrixClock::new(2);
        m.set(0, 1, 2);
        m.set(1, 0, 1);
        let cells: Vec<_> = m.iter_nonzero().collect();
        assert_eq!(cells, vec![(0, 1, 2), (1, 0, 1)]);
        assert_eq!(m.nonzero_count(), 2);
        assert_eq!(m.total(), 3);
        assert_eq!(m.encoded_len(), 32);
    }

    #[test]
    fn column_min_tracks_shared_knowledge() {
        let mut m = MatrixClock::new(3);
        // Everyone knows at least 2 messages went to process 1...
        m.set(0, 1, 5);
        m.set(1, 1, 2);
        m.set(2, 1, 3);
        assert_eq!(m.column_min(1), 2);
        // ...but nothing is commonly known about process 0.
        assert_eq!(m.column_min(0), 0);
    }

    #[test]
    fn column_min_rises_with_gossip() {
        // Replica a learns what others know about messages to replica 2;
        // the prunable prefix (column_min) grows monotonically with each
        // merge — the Wuu-Bernstein log-pruning pattern.
        let mut a = MatrixClock::new(3);
        a.set(0, 2, 4); // a sent 4 entries toward replica 2
        assert_eq!(a.column_min(2), 0);

        // Hearing from b (who saw 1 entry land) is not enough...
        let mut b = MatrixClock::new(3);
        b.set(0, 2, 4);
        b.set(1, 2, 1);
        a.merge_max(&b, |_, _, _| {});
        assert_eq!(a.column_min(2), 0, "replica 2's own row is still 0");

        // ...until replica 2's own knowledge row arrives.
        let mut ack = MatrixClock::new(3);
        ack.set(0, 2, 4);
        ack.set(1, 2, 1);
        ack.set(2, 2, 2);
        a.merge_max(&ack, |_, _, _| {});
        // Column 2 is now [4, 1, 2]: everyone knows about the first entry.
        assert_eq!(a.column_min(2), 1);
    }

    #[test]
    fn display_shape() {
        let mut m = MatrixClock::new(2);
        m.set(0, 1, 1);
        assert_eq!(m.to_string(), "[0 1]\n[0 0]");
    }

    #[test]
    #[should_panic(expected = "different widths")]
    fn merge_width_mismatch_panics() {
        let mut a = MatrixClock::new(2);
        let b = MatrixClock::new(3);
        a.merge_max(&b, |_, _, _| {});
    }
}
