//! Scalar logical clocks (Lamport 1978).
//!
//! The paper's introduction cites Lamport's logical time as the classical
//! device for ordering events; it induces a total order *compatible with*
//! causality but does not characterize it. We include it both for
//! completeness and because the Updates optimization (Appendix A) reuses the
//! same "logical instant" idea for its per-entry state tags.

use serde::{Deserialize, Serialize};

/// A Lamport scalar clock.
///
/// The clock ticks on every local event; on message receipt it jumps past
/// the timestamp carried by the message. Two causally related events always
/// have increasing timestamps; the converse does not hold.
///
/// # Examples
///
/// ```
/// use aaa_clocks::LamportClock;
///
/// let mut a = LamportClock::new();
/// let mut b = LamportClock::new();
/// let t = a.tick();          // a sends a message stamped `t`
/// let t_recv = b.observe(t); // b receives it
/// assert!(t_recv > t);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct LamportClock {
    now: u64,
}

impl LamportClock {
    /// Creates a clock at time zero.
    pub const fn new() -> Self {
        LamportClock { now: 0 }
    }

    /// Current value of the clock (timestamp of the latest local event).
    pub const fn now(&self) -> u64 {
        self.now
    }

    /// Advances the clock for a local or send event, returning the new
    /// timestamp.
    pub fn tick(&mut self) -> u64 {
        // Saturating: a clock stuck at `u64::MAX` is causally *late*,
        // which only delays comparisons — wrapping would reorder them.
        self.now = self.now.saturating_add(1);
        self.now
    }

    /// Incorporates a remote timestamp (receive event), returning the new
    /// local timestamp, which is strictly greater than both the previous
    /// local time and the remote stamp.
    pub fn observe(&mut self, remote: u64) -> u64 {
        self.now = self.now.max(remote).saturating_add(1);
        self.now
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_zero() {
        assert_eq!(LamportClock::new().now(), 0);
        assert_eq!(LamportClock::default().now(), 0);
    }

    #[test]
    fn tick_is_monotone() {
        let mut c = LamportClock::new();
        let a = c.tick();
        let b = c.tick();
        assert!(b > a);
        assert_eq!(c.now(), b);
    }

    #[test]
    fn observe_jumps_past_remote() {
        let mut c = LamportClock::new();
        c.tick();
        let t = c.observe(10);
        assert_eq!(t, 11);
        // An older remote stamp still advances local time.
        let t2 = c.observe(3);
        assert_eq!(t2, 12);
    }

    #[test]
    fn send_receive_preserves_happens_before() {
        let mut a = LamportClock::new();
        let mut b = LamportClock::new();
        for _ in 0..100 {
            let sent = a.tick();
            let recv = b.observe(sent);
            assert!(recv > sent);
            let reply = b.tick();
            let back = a.observe(reply);
            assert!(back > reply);
        }
    }
}
