//! Vector clocks and the Birman–Schiper–Stephenson causal broadcast.
//!
//! Vector clocks characterize causal precedence exactly (the paper's
//! references 14 and 21). The paper surveys vector-clock solutions as related work that
//! *requires causal broadcast* and therefore scales poorly; we implement the
//! BSS broadcast protocol ([`BssState`]) so the benchmark harness can compare
//! it against the matrix-clock point-to-point protocol.

use std::cmp::Ordering;
use std::fmt;

use aaa_base::DomainServerId;
use serde::{Deserialize, Serialize};

/// Result of comparing two vector clocks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CausalOrdering {
    /// The clocks are identical.
    Equal,
    /// The left clock causally precedes the right one.
    Before,
    /// The left clock causally follows the right one.
    After,
    /// Neither precedes the other: the events are concurrent.
    Concurrent,
}

/// A fixed-width vector clock over `n` processes.
///
/// # Examples
///
/// ```
/// use aaa_clocks::VectorClock;
/// use aaa_clocks::vector::CausalOrdering;
///
/// let mut a = VectorClock::new(2);
/// let mut b = VectorClock::new(2);
/// a.tick(0);
/// b.merge(&a);
/// b.tick(1);
/// assert_eq!(a.compare(&b), CausalOrdering::Before);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct VectorClock {
    counts: Vec<u64>,
}

impl VectorClock {
    /// Creates an all-zero clock over `n` processes.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "a vector clock needs at least one process");
        VectorClock { counts: vec![0; n] }
    }

    /// Number of processes the clock covers.
    pub fn len(&self) -> usize {
        self.counts.len()
    }

    /// Returns `true` if the clock covers zero processes (never, by
    /// construction; provided for API completeness).
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// The component for process `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn get(&self, i: usize) -> u64 {
        self.counts[i]
    }

    /// Increments the component of process `i`, returning the new value.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn tick(&mut self, i: usize) -> u64 {
        // Saturating: wrapping a vector-clock component would make future
        // events compare as past; saturation merely delays them.
        self.counts[i] = self.counts[i].saturating_add(1);
        self.counts[i]
    }

    /// Component-wise maximum with `other`.
    ///
    /// # Panics
    ///
    /// Panics if the clocks have different widths.
    pub fn merge(&mut self, other: &VectorClock) {
        assert_eq!(
            self.counts.len(),
            other.counts.len(),
            "cannot merge vector clocks of different widths"
        );
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a = (*a).max(*b);
        }
    }

    /// Compares two clocks under the causal partial order.
    ///
    /// # Panics
    ///
    /// Panics if the clocks have different widths.
    pub fn compare(&self, other: &VectorClock) -> CausalOrdering {
        assert_eq!(
            self.counts.len(),
            other.counts.len(),
            "cannot compare vector clocks of different widths"
        );
        let mut less = false;
        let mut greater = false;
        for (a, b) in self.counts.iter().zip(&other.counts) {
            match a.cmp(b) {
                Ordering::Less => less = true,
                Ordering::Greater => greater = true,
                Ordering::Equal => {}
            }
        }
        match (less, greater) {
            (false, false) => CausalOrdering::Equal,
            (true, false) => CausalOrdering::Before,
            (false, true) => CausalOrdering::After,
            (true, true) => CausalOrdering::Concurrent,
        }
    }

    /// Iterates over the components.
    pub fn iter(&self) -> impl Iterator<Item = u64> + '_ {
        self.counts.iter().copied()
    }

    /// Encoded size in bytes on the wire (one `u64` per component).
    pub fn encoded_len(&self) -> usize {
        8 * self.counts.len()
    }
}

impl PartialOrd for VectorClock {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        match self.compare(other) {
            CausalOrdering::Equal => Some(Ordering::Equal),
            CausalOrdering::Before => Some(Ordering::Less),
            CausalOrdering::After => Some(Ordering::Greater),
            CausalOrdering::Concurrent => None,
        }
    }
}

impl fmt::Display for VectorClock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, c) in self.counts.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{c}")?;
        }
        write!(f, "]")
    }
}

/// Per-process state of the Birman–Schiper–Stephenson causal broadcast.
///
/// Every process broadcasts to all `n` processes; a broadcast from `p` is
/// deliverable at `q` once `q` has delivered every broadcast that causally
/// precedes it. This is the classical vector-clock protocol the paper's
/// related-work section contrasts with matrix clocks: it needs only `O(n)`
/// timestamps but forces *broadcast* communication.
#[derive(Debug, Clone)]
pub struct BssState {
    me: DomainServerId,
    delivered: VectorClock,
}

impl BssState {
    /// Creates the BSS state for process `me` in a group of `n` processes.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or `me` is out of range.
    pub fn new(me: DomainServerId, n: usize) -> Self {
        assert!(me.as_usize() < n, "process id out of range");
        BssState {
            me,
            delivered: VectorClock::new(n),
        }
    }

    /// The local process identifier.
    pub fn me(&self) -> DomainServerId {
        self.me
    }

    /// Vector of broadcasts delivered so far, indexed by originator.
    pub fn delivered(&self) -> &VectorClock {
        &self.delivered
    }

    /// Stamps a new broadcast: returns the vector timestamp to attach.
    ///
    /// The returned stamp counts this broadcast itself in the sender's own
    /// component.
    pub fn stamp_broadcast(&mut self) -> VectorClock {
        self.delivered.tick(self.me.as_usize());
        self.delivered.clone()
    }

    /// Returns `true` if a broadcast from `from` stamped `stamp` is
    /// deliverable now.
    ///
    /// Deliverable iff `stamp[from] == delivered[from] + 1` and
    /// `stamp[k] <= delivered[k]` for every `k != from`.
    ///
    /// # Panics
    ///
    /// Panics if `stamp` has a different width than the local state.
    pub fn can_deliver(&self, from: DomainServerId, stamp: &VectorClock) -> bool {
        assert_eq!(stamp.len(), self.delivered.len());
        let f = from.as_usize();
        if stamp.get(f) != self.delivered.get(f).saturating_add(1) {
            return false;
        }
        (0..stamp.len()).all(|k| k == f || stamp.get(k) <= self.delivered.get(k))
    }

    /// Records delivery of a broadcast from `from` stamped `stamp`.
    ///
    /// # Panics
    ///
    /// Panics if the broadcast is not currently deliverable; call
    /// [`BssState::can_deliver`] first.
    pub fn deliver(&mut self, from: DomainServerId, stamp: &VectorClock) {
        assert!(
            self.can_deliver(from, stamp),
            "delivering a broadcast out of causal order"
        );
        self.delivered.merge(stamp);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(i: u16) -> DomainServerId {
        DomainServerId::new(i)
    }

    #[test]
    #[should_panic(expected = "at least one process")]
    fn zero_width_rejected() {
        let _ = VectorClock::new(0);
    }

    #[test]
    fn fresh_clocks_are_equal() {
        let a = VectorClock::new(3);
        let b = VectorClock::new(3);
        assert_eq!(a.compare(&b), CausalOrdering::Equal);
        assert_eq!(a.partial_cmp(&b), Some(Ordering::Equal));
    }

    #[test]
    fn tick_makes_after() {
        let a = VectorClock::new(3);
        let mut b = a.clone();
        b.tick(1);
        assert_eq!(b.compare(&a), CausalOrdering::After);
        assert_eq!(a.compare(&b), CausalOrdering::Before);
        assert!(a < b);
    }

    #[test]
    fn concurrent_ticks_are_concurrent() {
        let mut a = VectorClock::new(2);
        let mut b = VectorClock::new(2);
        a.tick(0);
        b.tick(1);
        assert_eq!(a.compare(&b), CausalOrdering::Concurrent);
        assert_eq!(a.partial_cmp(&b), None);
    }

    #[test]
    fn merge_is_lub() {
        let mut a = VectorClock::new(3);
        let mut b = VectorClock::new(3);
        a.tick(0);
        a.tick(0);
        b.tick(2);
        let mut m = a.clone();
        m.merge(&b);
        assert_eq!(m.get(0), 2);
        assert_eq!(m.get(1), 0);
        assert_eq!(m.get(2), 1);
        // merged clock dominates both inputs
        assert_ne!(m.compare(&a), CausalOrdering::Before);
        assert_ne!(m.compare(&b), CausalOrdering::Before);
    }

    #[test]
    fn display_and_len() {
        let mut a = VectorClock::new(3);
        a.tick(1);
        assert_eq!(a.to_string(), "[0,1,0]");
        assert_eq!(a.len(), 3);
        assert!(!a.is_empty());
        assert_eq!(a.encoded_len(), 24);
    }

    #[test]
    #[should_panic(expected = "different widths")]
    fn merge_width_mismatch_panics() {
        let mut a = VectorClock::new(2);
        let b = VectorClock::new(3);
        a.merge(&b);
    }

    #[test]
    fn bss_simple_delivery() {
        let mut p0 = BssState::new(d(0), 2);
        let mut p1 = BssState::new(d(1), 2);
        let s = p0.stamp_broadcast();
        assert!(p1.can_deliver(d(0), &s));
        p1.deliver(d(0), &s);
        assert_eq!(p1.delivered().get(0), 1);
    }

    #[test]
    fn bss_postpones_out_of_order() {
        // p0 broadcasts m1 then m2; p1 sees m2 first and must wait.
        let mut p0 = BssState::new(d(0), 2);
        let mut p1 = BssState::new(d(1), 2);
        let m1 = p0.stamp_broadcast();
        let m2 = p0.stamp_broadcast();
        assert!(!p1.can_deliver(d(0), &m2));
        p1.deliver(d(0), &m1);
        assert!(p1.can_deliver(d(0), &m2));
        p1.deliver(d(0), &m2);
    }

    #[test]
    fn bss_transitive_dependency() {
        // p0 broadcasts m1; p1 delivers it then broadcasts m2.
        // p2 must not deliver m2 before m1.
        let mut p0 = BssState::new(d(0), 3);
        let mut p1 = BssState::new(d(1), 3);
        let p2 = BssState::new(d(2), 3);
        let m1 = p0.stamp_broadcast();
        p1.deliver(d(0), &m1);
        let m2 = p1.stamp_broadcast();
        assert!(!p2.can_deliver(d(1), &m2));
        let mut p2 = p2;
        p2.deliver(d(0), &m1);
        assert!(p2.can_deliver(d(1), &m2));
    }

    #[test]
    #[should_panic(expected = "out of causal order")]
    fn bss_deliver_out_of_order_panics() {
        let mut p0 = BssState::new(d(0), 2);
        let mut p1 = BssState::new(d(1), 2);
        let _m1 = p0.stamp_broadcast();
        let m2 = p0.stamp_broadcast();
        p1.deliver(d(0), &m2);
    }
}
