//! The four built-in [`ClockEngine`] implementations, one per
//! [`StampMode`].
//!
//! | Engine | Stamp | Wire cost | Shines when |
//! |---|---|---|---|
//! | [`FullEngine`] | [`Stamp::Full`] | `8n² + 4` B | debugging; tiny domains |
//! | [`UpdatesEngine`] | [`Stamp::Delta`] | `O(changed)` | general traffic (Appendix A) |
//! | [`ReducedEngine`] | [`Stamp::Reduced`] | `16n + O(extras)` B | large `n`, pairwise traffic |
//! | [`HybridEngine`] | [`Stamp::Hybrid`] | `O(changed − known)` | pub/sub, echo-heavy traffic |
//!
//! All four reconstruct the exact sender matrix in the receiver's column
//! (the §4.2 predicate column), so they take identical delivery
//! decisions; `tests/conformance.rs` checks this observationally and the
//! engine-specific soundness arguments live in `DESIGN.md` §13.

use aaa_base::DomainServerId;
use serde::{Deserialize, Serialize};

use crate::engine::{
    read_optional_matrices, write_optional_matrices, Batching, ClockEngine, EngineCore,
};
use crate::matrix::MatrixClock;
use crate::protocol::PendingStamp;
use crate::stamp::{Stamp, StampMode};

/// Implements the state-accessor and core-delegating portions of
/// [`ClockEngine`] for an engine with a `core: EngineCore` field.
macro_rules! delegate_core {
    ($mode:expr) => {
        fn me(&self) -> DomainServerId {
            self.core.me
        }

        fn n(&self) -> usize {
            self.core.n
        }

        fn mode(&self) -> StampMode {
            $mode
        }

        fn sent(&self) -> &MatrixClock {
            &self.core.sent
        }

        fn delivered_from(&self, from: DomainServerId) -> u64 {
            self.core.deliv[from.as_usize()]
        }

        fn delivered_total(&self) -> u64 {
            self.core.delivered_total()
        }

        fn can_deliver(&self, from: DomainServerId, pending: &PendingStamp) -> bool {
            self.core.can_deliver(from, pending)
        }

        fn deliver(&mut self, from: DomainServerId, pending: &PendingStamp) {
            self.core.deliver(from, pending)
        }
    };
}

/// [`StampMode::Full`]: ship the sender's entire matrix with every
/// message. `O(n²)` bytes per stamp, zero reconstruction state of its own
/// (a per-sender image is still kept so zero-byte [`Stamp::GroupNext`]
/// continuations work in batched bursts).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FullEngine {
    core: EngineCore,
}

impl FullEngine {
    /// Creates the engine for server `me` in a domain of `n` servers.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or `me` is out of range.
    pub fn new(me: DomainServerId, n: usize) -> Self {
        FullEngine {
            core: EngineCore::new(me, n),
        }
    }

    pub(crate) fn from_core(core: EngineCore) -> Self {
        FullEngine { core }
    }
}

impl ClockEngine for FullEngine {
    delegate_core!(StampMode::Full);

    fn stamp_send(&mut self, to: DomainServerId, batching: Batching) -> Stamp {
        self.core.assert_send_target(to);
        if batching == Batching::Grouped && self.core.try_group_continuation(to) {
            return Stamp::GroupNext;
        }
        self.core.bump_send(to);
        Stamp::Full(self.core.sent.clone())
    }

    fn on_frame(&mut self, from: DomainServerId, stamp: Stamp) -> PendingStamp {
        assert!(from.as_usize() < self.core.n, "sender {from} out of range");
        match stamp {
            Stamp::Full(m) => {
                assert_eq!(m.width(), self.core.n, "stamp width mismatch");
                // Keep a per-sender image so zero-byte GroupNext
                // continuations can be reconstructed in Full mode too.
                self.core.images[from.as_usize()] = Some(m.clone());
                PendingStamp::from_matrix(m)
            }
            Stamp::GroupNext => self.core.continue_group(from),
            other => EngineCore::stamp_mode_mismatch(StampMode::Full, &other),
        }
    }

    fn write_bytes(&self, out: &mut Vec<u8>) {
        self.core.write_bytes(0, out);
    }
}

/// [`StampMode::Updates`]: ship only the entries modified since the last
/// send to the same peer — the paper's Appendix-A optimized algorithm.
/// The receiver rebuilds a per-sender image incrementally over the FIFO
/// link, so every stamp is exact.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct UpdatesEngine {
    core: EngineCore,
}

impl UpdatesEngine {
    /// Creates the engine for server `me` in a domain of `n` servers.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or `me` is out of range.
    pub fn new(me: DomainServerId, n: usize) -> Self {
        UpdatesEngine {
            core: EngineCore::new(me, n),
        }
    }

    pub(crate) fn from_core(core: EngineCore) -> Self {
        UpdatesEngine { core }
    }
}

impl ClockEngine for UpdatesEngine {
    delegate_core!(StampMode::Updates);

    fn stamp_send(&mut self, to: DomainServerId, batching: Batching) -> Stamp {
        self.core.assert_send_target(to);
        if batching == Batching::Grouped && self.core.try_group_continuation(to) {
            return Stamp::GroupNext;
        }
        let since = self.core.bump_send(to);
        Stamp::Delta(self.core.collect_changed(since, |_, _| true))
    }

    fn on_frame(&mut self, from: DomainServerId, stamp: Stamp) -> PendingStamp {
        assert!(from.as_usize() < self.core.n, "sender {from} out of range");
        match stamp {
            Stamp::Delta(entries) => {
                let image = self.core.image_mut(from);
                for e in &entries {
                    image.raise(e.row as usize, e.col as usize, e.value);
                }
                PendingStamp::from_matrix(image.clone())
            }
            Stamp::GroupNext => self.core.continue_group(from),
            other => EngineCore::stamp_mode_mismatch(StampMode::Updates, &other),
        }
    }

    fn write_bytes(&self, out: &mut Vec<u8>) {
        self.core.write_bytes(1, out);
    }
}

/// [`StampMode::Reduced`]: Drummond–Barbosa reduced matrix clocks, made
/// exact. Each stamp ships the sender's whole row (`SENT[me][*]`), the
/// destination's whole column (`SENT[*][to]`) and the *correction set* —
/// third-party entries (`row ∉ {me, to}`, `col ≠ to`) modified since the
/// last send to this peer.
///
/// The two dense vectors alone are the literal reduction from the
/// related-work paper, but they are **unsound** for the §4.2 delivery
/// predicate: knowledge about a third party's sends to a fourth party
/// (`SENT[k][l]`) travels on neither vector, and three hops later an
/// under-informed column reorders delivery (DESIGN.md §13 carries the
/// counterexample). The correction set restores exactness; it is empty
/// for pairwise traffic, so the common-case stamp stays a bounded
/// `16n + 8` bytes regardless of how busy the rest of the domain is —
/// unlike [`UpdatesEngine`], whose delta grows with every cell the domain
/// touched since the last send.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReducedEngine {
    core: EngineCore,
}

impl ReducedEngine {
    /// Creates the engine for server `me` in a domain of `n` servers.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or `me` is out of range.
    pub fn new(me: DomainServerId, n: usize) -> Self {
        ReducedEngine {
            core: EngineCore::new(me, n),
        }
    }

    pub(crate) fn from_core(core: EngineCore) -> Self {
        ReducedEngine { core }
    }
}

impl ClockEngine for ReducedEngine {
    delegate_core!(StampMode::Reduced);

    fn stamp_send(&mut self, to: DomainServerId, batching: Batching) -> Stamp {
        self.core.assert_send_target(to);
        if batching == Batching::Grouped && self.core.try_group_continuation(to) {
            return Stamp::GroupNext;
        }
        let since = self.core.bump_send(to);
        let me = self.core.me.as_usize();
        let t = to.as_usize();
        // Everything the row/column vectors miss: third-party knowledge
        // changed since the last send to this peer. The peer's own row is
        // also skipped — only the peer increments it, so its copy dominates
        // and the delivery merge loses nothing.
        let extra = self
            .core
            .collect_changed(since, |r, c| r != me && r != t && c != t);
        let row = (0..self.core.n)
            .map(|l| self.core.sent.get(me, l))
            .collect();
        let col = self.core.sent.column(t);
        Stamp::Reduced { row, col, extra }
    }

    fn on_frame(&mut self, from: DomainServerId, stamp: Stamp) -> PendingStamp {
        assert!(from.as_usize() < self.core.n, "sender {from} out of range");
        match stamp {
            Stamp::Reduced { row, col, extra } => {
                let n = self.core.n;
                assert_eq!(row.len(), n, "reduced stamp row width mismatch");
                assert_eq!(col.len(), n, "reduced stamp column width mismatch");
                let me = self.core.me.as_usize();
                let f = from.as_usize();
                let image = self.core.image_mut(from);
                for (l, &v) in row.iter().enumerate() {
                    image.raise(f, l, v);
                }
                for (k, &v) in col.iter().enumerate() {
                    image.raise(k, me, v);
                }
                for e in &extra {
                    image.raise(e.row as usize, e.col as usize, e.value);
                }
                PendingStamp::from_matrix(image.clone())
            }
            Stamp::GroupNext => self.core.continue_group(from),
            other => EngineCore::stamp_mode_mismatch(StampMode::Reduced, &other),
        }
    }

    fn write_bytes(&self, out: &mut Vec<u8>) {
        self.core.write_bytes(2, out);
    }
}

/// [`StampMode::Hybrid`]: Almeida-style sender-side knowledge buffering.
/// Each stamp is an Updates delta pruned against `know[to]`, a per-peer
/// lower bound on what that peer's own matrix already contains:
///
/// - entries in the peer's own row (`row == to`) are never shipped — only
///   the peer increments its row, so its own copy always dominates;
/// - entries the knowledge model already attributes to the peer
///   (`know[to][r][c] ≥ SENT[r][c]`) are skipped — the delivery merge
///   loses nothing the peer already has;
/// - entries in the peer's column (`col == to`) are **always** shipped
///   when changed: that column is the §4.2 delivery predicate, and "the
///   peer *knows of* the message" does not imply "the peer *delivered*
///   it", so pruning there would release messages early.
///
/// `know[to]` is raised by everything shipped to `to` (FIFO links land it
/// in the peer's image before any later frame) and by everything received
/// *from* `to` (a peer's stamp is a snapshot of its own matrix). The
/// pruning pays off on echo-shaped traffic — pub/sub replies, ping-pong —
/// where Updates keeps re-shipping counters the peer originated.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HybridEngine {
    core: EngineCore,
    /// `know[j]`: lower bound on peer `j`'s own `SENT` matrix.
    know: Vec<Option<MatrixClock>>,
}

impl HybridEngine {
    /// Creates the engine for server `me` in a domain of `n` servers.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or `me` is out of range.
    pub fn new(me: DomainServerId, n: usize) -> Self {
        let core = EngineCore::new(me, n);
        let know = vec![None; n];
        HybridEngine { core, know }
    }

    fn know_mut(&mut self, peer: usize) -> &mut MatrixClock {
        let n = self.core.n;
        self.know[peer].get_or_insert_with(|| MatrixClock::new(n))
    }
}

impl ClockEngine for HybridEngine {
    delegate_core!(StampMode::Hybrid);

    fn stamp_send(&mut self, to: DomainServerId, batching: Batching) -> Stamp {
        self.core.assert_send_target(to);
        let me = self.core.me.as_usize();
        let t = to.as_usize();
        if batching == Batching::Grouped && self.core.try_group_continuation(to) {
            // The receiver's image gains the increment, so the model does.
            let v = self.core.sent.get(me, t);
            self.know_mut(t).raise(me, t, v);
            return Stamp::GroupNext;
        }
        let since = self.core.bump_send(to);
        let know = &self.know[t];
        let entries = self.core.collect_changed(since, |r, c| {
            if r == t {
                return false; // the peer's own row — its copy dominates
            }
            if c == t {
                return true; // the predicate column must stay exact
            }
            match know {
                Some(k) => k.get(r, c) < self.core.sent.get(r, c),
                None => true,
            }
        });
        let k = self.know_mut(t);
        for e in &entries {
            k.raise(e.row as usize, e.col as usize, e.value);
        }
        Stamp::Hybrid(entries)
    }

    fn on_frame(&mut self, from: DomainServerId, stamp: Stamp) -> PendingStamp {
        assert!(from.as_usize() < self.core.n, "sender {from} out of range");
        let f = from.as_usize();
        match stamp {
            Stamp::Hybrid(entries) => {
                let image = self.core.image_mut(from);
                for e in &entries {
                    image.raise(e.row as usize, e.col as usize, e.value);
                }
                let pending = PendingStamp::from_matrix(image.clone());
                // A peer's stamp is a snapshot of its own matrix: raise
                // the knowledge model with everything it conveyed.
                let k = self.know_mut(f);
                for e in &entries {
                    k.raise(e.row as usize, e.col as usize, e.value);
                }
                pending
            }
            Stamp::GroupNext => {
                let pending = self.core.continue_group(from);
                let me = self.core.me.as_usize();
                let v = pending.matrix().get(f, me);
                self.know_mut(f).raise(f, me, v);
                pending
            }
            other => EngineCore::stamp_mode_mismatch(StampMode::Hybrid, &other),
        }
    }

    fn write_bytes(&self, out: &mut Vec<u8>) {
        self.core.write_bytes(3, out);
        write_optional_matrices(&self.know, out);
    }
}

impl HybridEngine {
    /// Reads the hybrid-specific tail (the knowledge model) that follows
    /// the shared core image, returning the engine and the bytes consumed
    /// *beyond* the core.
    pub(crate) fn read_tail(core: EngineCore, input: &[u8]) -> Option<(HybridEngine, usize)> {
        let mut at = 0usize;
        let know = read_optional_matrices(input, &mut at, core.n)?;
        Some((HybridEngine { core, know }, at))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(i: u16) -> DomainServerId {
        DomainServerId::new(i)
    }

    /// The transitive chain that breaks the literal two-vector reduction:
    /// `k → l` (m0), `k → i` (m1), `i → j` (m2), `j → l` (m3). Knowledge
    /// of `SENT[k][l]` reaches `j` only via the correction set, and `l`
    /// must postpone m3 until m0 is delivered.
    #[test]
    fn reduced_correction_set_carries_third_party_knowledge() {
        let n = 4;
        let (k, l, i, j) = (d(0), d(1), d(2), d(3));
        let mut s_k = ReducedEngine::new(k, n);
        let mut s_l = ReducedEngine::new(l, n);
        let mut s_i = ReducedEngine::new(i, n);
        let mut s_j = ReducedEngine::new(j, n);

        let m0 = s_k.stamp_send(l, Batching::Single); // k -> l, in flight
        let m1 = s_k.stamp_send(i, Batching::Single); // k -> i
        let p1 = s_i.on_frame(k, m1);
        assert!(s_i.can_deliver(k, &p1));
        s_i.deliver(k, &p1);

        // i -> j: SENT[k][l] is third-party knowledge for this link — it
        // must ride in the correction set.
        let m2 = s_i.stamp_send(j, Batching::Single);
        if let Stamp::Reduced { ref extra, .. } = m2 {
            assert!(
                extra
                    .iter()
                    .any(|e| e.row == k.as_u16() && e.col == l.as_u16() && e.value == 1),
                "SENT[k][l] missing from the correction set: {extra:?}"
            );
        } else {
            panic!("reduced engine emitted {}", m2.kind());
        }
        let p2 = s_j.on_frame(i, m2);
        s_j.deliver(i, &p2);

        // j -> l arrives before k's original message: l must postpone it.
        let m3 = s_j.stamp_send(l, Batching::Single);
        let p3 = s_l.on_frame(j, m3);
        assert!(
            !s_l.can_deliver(j, &p3),
            "m3 causally follows m0 and must wait for it"
        );
        let p0 = s_l.on_frame(k, m0);
        assert!(s_l.can_deliver(k, &p0));
        s_l.deliver(k, &p0);
        assert!(s_l.can_deliver(j, &p3));
        s_l.deliver(j, &p3);
    }

    #[test]
    fn reduced_pairwise_stamp_is_bounded() {
        let n = 32;
        let mut a = ReducedEngine::new(d(0), n);
        let mut b = ReducedEngine::new(d(1), n);
        for round in 0..10 {
            let s = a.stamp_send(d(1), Batching::Single);
            if let Stamp::Reduced { ref extra, .. } = s {
                assert!(
                    extra.is_empty(),
                    "pairwise traffic needs no correction (round {round}): {extra:?}"
                );
            }
            assert_eq!(s.encoded_len(), 4 + 2 * n * 8 + 4);
            let p = b.on_frame(d(0), s);
            b.deliver(d(0), &p);
            let r = b.stamp_send(d(0), Batching::Single);
            let pr = a.on_frame(d(1), r);
            a.deliver(d(1), &pr);
        }
        assert_eq!(b.delivered_total(), 10);
    }

    #[test]
    fn hybrid_prunes_the_peers_own_row_on_echo_traffic() {
        // Ping-pong: after a delivers b's echo, a's matrix has changed in
        // row b — which Updates would ship straight back to b. Hybrid
        // must not.
        let mut a = HybridEngine::new(d(0), 3);
        let mut b = HybridEngine::new(d(1), 3);
        let s1 = a.stamp_send(d(1), Batching::Single);
        let p1 = b.on_frame(d(0), s1);
        b.deliver(d(0), &p1);
        let r1 = b.stamp_send(d(0), Batching::Single);
        let pr1 = a.on_frame(d(1), r1);
        a.deliver(d(1), &pr1);

        // Steady state: a's second ping conveys only its own counter.
        let s2 = a.stamp_send(d(1), Batching::Single);
        match &s2 {
            Stamp::Hybrid(entries) => {
                assert!(
                    entries.iter().all(|e| e.row != 1),
                    "b's own row shipped back to b: {entries:?}"
                );
                assert_eq!(entries.len(), 1, "steady-state ping: {entries:?}");
            }
            other => panic!("hybrid engine emitted {}", other.kind()),
        }
        let p2 = b.on_frame(d(0), s2);
        assert!(b.can_deliver(d(0), &p2));
        b.deliver(d(0), &p2);
    }

    #[test]
    fn hybrid_never_prunes_the_predicate_column() {
        // a sends to c, then to b; b forwards to c. The (a, c) counter is
        // in c's predicate column: b's stamp to c must carry it even
        // though b could believe c "knows" of it, because knowing is not
        // delivering.
        let (a_id, b_id, c_id) = (d(0), d(1), d(2));
        let mut a = HybridEngine::new(a_id, 3);
        let mut b = HybridEngine::new(b_id, 3);
        let mut c = HybridEngine::new(c_id, 3);

        let m_ac = a.stamp_send(c_id, Batching::Single); // in flight
        let m_ab = a.stamp_send(b_id, Batching::Single);
        let p_ab = b.on_frame(a_id, m_ab);
        b.deliver(a_id, &p_ab);

        let m_bc = b.stamp_send(c_id, Batching::Single);
        match &m_bc {
            Stamp::Hybrid(entries) => assert!(
                entries
                    .iter()
                    .any(|e| e.row == 0 && e.col == 2 && e.value == 1),
                "predicate-column entry (a, c) pruned: {entries:?}"
            ),
            other => panic!("hybrid engine emitted {}", other.kind()),
        }
        let p_bc = c.on_frame(b_id, m_bc);
        assert!(
            !c.can_deliver(b_id, &p_bc),
            "b's message causally follows a's and must wait"
        );
        let p_ac = c.on_frame(a_id, m_ac);
        c.deliver(a_id, &p_ac);
        assert!(c.can_deliver(b_id, &p_bc));
        c.deliver(b_id, &p_bc);
    }

    #[test]
    fn hybrid_smaller_than_updates_on_echo_traffic() {
        let n = 8;
        let mut ha = HybridEngine::new(d(0), n);
        let mut hb = HybridEngine::new(d(1), n);
        let mut ua = UpdatesEngine::new(d(0), n);
        let mut ub = UpdatesEngine::new(d(1), n);
        let (mut hybrid_bytes, mut updates_bytes) = (0usize, 0usize);
        for _ in 0..40 {
            let hs = ha.stamp_send(d(1), Batching::Single);
            hybrid_bytes += hs.encoded_len();
            let hp = hb.on_frame(d(0), hs);
            hb.deliver(d(0), &hp);
            let hr = hb.stamp_send(d(0), Batching::Single);
            hybrid_bytes += hr.encoded_len();
            let hpr = ha.on_frame(d(1), hr);
            ha.deliver(d(1), &hpr);

            let us = ua.stamp_send(d(1), Batching::Single);
            updates_bytes += us.encoded_len();
            let up = ub.on_frame(d(0), us);
            ub.deliver(d(0), &up);
            let ur = ub.stamp_send(d(0), Batching::Single);
            updates_bytes += ur.encoded_len();
            let upr = ua.on_frame(d(1), ur);
            ua.deliver(d(1), &upr);
        }
        assert!(
            hybrid_bytes < updates_bytes,
            "hybrid ({hybrid_bytes}B) should undercut updates ({updates_bytes}B) on echoes"
        );
        // Same deliveries either way.
        assert_eq!(ha.delivered_total(), ua.delivered_total());
        assert_eq!(hb.sent(), ub.sent());
    }

    #[test]
    fn every_engine_supports_group_continuations() {
        for mode in StampMode::ALL {
            let mut a = crate::CausalState::new(d(0), 3, mode);
            let mut b = crate::CausalState::new(d(1), 3, mode);
            let first = a.stamp_send(d(1), Batching::Grouped);
            assert!(!first.is_group_next(), "{mode}: first frame needs a stamp");
            let second = a.stamp_send(d(1), Batching::Grouped);
            assert!(second.is_group_next(), "{mode}: burst must collapse");
            for s in [first, second] {
                let p = b.on_frame(d(0), s);
                assert!(b.can_deliver(d(0), &p));
                b.deliver(d(0), &p);
            }
            assert_eq!(b.delivered_from(d(0)), 2, "{mode}");
        }
    }
}
