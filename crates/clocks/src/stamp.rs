//! Message timestamps: full matrices, Update deltas (Appendix A), and the
//! bounded-space encodings of the related work.
//!
//! Every causally ordered message carries a [`Stamp`]. The shape of the
//! stamp is chosen by the channel's [`StampMode`]:
//!
//! - [`StampMode::Full`] ships the sender's whole matrix — `O(n²)` bytes;
//! - [`StampMode::Updates`] ships only the entries modified since the last
//!   message to the same peer — the *Updates optimized algorithm* of the
//!   paper's Appendix A, `O(n)` bytes in the common case (the paper notes
//!   `O(n²)` worst case);
//! - [`StampMode::Reduced`] ships the sender's row, the destination's
//!   column and a (usually empty) third-party correction set — the
//!   Drummond–Barbosa reduced-matrix-clock idea, `O(n)` bytes *bounded*;
//! - [`StampMode::Hybrid`] ships an Updates delta pruned against a
//!   sender-side model of what the peer already knows — Almeida-style
//!   knowledge buffering, smallest on pub/sub echo traffic.
//!
//! All four modes reconstruct the exact sender matrix on the receiving
//! side, so they take identical delivery decisions (the conformance suite
//! in `tests/conformance.rs` proves it on seeded schedules).

use std::fmt;
use std::str::FromStr;

use serde::{Deserialize, Serialize};

use crate::matrix::MatrixClock;

/// How channel stamps are encoded on the wire.
///
/// Marked `#[non_exhaustive]`: new engines may appear behind this switch
/// (exactly how [`StampMode::Reduced`] and [`StampMode::Hybrid`] arrived),
/// so downstream matches must keep a wildcard arm.
#[non_exhaustive]
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub enum StampMode {
    /// Ship the sender's entire matrix with every message.
    Full,
    /// Ship only the entries modified since the last send to the same peer
    /// (Appendix A). Requires FIFO links, which the AAA channel guarantees.
    #[default]
    Updates,
    /// Ship the sender's row, the destination's column, and the modified
    /// third-party entries neither vector covers (Drummond–Barbosa reduced
    /// matrix clocks, made exact for the §4.2 delivery predicate).
    Reduced,
    /// Ship an Updates delta pruned against the sender's model of the
    /// peer's knowledge (Almeida-style sender-side buffering).
    Hybrid,
}

impl StampMode {
    /// Every stamp mode, for mode-generic tests and benchmarks.
    pub const ALL: [StampMode; 4] = [
        StampMode::Full,
        StampMode::Updates,
        StampMode::Reduced,
        StampMode::Hybrid,
    ];

    /// The mode's canonical lower-case name (also its [`FromStr`] form).
    pub fn name(self) -> &'static str {
        match self {
            StampMode::Full => "full",
            StampMode::Updates => "updates",
            StampMode::Reduced => "reduced",
            StampMode::Hybrid => "hybrid",
        }
    }
}

impl fmt::Display for StampMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Error returned when parsing an unknown [`StampMode`] name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownStampMode(String);

impl fmt::Display for UnknownStampMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown stamp mode `{}` (expected full, updates, reduced or hybrid)",
            self.0
        )
    }
}

impl std::error::Error for UnknownStampMode {}

impl FromStr for StampMode {
    type Err = UnknownStampMode;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "full" => Ok(StampMode::Full),
            "updates" => Ok(StampMode::Updates),
            "reduced" => Ok(StampMode::Reduced),
            "hybrid" => Ok(StampMode::Hybrid),
            _ => Err(UnknownStampMode(s.to_owned())),
        }
    }
}

/// One modified matrix entry `(row, col) = value`, as shipped by the
/// Updates algorithm.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct UpdateEntry {
    /// Sender index of the counted messages.
    pub row: u16,
    /// Receiver index of the counted messages.
    pub col: u16,
    /// New value of the cell.
    pub value: u64,
}

impl UpdateEntry {
    /// Bytes one entry occupies on the wire: two `u16` coordinates plus a
    /// `u64` value.
    pub const WIRE_LEN: usize = 2 + 2 + 8;
}

/// The causal timestamp piggybacked on a message.
///
/// `Ord` is derived so model-checker states that embed in-flight stamps
/// (`aaa-audit`'s `EngineModel`) can be memoized in ordered sets; the
/// ordering itself has no protocol meaning.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Stamp {
    /// The sender's full matrix.
    Full(MatrixClock),
    /// The entries modified since the last send to this peer.
    Delta(Vec<UpdateEntry>),
    /// Group-commit continuation: "the previous frame's stamp, with
    /// `SENT[sender][receiver]` incremented by one".
    ///
    /// Emitted by [`CausalState::stamp_send`] with [`Batching::Grouped`]
    /// for the second and later messages of a batch to the same peer when
    /// nothing else in the sender's matrix changed in between. The
    /// receiver reconstructs the exact stamp from its per-sender image, so
    /// the wire cost is zero payload bytes — the amortization that makes
    /// group-commit batching collapse the per-message stamp cost (cf.
    /// hybrid buffering / constant-size causal broadcast in the related
    /// work). Every engine understands it.
    ///
    /// Sound only over reliable FIFO links, which AAA links guarantee.
    ///
    /// [`CausalState::stamp_send`]: crate::CausalState::stamp_send
    /// [`Batching::Grouped`]: crate::Batching::Grouped
    GroupNext,
    /// Reduced-matrix stamp: the sender's whole row (`SENT[sender][*]`),
    /// the destination's whole column (`SENT[*][receiver]`), and the
    /// third-party entries modified since the last send to this peer that
    /// neither vector covers.
    ///
    /// The two dense vectors are the Drummond–Barbosa reduction; `extra`
    /// is the correction that keeps the receiver's image *exact* (two
    /// vectors alone under-transfer third-party knowledge and violate the
    /// §4.2 predicate transitively — see `DESIGN.md` §13). `extra` is
    /// empty for pairwise traffic, so the stamp is a bounded `16n + O(1)`
    /// bytes in the common case.
    Reduced {
        /// The sender's row: `SENT[sender][l]` for every `l`.
        row: Vec<u64>,
        /// The destination's column: `SENT[k][receiver]` for every `k`.
        col: Vec<u64>,
        /// Modified entries outside the shipped row and column.
        extra: Vec<UpdateEntry>,
    },
    /// Hybrid stamp: an Updates delta minus the entries the sender can
    /// prove the receiver already knows (its own row, and any cell the
    /// sender's knowledge model already attributes to the peer). Entries
    /// in the receiver's own column are never pruned — that column is the
    /// §4.2 delivery predicate and must stay exact.
    Hybrid(Vec<UpdateEntry>),
}

impl Stamp {
    /// Size of the stamp on the wire, in bytes.
    ///
    /// Full stamps cost `n² × 8` bytes; delta and hybrid stamps cost a
    /// 4-byte count plus [`UpdateEntry::WIRE_LEN`] per entry; reduced
    /// stamps cost two dense `u64` vectors plus their correction entries;
    /// group continuations cost nothing beyond their tag. This is the
    /// quantity plotted by the Appendix-A ablation experiment and the
    /// stamp-mode shootout.
    pub fn encoded_len(&self) -> usize {
        match self {
            Stamp::Full(m) => 4 + m.encoded_len(),
            Stamp::Delta(entries) | Stamp::Hybrid(entries) => {
                4 + entries.len() * UpdateEntry::WIRE_LEN
            }
            Stamp::GroupNext => 0,
            Stamp::Reduced { row, col, extra } => {
                4 + (row.len() + col.len()) * 8 + 4 + extra.len() * UpdateEntry::WIRE_LEN
            }
        }
    }

    /// Number of matrix entries conveyed.
    pub fn entry_count(&self) -> usize {
        match self {
            Stamp::Full(m) => m.width() * m.width(),
            Stamp::Delta(entries) | Stamp::Hybrid(entries) => entries.len(),
            Stamp::GroupNext => 1,
            Stamp::Reduced { row, col, extra } => row.len() + col.len() + extra.len(),
        }
    }

    /// The stamp kind's name, for diagnostics.
    pub fn kind(&self) -> &'static str {
        match self {
            Stamp::Full(_) => "Full",
            Stamp::Delta(_) => "Delta",
            Stamp::GroupNext => "GroupNext",
            Stamp::Reduced { .. } => "Reduced",
            Stamp::Hybrid(_) => "Hybrid",
        }
    }

    /// Returns `true` if this is a delta stamp.
    pub fn is_delta(&self) -> bool {
        matches!(self, Stamp::Delta(_))
    }

    /// Returns `true` if this is a group-commit continuation stamp.
    pub fn is_group_next(&self) -> bool {
        matches!(self, Stamp::GroupNext)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_stamp_size_is_quadratic() {
        let s = Stamp::Full(MatrixClock::new(10));
        assert_eq!(s.encoded_len(), 4 + 100 * 8);
        assert_eq!(s.entry_count(), 100);
        assert!(!s.is_delta());
    }

    #[test]
    fn delta_stamp_size_is_linear_in_entries() {
        let entries = vec![
            UpdateEntry {
                row: 0,
                col: 1,
                value: 3,
            },
            UpdateEntry {
                row: 2,
                col: 1,
                value: 9,
            },
        ];
        let s = Stamp::Delta(entries);
        assert_eq!(s.encoded_len(), 4 + 2 * UpdateEntry::WIRE_LEN);
        assert_eq!(s.entry_count(), 2);
        assert!(s.is_delta());
    }

    #[test]
    fn default_mode_is_updates() {
        assert_eq!(StampMode::default(), StampMode::Updates);
    }

    #[test]
    fn empty_delta_is_cheap() {
        let s = Stamp::Delta(Vec::new());
        assert_eq!(s.encoded_len(), 4);
        assert_eq!(s.entry_count(), 0);
    }

    #[test]
    fn reduced_stamp_size_is_linear_in_width() {
        let n = 10;
        let s = Stamp::Reduced {
            row: vec![0; n],
            col: vec![0; n],
            extra: vec![UpdateEntry {
                row: 3,
                col: 4,
                value: 7,
            }],
        };
        assert_eq!(s.encoded_len(), 4 + 2 * n * 8 + 4 + UpdateEntry::WIRE_LEN);
        assert_eq!(s.entry_count(), 2 * n + 1);
        assert_eq!(s.kind(), "Reduced");
    }

    #[test]
    fn hybrid_stamp_size_matches_delta() {
        let entries = vec![UpdateEntry {
            row: 0,
            col: 1,
            value: 5,
        }];
        assert_eq!(
            Stamp::Hybrid(entries.clone()).encoded_len(),
            Stamp::Delta(entries).encoded_len()
        );
    }

    #[test]
    fn mode_names_roundtrip_through_fromstr() {
        for mode in StampMode::ALL {
            assert_eq!(mode.to_string().parse::<StampMode>(), Ok(mode));
            // Case-insensitive, as CI env vars tend to shout.
            assert_eq!(
                mode.name().to_ascii_uppercase().parse::<StampMode>(),
                Ok(mode)
            );
        }
        let err = "matrix".parse::<StampMode>().unwrap_err();
        assert!(err.to_string().contains("matrix"));
    }
}
