//! Message timestamps: full matrices or Update deltas (Appendix A).
//!
//! Every causally ordered message carries a [`Stamp`]. In
//! [`StampMode::Full`] the stamp is the sender's whole matrix — `O(n²)`
//! bytes. In [`StampMode::Updates`] it is only the set of matrix entries
//! modified since the last message sent to the same peer — the *Updates
//! optimized algorithm* of the paper's Appendix A, `O(n)` bytes in the
//! common case (and the paper notes `O(n²)` worst case).

use serde::{Deserialize, Serialize};

use crate::matrix::MatrixClock;

/// How channel stamps are encoded on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum StampMode {
    /// Ship the sender's entire matrix with every message.
    Full,
    /// Ship only the entries modified since the last send to the same peer
    /// (Appendix A). Requires FIFO links, which the AAA channel guarantees.
    #[default]
    Updates,
}

/// One modified matrix entry `(row, col) = value`, as shipped by the
/// Updates algorithm.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct UpdateEntry {
    /// Sender index of the counted messages.
    pub row: u16,
    /// Receiver index of the counted messages.
    pub col: u16,
    /// New value of the cell.
    pub value: u64,
}

impl UpdateEntry {
    /// Bytes one entry occupies on the wire: two `u16` coordinates plus a
    /// `u64` value.
    pub const WIRE_LEN: usize = 2 + 2 + 8;
}

/// The causal timestamp piggybacked on a message.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Stamp {
    /// The sender's full matrix.
    Full(MatrixClock),
    /// The entries modified since the last send to this peer.
    Delta(Vec<UpdateEntry>),
    /// Group-commit continuation: "the previous frame's stamp, with
    /// `SENT[sender][receiver]` incremented by one".
    ///
    /// Emitted by [`CausalState::stamp_send_batched`] for the second and
    /// later messages of a batch to the same peer when nothing else in the
    /// sender's matrix changed in between. The receiver reconstructs the
    /// exact stamp from its per-sender image, so the wire cost is zero
    /// payload bytes — the amortization that makes group-commit batching
    /// collapse the per-message stamp cost (cf. hybrid buffering /
    /// constant-size causal broadcast in the related work).
    ///
    /// Sound only over reliable FIFO links, which AAA links guarantee.
    ///
    /// [`CausalState::stamp_send_batched`]: crate::CausalState::stamp_send_batched
    GroupNext,
}

impl Stamp {
    /// Size of the stamp on the wire, in bytes.
    ///
    /// Full stamps cost `n² × 8` bytes; delta stamps cost a 4-byte count
    /// plus [`UpdateEntry::WIRE_LEN`] per entry; group continuations cost
    /// nothing beyond their tag. This is the quantity plotted by the
    /// Appendix-A ablation experiment.
    pub fn encoded_len(&self) -> usize {
        match self {
            Stamp::Full(m) => 4 + m.encoded_len(),
            Stamp::Delta(entries) => 4 + entries.len() * UpdateEntry::WIRE_LEN,
            Stamp::GroupNext => 0,
        }
    }

    /// Number of matrix entries conveyed.
    pub fn entry_count(&self) -> usize {
        match self {
            Stamp::Full(m) => m.width() * m.width(),
            Stamp::Delta(entries) => entries.len(),
            Stamp::GroupNext => 1,
        }
    }

    /// Returns `true` if this is a delta stamp.
    pub fn is_delta(&self) -> bool {
        matches!(self, Stamp::Delta(_))
    }

    /// Returns `true` if this is a group-commit continuation stamp.
    pub fn is_group_next(&self) -> bool {
        matches!(self, Stamp::GroupNext)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_stamp_size_is_quadratic() {
        let s = Stamp::Full(MatrixClock::new(10));
        assert_eq!(s.encoded_len(), 4 + 100 * 8);
        assert_eq!(s.entry_count(), 100);
        assert!(!s.is_delta());
    }

    #[test]
    fn delta_stamp_size_is_linear_in_entries() {
        let entries = vec![
            UpdateEntry {
                row: 0,
                col: 1,
                value: 3,
            },
            UpdateEntry {
                row: 2,
                col: 1,
                value: 9,
            },
        ];
        let s = Stamp::Delta(entries);
        assert_eq!(s.encoded_len(), 4 + 2 * UpdateEntry::WIRE_LEN);
        assert_eq!(s.entry_count(), 2);
        assert!(s.is_delta());
    }

    #[test]
    fn default_mode_is_updates() {
        assert_eq!(StampMode::default(), StampMode::Updates);
    }

    #[test]
    fn empty_delta_is_cheap() {
        let s = Stamp::Delta(Vec::new());
        assert_eq!(s.encoded_len(), 4);
        assert_eq!(s.entry_count(), 0);
    }
}
