//! The matrix-clock causal delivery protocol used by every AAA channel.
//!
//! This is the per-domain protocol of the paper (§3, §5, Appendix A), in the
//! style of Raynal–Schiper–Toueg (the paper's reference 12):
//!
//! - each server `i` keeps `SENT` (an `n × n` [`MatrixClock`]: messages sent
//!   `k → l` that `i` knows of) and `DELIV` (a vector: messages from `k`
//!   delivered at `i`);
//! - **send `i → j`**: increment `SENT[i][j]`, piggyback the matrix (whole
//!   or as Update deltas);
//! - **deliverable at `j`** (message from `i` with reconstructed stamp
//!   `ST`): `ST[i][j] == DELIV[i] + 1` and `ST[k][j] <= DELIV[k]` for all
//!   `k != i` — `j` must already have delivered every message *destined to
//!   `j`* that the sender knew about;
//! - **deliver at `j`**: `DELIV[i] += 1` and `SENT := max(SENT, ST)`.
//!
//! Messages that fail the check wait in the channel's postponed queue and
//! are re-examined after each delivery (the queue lives in `aaa-mom`; this
//! crate only provides the predicates and state).
//!
//! In [`StampMode::Updates`] the wire carries only modified entries; the
//! receiver keeps a per-sender *image* of the sender's matrix, rebuilt
//! incrementally (sound because AAA links are reliable FIFO), and the exact
//! per-message stamp is materialized when the frame arrives. The two modes
//! are observationally equivalent — a property test in this crate's test
//! suite drives random schedules through both and compares every decision.

use aaa_base::DomainServerId;
use serde::{Deserialize, Serialize};

use crate::matrix::MatrixClock;
use crate::stamp::{Stamp, StampMode, UpdateEntry};

/// A message's causal stamp, reconstructed on the receiving side.
///
/// In [`StampMode::Full`] this is the matrix shipped with the message; in
/// [`StampMode::Updates`] it is the receiver's image of the sender's matrix
/// at the instant the frame arrived. Either way it is exactly the sender's
/// `SENT` matrix when the message was sent.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PendingStamp {
    matrix: MatrixClock,
}

impl PendingStamp {
    /// The reconstructed sender matrix.
    pub fn matrix(&self) -> &MatrixClock {
        &self.matrix
    }

    /// Rebuilds a pending stamp from a persisted matrix image (recovery).
    pub fn from_matrix(matrix: MatrixClock) -> Self {
        PendingStamp { matrix }
    }
}

/// Per-domain causal delivery state of one server.
///
/// See the [module documentation](self) for the protocol. One `CausalState`
/// exists per `DomainItem` on every server; causal router-servers therefore
/// hold several, one per domain they belong to (§5).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CausalState {
    me: DomainServerId,
    n: usize,
    mode: StampMode,
    /// `SENT[k][l]`: messages sent from `k` to `l` that this server knows of.
    sent: MatrixClock,
    /// `DELIV[k]`: messages from `k` delivered here.
    deliv: Vec<u64>,
    /// Logical instant counter for the Updates algorithm (`State` in
    /// Appendix A).
    state: u64,
    /// Per-cell tag: value of `state` when the cell last changed
    /// (`Mat[k,l].state`).
    entry_state: Vec<u64>,
    /// Per-peer: value of `state` at the last send to that peer
    /// (`Node[j].state`).
    node_state: Vec<u64>,
    /// Per-peer image of that peer's matrix, rebuilt from received deltas.
    images: Vec<Option<MatrixClock>>,
}

impl CausalState {
    /// Creates the causal state of server `me` in a domain of `n` servers.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or `me` is out of range.
    pub fn new(me: DomainServerId, n: usize, mode: StampMode) -> Self {
        assert!(n > 0, "a domain needs at least one server");
        assert!(
            me.as_usize() < n,
            "server id {me} out of range for domain of {n}"
        );
        CausalState {
            me,
            n,
            mode,
            sent: MatrixClock::new(n),
            deliv: vec![0; n],
            state: 0,
            entry_state: vec![0; n * n],
            node_state: vec![0; n],
            images: vec![None; n],
        }
    }

    /// This server's identifier within the domain.
    pub fn me(&self) -> DomainServerId {
        self.me
    }

    /// Number of servers in the domain.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The stamp encoding mode.
    pub fn mode(&self) -> StampMode {
        self.mode
    }

    /// The local `SENT` matrix.
    pub fn sent(&self) -> &MatrixClock {
        &self.sent
    }

    /// Messages from `from` delivered here so far.
    pub fn delivered_from(&self, from: DomainServerId) -> u64 {
        self.deliv[from.as_usize()]
    }

    /// Total messages delivered here so far.
    pub fn delivered_total(&self) -> u64 {
        self.deliv.iter().sum()
    }

    /// Stamps a message about to be sent to `to` and updates the local
    /// state. Must be called exactly once per message, in send order.
    ///
    /// # Panics
    ///
    /// Panics if `to` is this server or out of range.
    pub fn stamp_send(&mut self, to: DomainServerId) -> Stamp {
        assert!(to != self.me, "local deliveries bypass the causal protocol");
        assert!(to.as_usize() < self.n, "destination {to} out of range");
        // Saturating throughout the clock core: a saturated counter keeps
        // comparisons monotone (late, never reordered); wrapping breaks
        // the §4.2 delivery predicate.
        self.state = self.state.saturating_add(1);
        self.sent.increment(self.me.as_usize(), to.as_usize());
        let tag = self.state;
        self.set_entry_state(self.me.as_usize(), to.as_usize(), tag);
        match self.mode {
            StampMode::Full => {
                // `node_state` is maintained in Full mode too so that
                // `stamp_send_batched` can detect group continuations.
                self.node_state[to.as_usize()] = self.state;
                Stamp::Full(self.sent.clone())
            }
            StampMode::Updates => {
                let since = self.node_state[to.as_usize()];
                let entries = self.collect_updates(since);
                self.node_state[to.as_usize()] = self.state;
                Stamp::Delta(entries)
            }
        }
    }

    /// Like [`CausalState::stamp_send`], but may return the zero-byte
    /// [`Stamp::GroupNext`] continuation when this send is part of a batch.
    ///
    /// A continuation is legal exactly when the matrix has not changed since
    /// the previous send to the same peer (no other sends, no deliveries in
    /// between) — the new stamp then differs from the previous frame's stamp
    /// only by `SENT[me][to] += 1`, which the receiver reconstructs from its
    /// per-sender image without any shipped bytes. Falls back to a regular
    /// stamp otherwise, so callers may use this unconditionally on batched
    /// paths.
    ///
    /// # Panics
    ///
    /// Panics if `to` is this server or out of range.
    pub fn stamp_send_batched(&mut self, to: DomainServerId) -> Stamp {
        assert!(to != self.me, "local deliveries bypass the causal protocol");
        assert!(to.as_usize() < self.n, "destination {to} out of range");
        let me = self.me.as_usize();
        let t = to.as_usize();
        // The guard on SENT[me][to] ensures a previous frame to this peer
        // exists, so the receiver has an image to continue from.
        if self.node_state[t] == self.state && self.sent.get(me, t) > 0 {
            self.state = self.state.saturating_add(1);
            self.sent.increment(me, t);
            let tag = self.state;
            self.set_entry_state(me, t, tag);
            self.node_state[t] = self.state;
            Stamp::GroupNext
        } else {
            self.stamp_send(to)
        }
    }

    /// Ingests a frame arriving from `from` (in link order) and returns the
    /// message's reconstructed stamp. Must be called exactly once per frame,
    /// in arrival order — the reliable link layer guarantees FIFO, which the
    /// Updates reconstruction relies on.
    ///
    /// # Panics
    ///
    /// Panics if `from` is out of range, or if the stamp kind does not match
    /// the configured [`StampMode`].
    pub fn on_frame(&mut self, from: DomainServerId, stamp: Stamp) -> PendingStamp {
        assert!(from.as_usize() < self.n, "sender {from} out of range");
        let matrix = match (self.mode, stamp) {
            (StampMode::Full, Stamp::Full(m)) => {
                assert_eq!(m.width(), self.n, "stamp width mismatch");
                // Keep a per-sender image so zero-byte GroupNext
                // continuations can be reconstructed in Full mode too.
                self.images[from.as_usize()] = Some(m.clone());
                m
            }
            (StampMode::Updates, Stamp::Delta(entries)) => {
                let image =
                    self.images[from.as_usize()].get_or_insert_with(|| MatrixClock::new(self.n));
                for e in &entries {
                    image.raise(e.row as usize, e.col as usize, e.value);
                }
                image.clone()
            }
            (_, Stamp::GroupNext) => {
                // Previous frame's stamp plus one send from `from` to me.
                // FIFO links guarantee the predecessor frame (which seeded
                // or updated the image) was ingested first.
                let image = self.images[from.as_usize()]
                    .as_mut()
                    // A missing predecessor means the transport violated
                    // FIFO — a broken protocol invariant, not recoverable
                    // input. audit:allow(panic-freedom)
                    .expect("GroupNext continuation with no prior frame from this sender");
                image.increment(from.as_usize(), self.me.as_usize());
                image.clone()
            }
            // A stamp kind that contradicts the configured mode is a
            // programming error in the channel wiring, never wire input
            // (decoding already rejected it). audit:allow(panic-freedom)
            (mode, other) => panic!(
                "stamp kind {:?} does not match configured mode {:?}",
                other.is_delta(),
                mode
            ),
        };
        PendingStamp { matrix }
    }

    /// Returns `true` if a message from `from` with stamp `pending` may be
    /// delivered now without violating causal order.
    ///
    /// # Panics
    ///
    /// Panics if `from` is out of range.
    pub fn can_deliver(&self, from: DomainServerId, pending: &PendingStamp) -> bool {
        let f = from.as_usize();
        let me = self.me.as_usize();
        assert!(f < self.n, "sender {from} out of range");
        if pending.matrix.get(f, me) != self.deliv[f].saturating_add(1) {
            return false;
        }
        (0..self.n).all(|k| k == f || pending.matrix.get(k, me) <= self.deliv[k])
    }

    /// Records delivery of a message from `from` with stamp `pending`,
    /// merging the sender's knowledge into the local matrix.
    ///
    /// # Panics
    ///
    /// Panics if the message is not currently deliverable; call
    /// [`CausalState::can_deliver`] first.
    pub fn deliver(&mut self, from: DomainServerId, pending: &PendingStamp) {
        assert!(
            self.can_deliver(from, pending),
            "delivering a message out of causal order"
        );
        self.deliv[from.as_usize()] = self.deliv[from.as_usize()].saturating_add(1);
        self.state = self.state.saturating_add(1);
        let tag = self.state;
        let n = self.n;
        let entry_state = &mut self.entry_state;
        self.sent.merge_max(&pending.matrix, |row, col, _| {
            entry_state[row * n + col] = tag;
        });
    }

    #[inline]
    fn set_entry_state(&mut self, row: usize, col: usize, tag: u64) {
        self.entry_state[row * self.n + col] = tag;
    }

    /// Appends a self-describing binary image of the whole causal state to
    /// `out`, suitable for crash-recovery journaling.
    ///
    /// The image includes the Updates bookkeeping (entry states, per-peer
    /// send states and per-peer sender images), so a recovered server
    /// resumes the delta protocol exactly where it crashed.
    pub fn write_bytes(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.me.as_u16().to_le_bytes());
        // Saturating `try_from`: an impossible width writes a prefix the
        // reader rejects rather than a truncated valid-looking one.
        out.extend_from_slice(&u32::try_from(self.n).unwrap_or(u32::MAX).to_le_bytes());
        out.push(match self.mode {
            StampMode::Full => 0,
            StampMode::Updates => 1,
        });
        self.sent.write_bytes(out);
        for v in &self.deliv {
            out.extend_from_slice(&v.to_le_bytes());
        }
        out.extend_from_slice(&self.state.to_le_bytes());
        for v in &self.entry_state {
            out.extend_from_slice(&v.to_le_bytes());
        }
        for v in &self.node_state {
            out.extend_from_slice(&v.to_le_bytes());
        }
        for image in &self.images {
            match image {
                None => out.push(0),
                Some(m) => {
                    out.push(1);
                    m.write_bytes(out);
                }
            }
        }
    }

    /// Reads an image written by [`CausalState::write_bytes`] from the
    /// front of `input`, returning the state and the bytes consumed.
    ///
    /// Returns `None` on truncated or invalid input.
    pub fn read_bytes(input: &[u8]) -> Option<(CausalState, usize)> {
        let mut at = 0usize;
        let take = |at: &mut usize, n: usize| -> Option<&[u8]> {
            let s = input.get(*at..*at + n)?;
            *at += n;
            Some(s)
        };
        let me = DomainServerId::new(u16::from_le_bytes(take(&mut at, 2)?.try_into().ok()?));
        let n = u32::from_le_bytes(take(&mut at, 4)?.try_into().ok()?) as usize;
        if n == 0 || me.as_usize() >= n {
            return None;
        }
        let mode = match take(&mut at, 1)?[0] {
            0 => StampMode::Full,
            1 => StampMode::Updates,
            _ => return None,
        };
        let (sent, used) = MatrixClock::read_bytes(&input[at..])?;
        if sent.width() != n {
            return None;
        }
        at += used;
        let read_u64s = |at: &mut usize, count: usize| -> Option<Vec<u64>> {
            let mut out = Vec::with_capacity(count);
            for _ in 0..count {
                out.push(u64::from_le_bytes(take(at, 8)?.try_into().ok()?));
            }
            Some(out)
        };
        let deliv = read_u64s(&mut at, n)?;
        let state = read_u64s(&mut at, 1)?[0];
        let entry_state = read_u64s(&mut at, n * n)?;
        let node_state = read_u64s(&mut at, n)?;
        let mut images = Vec::with_capacity(n);
        for _ in 0..n {
            let tag = *input.get(at)?;
            at += 1;
            match tag {
                0 => images.push(None),
                1 => {
                    let (m, used) = MatrixClock::read_bytes(&input[at..])?;
                    if m.width() != n {
                        return None;
                    }
                    at += used;
                    images.push(Some(m));
                }
                _ => return None,
            }
        }
        Some((
            CausalState {
                me,
                n,
                mode,
                sent,
                deliv,
                state,
                entry_state,
                node_state,
                images,
            },
            at,
        ))
    }

    fn collect_updates(&self, since: u64) -> Vec<UpdateEntry> {
        let mut out = Vec::new();
        for row in 0..self.n {
            for col in 0..self.n {
                if self.entry_state[row * self.n + col] > since {
                    // `n <= u16::MAX` is a construction invariant, so the
                    // checked narrowing never saturates in practice; if it
                    // ever did, the peer would reject the frame loudly.
                    out.push(UpdateEntry {
                        row: u16::try_from(row).unwrap_or(u16::MAX),
                        col: u16::try_from(col).unwrap_or(u16::MAX),
                        value: self.sent.get(row, col),
                    });
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(i: u16) -> DomainServerId {
        DomainServerId::new(i)
    }

    fn pair(mode: StampMode) -> (CausalState, CausalState) {
        (
            CausalState::new(d(0), 2, mode),
            CausalState::new(d(1), 2, mode),
        )
    }

    #[test]
    fn simple_send_deliver_full() {
        let (mut a, mut b) = pair(StampMode::Full);
        let s = a.stamp_send(d(1));
        let p = b.on_frame(d(0), s);
        assert!(b.can_deliver(d(0), &p));
        b.deliver(d(0), &p);
        assert_eq!(b.delivered_from(d(0)), 1);
        assert_eq!(b.sent().get(0, 1), 1);
    }

    #[test]
    fn simple_send_deliver_updates() {
        let (mut a, mut b) = pair(StampMode::Updates);
        let s = a.stamp_send(d(1));
        assert!(s.is_delta());
        let p = b.on_frame(d(0), s);
        assert!(b.can_deliver(d(0), &p));
        b.deliver(d(0), &p);
        assert_eq!(b.delivered_from(d(0)), 1);
    }

    #[test]
    fn fifo_gap_is_postponed() {
        // a sends m1 then m2 to b; if m2's stamp is examined first it must
        // not be deliverable (its SENT[a][b] is 2, b expects 1).
        let (mut a, mut b) = pair(StampMode::Full);
        let s1 = a.stamp_send(d(1));
        let s2 = a.stamp_send(d(1));
        // Frames still arrive in FIFO order (on_frame), but the channel may
        // test deliverability in any order.
        let p1 = b.on_frame(d(0), s1);
        let p2 = b.on_frame(d(0), s2);
        assert!(!b.can_deliver(d(0), &p2));
        assert!(b.can_deliver(d(0), &p1));
        b.deliver(d(0), &p1);
        assert!(b.can_deliver(d(0), &p2));
        b.deliver(d(0), &p2);
    }

    #[test]
    fn transitive_three_servers() {
        // s0 -> s1 (m1); s1 -> s2 (m2 after delivering m1); s0 -> s2 (m0,
        // sent before m1? no: sent first, concurrent-ish). Classic triangle:
        // m_a: s0->s2 sent first, m_b: s0->s1, then s1->s2. s2 must deliver
        // m_a before m2 because m_a precedes m_b (same sender order) and
        // m_b precedes m2 (receive-then-send).
        let mut s0 = CausalState::new(d(0), 3, StampMode::Full);
        let mut s1 = CausalState::new(d(1), 3, StampMode::Full);
        let mut s2 = CausalState::new(d(2), 3, StampMode::Full);

        let st_a = s0.stamp_send(d(2)); // m_a
        let st_b = s0.stamp_send(d(1)); // m_b
        let p_b = s1.on_frame(d(0), st_b);
        assert!(s1.can_deliver(d(0), &p_b));
        s1.deliver(d(0), &p_b);
        let st_2 = s1.stamp_send(d(2)); // m2, causally after m_a

        // m2 arrives at s2 before m_a: must wait.
        let p_2 = s2.on_frame(d(1), st_2);
        assert!(!s2.can_deliver(d(1), &p_2));
        let p_a = s2.on_frame(d(0), st_a);
        assert!(s2.can_deliver(d(0), &p_a));
        s2.deliver(d(0), &p_a);
        assert!(s2.can_deliver(d(1), &p_2));
        s2.deliver(d(1), &p_2);
        assert_eq!(s2.delivered_total(), 2);
    }

    #[test]
    fn transitive_three_servers_updates_mode() {
        let mut s0 = CausalState::new(d(0), 3, StampMode::Updates);
        let mut s1 = CausalState::new(d(1), 3, StampMode::Updates);
        let mut s2 = CausalState::new(d(2), 3, StampMode::Updates);

        let st_a = s0.stamp_send(d(2));
        let st_b = s0.stamp_send(d(1));
        let p_b = s1.on_frame(d(0), st_b);
        s1.deliver(d(0), &p_b);
        let st_2 = s1.stamp_send(d(2));

        let p_2 = s2.on_frame(d(1), st_2);
        assert!(!s2.can_deliver(d(1), &p_2));
        let p_a = s2.on_frame(d(0), st_a);
        s2.deliver(d(0), &p_a);
        assert!(s2.can_deliver(d(1), &p_2));
        s2.deliver(d(1), &p_2);
    }

    #[test]
    fn first_delta_carries_everything_later_deltas_shrink() {
        let mut a = CausalState::new(d(0), 4, StampMode::Updates);
        let s1 = a.stamp_send(d(1));
        // First message to d1: one entry modified so far.
        assert_eq!(s1.entry_count(), 1);
        let s2 = a.stamp_send(d(1));
        // Second message: only the (0,1) cell changed again.
        assert_eq!(s2.entry_count(), 1);
        // Send to a different peer: both prior modifications are news to d2.
        let s3 = a.stamp_send(d(2));
        assert_eq!(s3.entry_count(), 2);
        // Now d1 already knows everything except the newest cells.
        let s4 = a.stamp_send(d(1));
        // Changed since last send to d1: (0,2) from s3 and (0,1) from s4.
        assert_eq!(s4.entry_count(), 2);
    }

    #[test]
    fn delta_smaller_than_full_matrix() {
        let n = 20;
        let mut a = CausalState::new(d(0), n, StampMode::Updates);
        let mut b = CausalState::new(d(1), n, StampMode::Updates);
        let mut total_delta = 0usize;
        for _ in 0..50 {
            let s = a.stamp_send(d(1));
            total_delta += s.encoded_len();
            let p = b.on_frame(d(0), s);
            b.deliver(d(0), &p);
        }
        let full = Stamp::Full(MatrixClock::new(n)).encoded_len() * 50;
        assert!(
            total_delta < full / 10,
            "deltas ({total_delta}B) should be far below full stamps ({full}B)"
        );
    }

    #[test]
    #[should_panic(expected = "bypass the causal protocol")]
    fn self_send_rejected() {
        let mut a = CausalState::new(d(0), 2, StampMode::Full);
        let _ = a.stamp_send(d(0));
    }

    #[test]
    #[should_panic(expected = "out of causal order")]
    fn deliver_out_of_order_panics() {
        let (mut a, mut b) = pair(StampMode::Full);
        let _s1 = a.stamp_send(d(1));
        let s2 = a.stamp_send(d(1));
        let p2 = b.on_frame(d(0), s2);
        b.deliver(d(0), &p2);
    }

    #[test]
    #[should_panic(expected = "does not match configured mode")]
    fn mode_mismatch_panics() {
        let (mut a, mut b) = pair(StampMode::Full);
        let _ = a.stamp_send(d(1));
        let bogus = Stamp::Delta(Vec::new());
        let _ = b.on_frame(d(0), bogus);
    }

    #[test]
    fn causal_state_bytes_roundtrip() {
        // Build a state with non-trivial Updates bookkeeping, persist it,
        // and check the recovered state behaves identically.
        let mut a = CausalState::new(d(0), 3, StampMode::Updates);
        let mut b = CausalState::new(d(1), 3, StampMode::Updates);
        for _ in 0..3 {
            let s = a.stamp_send(d(1));
            let p = b.on_frame(d(0), s);
            b.deliver(d(0), &p);
        }
        let _ = a.stamp_send(d(2)); // leaves an in-flight delta

        let mut buf = Vec::new();
        b.write_bytes(&mut buf);
        let (b2, used) = CausalState::read_bytes(&buf).expect("roundtrip");
        assert_eq!(used, buf.len());
        assert_eq!(b2.sent(), b.sent());
        assert_eq!(b2.delivered_total(), b.delivered_total());
        assert_eq!(b2.mode(), b.mode());
        assert_eq!(b2.me(), b.me());

        // The recovered state keeps working: a's next delta must still
        // reconstruct correctly against b2's persisted image of a.
        let mut b2 = b2;
        let s = a.stamp_send(d(1));
        let p = b2.on_frame(d(0), s);
        assert!(b2.can_deliver(d(0), &p));
        b2.deliver(d(0), &p);
        assert_eq!(b2.delivered_from(d(0)), 4);
    }

    #[test]
    fn causal_state_read_rejects_garbage() {
        assert!(CausalState::read_bytes(&[]).is_none());
        assert!(CausalState::read_bytes(&[1, 2, 3]).is_none());
        let mut buf = Vec::new();
        CausalState::new(d(0), 2, StampMode::Full).write_bytes(&mut buf);
        buf.truncate(buf.len() - 1);
        assert!(CausalState::read_bytes(&buf).is_none());
    }

    #[test]
    fn singleton_domain_is_valid_but_inert() {
        let s = CausalState::new(d(0), 1, StampMode::Full);
        assert_eq!(s.n(), 1);
        assert_eq!(s.delivered_total(), 0);
    }

    #[test]
    fn batched_first_send_is_never_a_continuation() {
        for mode in [StampMode::Full, StampMode::Updates] {
            let mut a = CausalState::new(d(0), 3, mode);
            let s = a.stamp_send_batched(d(1));
            assert!(!s.is_group_next(), "first frame must carry a real stamp");
        }
    }

    #[test]
    fn batched_burst_collapses_to_continuations() {
        for mode in [StampMode::Full, StampMode::Updates] {
            let mut a = CausalState::new(d(0), 3, mode);
            let mut b = CausalState::new(d(1), 3, mode);
            let mut wire_bytes = 0usize;
            for i in 0..32 {
                let s = a.stamp_send_batched(d(1));
                assert_eq!(s.is_group_next(), i > 0, "mode {mode:?}, frame {i}");
                wire_bytes += s.encoded_len();
                let p = b.on_frame(d(0), s);
                assert!(b.can_deliver(d(0), &p));
                b.deliver(d(0), &p);
            }
            assert_eq!(b.delivered_from(d(0)), 32);
            assert_eq!(b.sent().get(0, 1), 32);
            // Only the first frame pays stamp bytes.
            let first = match mode {
                StampMode::Full => Stamp::Full(MatrixClock::new(3)).encoded_len(),
                StampMode::Updates => 4 + UpdateEntry::WIRE_LEN,
            };
            assert_eq!(wire_bytes, first);
        }
    }

    #[test]
    fn continuation_reconstructs_exact_stamp() {
        // Drive an identical schedule through stamp_send (reference) and
        // stamp_send_batched, and check the reconstructed matrices agree.
        for mode in [StampMode::Full, StampMode::Updates] {
            let mut a_ref = CausalState::new(d(0), 2, mode);
            let mut b_ref = CausalState::new(d(1), 2, mode);
            let mut a = CausalState::new(d(0), 2, mode);
            let mut b = CausalState::new(d(1), 2, mode);
            for _ in 0..5 {
                let sr = a_ref.stamp_send(d(1));
                let pr = b_ref.on_frame(d(0), sr);
                let s = a.stamp_send_batched(d(1));
                let p = b.on_frame(d(0), s);
                assert_eq!(p.matrix(), pr.matrix());
                b_ref.deliver(d(0), &pr);
                b.deliver(d(0), &p);
            }
            assert_eq!(b.sent(), b_ref.sent());
        }
    }

    #[test]
    fn intervening_traffic_breaks_the_group() {
        let mut a = CausalState::new(d(0), 3, StampMode::Updates);
        let mut b = CausalState::new(d(1), 3, StampMode::Updates);
        let s1 = a.stamp_send_batched(d(1));
        assert!(!s1.is_group_next());
        let s2 = a.stamp_send_batched(d(1));
        assert!(s2.is_group_next());
        // A send to another peer changes the matrix: the next frame to d1
        // must fall back to a real stamp that conveys it.
        let _ = a.stamp_send_batched(d(2));
        let s3 = a.stamp_send_batched(d(1));
        assert!(!s3.is_group_next());
        for s in [s1, s2, s3] {
            let p = b.on_frame(d(0), s);
            assert!(b.can_deliver(d(0), &p));
            b.deliver(d(0), &p);
        }
        assert_eq!(b.sent().get(0, 1), 3);
        assert_eq!(b.sent().get(0, 2), 1);
    }

    #[test]
    fn delivery_breaks_the_group() {
        let (mut a, mut b) = pair(StampMode::Full);
        let s1 = a.stamp_send_batched(d(1));
        let p1 = b.on_frame(d(0), s1);
        b.deliver(d(0), &p1);
        // b replies; a delivers — a's matrix changed, so a's next frame to b
        // must be a full stamp again.
        let r = b.stamp_send_batched(d(0));
        let pr = a.on_frame(d(1), r);
        a.deliver(d(1), &pr);
        let s2 = a.stamp_send_batched(d(1));
        assert!(!s2.is_group_next());
        let p2 = b.on_frame(d(0), s2);
        assert!(b.can_deliver(d(0), &p2));
        b.deliver(d(0), &p2);
    }

    #[test]
    fn full_mode_images_survive_persistence() {
        // A Full-mode receiver's per-sender image (needed for GroupNext)
        // must roundtrip through write_bytes/read_bytes mid-group.
        let mut a = CausalState::new(d(0), 2, StampMode::Full);
        let mut b = CausalState::new(d(1), 2, StampMode::Full);
        let s1 = a.stamp_send_batched(d(1));
        let p1 = b.on_frame(d(0), s1);
        b.deliver(d(0), &p1);

        let mut buf = Vec::new();
        b.write_bytes(&mut buf);
        let (mut b2, used) = CausalState::read_bytes(&buf).expect("roundtrip");
        assert_eq!(used, buf.len());

        let s2 = a.stamp_send_batched(d(1));
        assert!(s2.is_group_next());
        let p2 = b2.on_frame(d(0), s2);
        assert!(b2.can_deliver(d(0), &p2));
        b2.deliver(d(0), &p2);
        assert_eq!(b2.delivered_from(d(0)), 2);
    }

    #[test]
    #[should_panic(expected = "no prior frame")]
    fn continuation_without_predecessor_panics() {
        let mut b = CausalState::new(d(1), 2, StampMode::Full);
        let _ = b.on_frame(d(0), Stamp::GroupNext);
    }
}
