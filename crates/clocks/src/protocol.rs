//! The matrix-clock causal delivery protocol used by every AAA channel.
//!
//! This is the per-domain protocol of the paper (§3, §5, Appendix A), in the
//! style of Raynal–Schiper–Toueg (the paper's reference 12):
//!
//! - each server `i` keeps `SENT` (an `n × n` [`MatrixClock`]: messages sent
//!   `k → l` that `i` knows of) and `DELIV` (a vector: messages from `k`
//!   delivered at `i`);
//! - **send `i → j`**: increment `SENT[i][j]`, piggyback the matrix (whole,
//!   as Update deltas, or in a bounded-space encoding);
//! - **deliverable at `j`** (message from `i` with reconstructed stamp
//!   `ST`): `ST[i][j] == DELIV[i] + 1` and `ST[k][j] <= DELIV[k]` for all
//!   `k != i` — `j` must already have delivered every message *destined to
//!   `j`* that the sender knew about;
//! - **deliver at `j`**: `DELIV[i] += 1` and `SENT := max(SENT, ST)`.
//!
//! Messages that fail the check wait in the channel's postponed queue and
//! are re-examined after each delivery (the queue lives in `aaa-mom`; this
//! crate only provides the predicates and state).
//!
//! [`CausalState`] is a thin dispatcher over the pluggable
//! [`ClockEngine`]s in [`crate::engines`], selected by [`StampMode`]:
//! full matrices, Appendix-A deltas, Drummond–Barbosa reduced stamps, or
//! Almeida-style hybrid buffering. All engines are observationally
//! equivalent — property and conformance tests in this crate's test suite
//! drive random schedules through every mode and compare each decision.

use aaa_base::DomainServerId;
use serde::{Deserialize, Serialize};

use crate::engine::{Batching, ClockEngine, EngineCore};
use crate::engines::{FullEngine, HybridEngine, ReducedEngine, UpdatesEngine};
use crate::matrix::MatrixClock;
use crate::stamp::{Stamp, StampMode};

/// A message's causal stamp, reconstructed on the receiving side.
///
/// In [`StampMode::Full`] this is the matrix shipped with the message; in
/// every other mode it is the receiver's image of the sender's matrix at
/// the instant the frame arrived. Either way it is exactly the sender's
/// `SENT` matrix when the message was sent.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub struct PendingStamp {
    matrix: MatrixClock,
}

impl PendingStamp {
    /// The reconstructed sender matrix.
    pub fn matrix(&self) -> &MatrixClock {
        &self.matrix
    }

    /// Rebuilds a pending stamp from a persisted matrix image (recovery).
    pub fn from_matrix(matrix: MatrixClock) -> Self {
        PendingStamp { matrix }
    }
}

/// The engine behind one [`CausalState`], one variant per [`StampMode`].
///
/// Enum dispatch (rather than `Box<dyn ClockEngine>`) keeps `CausalState`
/// `Clone + PartialEq + Serialize` and the per-call overhead at one match.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
enum EngineKind {
    Full(FullEngine),
    Updates(UpdatesEngine),
    Reduced(ReducedEngine),
    Hybrid(HybridEngine),
}

macro_rules! dispatch {
    ($self:expr, $e:ident => $body:expr) => {
        match &$self.engine {
            EngineKind::Full($e) => $body,
            EngineKind::Updates($e) => $body,
            EngineKind::Reduced($e) => $body,
            EngineKind::Hybrid($e) => $body,
        }
    };
}

macro_rules! dispatch_mut {
    ($self:expr, $e:ident => $body:expr) => {
        match &mut $self.engine {
            EngineKind::Full($e) => $body,
            EngineKind::Updates($e) => $body,
            EngineKind::Reduced($e) => $body,
            EngineKind::Hybrid($e) => $body,
        }
    };
}

/// An observable snapshot of the protocol-relevant engine state: the
/// local `SENT` matrix and the per-sender delivery counters.
///
/// Every [`ClockEngine`] must agree on this projection after every
/// protocol step — it is what "observationally equivalent" means. The
/// `aaa-audit` model checker captures transcripts from each bounded
/// engine and from a lock-stepped [`FullEngine`] reference and asserts
/// equality in every reachable interleaving.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct EngineTranscript {
    /// The local `SENT` matrix.
    pub sent: MatrixClock,
    /// Messages delivered here so far, indexed by sender.
    pub deliv: Vec<u64>,
}

/// Per-domain causal delivery state of one server.
///
/// See the [module documentation](self) for the protocol. One `CausalState`
/// exists per `DomainItem` on every server; causal router-servers therefore
/// hold several, one per domain they belong to (§5). The heavy lifting is
/// done by the [`ClockEngine`] selected at construction; this type is the
/// stable workspace-facing facade.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CausalState {
    engine: EngineKind,
}

impl CausalState {
    /// Creates the causal state of server `me` in a domain of `n` servers,
    /// running the engine selected by `mode`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or `me` is out of range.
    pub fn new(me: DomainServerId, n: usize, mode: StampMode) -> Self {
        let engine = match mode {
            StampMode::Full => EngineKind::Full(FullEngine::new(me, n)),
            StampMode::Updates => EngineKind::Updates(UpdatesEngine::new(me, n)),
            StampMode::Reduced => EngineKind::Reduced(ReducedEngine::new(me, n)),
            StampMode::Hybrid => EngineKind::Hybrid(HybridEngine::new(me, n)),
        };
        CausalState { engine }
    }

    /// This server's identifier within the domain.
    pub fn me(&self) -> DomainServerId {
        dispatch!(self, e => e.me())
    }

    /// Number of servers in the domain.
    pub fn n(&self) -> usize {
        dispatch!(self, e => e.n())
    }

    /// The stamp encoding mode.
    pub fn mode(&self) -> StampMode {
        dispatch!(self, e => e.mode())
    }

    /// The local `SENT` matrix.
    pub fn sent(&self) -> &MatrixClock {
        dispatch!(self, e => e.sent())
    }

    /// Messages from `from` delivered here so far.
    pub fn delivered_from(&self, from: DomainServerId) -> u64 {
        dispatch!(self, e => e.delivered_from(from))
    }

    /// Total messages delivered here so far.
    pub fn delivered_total(&self) -> u64 {
        dispatch!(self, e => e.delivered_total())
    }

    /// Stamps a message about to be sent to `to` and updates the local
    /// state. Must be called exactly once per message, in send order.
    ///
    /// With [`Batching::Grouped`] the engine may emit the zero-byte
    /// [`Stamp::GroupNext`] continuation when this send is part of a batch
    /// and nothing else changed since the previous send to the same peer;
    /// it falls back to a real stamp otherwise, so batched callers pass
    /// `Grouped` unconditionally.
    ///
    /// # Panics
    ///
    /// Panics if `to` is this server or out of range.
    pub fn stamp_send(&mut self, to: DomainServerId, batching: Batching) -> Stamp {
        dispatch_mut!(self, e => e.stamp_send(to, batching))
    }

    /// Ingests a frame arriving from `from` (in link order) and returns the
    /// message's reconstructed stamp. Must be called exactly once per frame,
    /// in arrival order — the reliable link layer guarantees FIFO, which
    /// every incremental reconstruction relies on.
    ///
    /// # Panics
    ///
    /// Panics if `from` is out of range, or if the stamp kind does not match
    /// the configured [`StampMode`].
    pub fn on_frame(&mut self, from: DomainServerId, stamp: Stamp) -> PendingStamp {
        dispatch_mut!(self, e => e.on_frame(from, stamp))
    }

    /// Returns `true` if a message from `from` with stamp `pending` may be
    /// delivered now without violating causal order.
    ///
    /// # Panics
    ///
    /// Panics if `from` is out of range.
    pub fn can_deliver(&self, from: DomainServerId, pending: &PendingStamp) -> bool {
        dispatch!(self, e => e.can_deliver(from, pending))
    }

    /// A deliberately *wrong* §4.2 delivery predicate, for verification
    /// sabotage legs only: the FIFO clause is weakened off-by-one
    /// (`== DELIV + 1` becomes `>= DELIV + 1`), admitting a message from
    /// `from` before its predecessor on the same link. The model checker
    /// in `aaa-audit` substitutes this predicate to prove that its
    /// causal-order oracle actually catches a broken delivery condition;
    /// production code must never call it.
    ///
    /// # Panics
    ///
    /// Panics if `from` is out of range.
    pub fn can_deliver_weakened(&self, from: DomainServerId, pending: &PendingStamp) -> bool {
        let me = self.me().as_usize();
        let f = from.as_usize();
        let m = pending.matrix();
        if m.get(f, me) < self.delivered_from(from).saturating_add(1) {
            return false;
        }
        (0..self.n()).all(|k| {
            let kid = DomainServerId::new(u16::try_from(k).unwrap_or(u16::MAX));
            k == f || m.get(k, me) <= self.delivered_from(kid)
        })
    }

    /// Captures the protocol-relevant state projection every engine must
    /// agree on: the `SENT` matrix plus the per-sender delivery counters.
    /// Used by the `aaa-audit` model checker for lock-step equivalence
    /// against the [`FullEngine`] reference.
    pub fn transcript(&self) -> EngineTranscript {
        let deliv = (0..self.n())
            .map(|k| {
                let kid = DomainServerId::new(u16::try_from(k).unwrap_or(u16::MAX));
                self.delivered_from(kid)
            })
            .collect();
        EngineTranscript {
            sent: self.sent().clone(),
            deliv,
        }
    }

    /// Records delivery of a message from `from` with stamp `pending`,
    /// merging the sender's knowledge into the local matrix.
    ///
    /// # Panics
    ///
    /// Panics if the message is not currently deliverable; call
    /// [`CausalState::can_deliver`] first.
    pub fn deliver(&mut self, from: DomainServerId, pending: &PendingStamp) {
        dispatch_mut!(self, e => e.deliver(from, pending))
    }

    /// Appends a self-describing binary image of the whole causal state to
    /// `out`, suitable for crash-recovery journaling.
    ///
    /// The image includes every engine's bookkeeping (entry states,
    /// per-peer send states, per-peer sender images, and the hybrid
    /// engine's knowledge model), so a recovered server resumes its
    /// protocol — including a mid-batch [`Stamp::GroupNext`] group —
    /// exactly where it crashed.
    pub fn write_bytes(&self, out: &mut Vec<u8>) {
        dispatch!(self, e => e.write_bytes(out))
    }

    /// Reads an image written by [`CausalState::write_bytes`] from the
    /// front of `input`, returning the state and the bytes consumed.
    ///
    /// Returns `None` on truncated or invalid input.
    pub fn read_bytes(input: &[u8]) -> Option<(CausalState, usize)> {
        let (core, mode_byte, used) = EngineCore::read_bytes(input)?;
        let (engine, used) = match mode_byte {
            0 => (EngineKind::Full(FullEngine::from_core(core)), used),
            1 => (EngineKind::Updates(UpdatesEngine::from_core(core)), used),
            2 => (EngineKind::Reduced(ReducedEngine::from_core(core)), used),
            3 => {
                let (engine, tail) = HybridEngine::read_tail(core, &input[used..])?;
                (EngineKind::Hybrid(engine), used + tail)
            }
            _ => return None,
        };
        Some((CausalState { engine }, used))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stamp::UpdateEntry;

    fn d(i: u16) -> DomainServerId {
        DomainServerId::new(i)
    }

    fn pair(mode: StampMode) -> (CausalState, CausalState) {
        (
            CausalState::new(d(0), 2, mode),
            CausalState::new(d(1), 2, mode),
        )
    }

    fn single(c: &mut CausalState, to: DomainServerId) -> Stamp {
        c.stamp_send(to, Batching::Single)
    }

    fn grouped(c: &mut CausalState, to: DomainServerId) -> Stamp {
        c.stamp_send(to, Batching::Grouped)
    }

    #[test]
    fn simple_send_deliver_full() {
        let (mut a, mut b) = pair(StampMode::Full);
        let s = single(&mut a, d(1));
        let p = b.on_frame(d(0), s);
        assert!(b.can_deliver(d(0), &p));
        b.deliver(d(0), &p);
        assert_eq!(b.delivered_from(d(0)), 1);
        assert_eq!(b.sent().get(0, 1), 1);
    }

    #[test]
    fn simple_send_deliver_updates() {
        let (mut a, mut b) = pair(StampMode::Updates);
        let s = single(&mut a, d(1));
        assert!(s.is_delta());
        let p = b.on_frame(d(0), s);
        assert!(b.can_deliver(d(0), &p));
        b.deliver(d(0), &p);
        assert_eq!(b.delivered_from(d(0)), 1);
    }

    #[test]
    fn simple_send_deliver_every_mode() {
        for mode in StampMode::ALL {
            let (mut a, mut b) = pair(mode);
            let s = single(&mut a, d(1));
            assert!(!s.is_group_next(), "{mode}");
            let p = b.on_frame(d(0), s);
            assert!(b.can_deliver(d(0), &p), "{mode}");
            b.deliver(d(0), &p);
            assert_eq!(b.delivered_from(d(0)), 1, "{mode}");
            assert_eq!(b.mode(), mode);
        }
    }

    #[test]
    fn fifo_gap_is_postponed() {
        // a sends m1 then m2 to b; if m2's stamp is examined first it must
        // not be deliverable (its SENT[a][b] is 2, b expects 1).
        let (mut a, mut b) = pair(StampMode::Full);
        let s1 = single(&mut a, d(1));
        let s2 = single(&mut a, d(1));
        // Frames still arrive in FIFO order (on_frame), but the channel may
        // test deliverability in any order.
        let p1 = b.on_frame(d(0), s1);
        let p2 = b.on_frame(d(0), s2);
        assert!(!b.can_deliver(d(0), &p2));
        assert!(b.can_deliver(d(0), &p1));
        b.deliver(d(0), &p1);
        assert!(b.can_deliver(d(0), &p2));
        b.deliver(d(0), &p2);
    }

    #[test]
    fn transitive_three_servers() {
        // Classic triangle, in every mode: m_a: s0->s2 sent first,
        // m_b: s0->s1, then s1->s2. s2 must deliver m_a before m2 because
        // m_a precedes m_b (same sender order) and m_b precedes m2
        // (receive-then-send).
        for mode in StampMode::ALL {
            let mut s0 = CausalState::new(d(0), 3, mode);
            let mut s1 = CausalState::new(d(1), 3, mode);
            let mut s2 = CausalState::new(d(2), 3, mode);

            let st_a = single(&mut s0, d(2)); // m_a
            let st_b = single(&mut s0, d(1)); // m_b
            let p_b = s1.on_frame(d(0), st_b);
            assert!(s1.can_deliver(d(0), &p_b), "{mode}");
            s1.deliver(d(0), &p_b);
            let st_2 = single(&mut s1, d(2)); // m2, causally after m_a

            // m2 arrives at s2 before m_a: must wait.
            let p_2 = s2.on_frame(d(1), st_2);
            assert!(!s2.can_deliver(d(1), &p_2), "{mode}");
            let p_a = s2.on_frame(d(0), st_a);
            assert!(s2.can_deliver(d(0), &p_a), "{mode}");
            s2.deliver(d(0), &p_a);
            assert!(s2.can_deliver(d(1), &p_2), "{mode}");
            s2.deliver(d(1), &p_2);
            assert_eq!(s2.delivered_total(), 2, "{mode}");
        }
    }

    #[test]
    fn first_delta_carries_everything_later_deltas_shrink() {
        let mut a = CausalState::new(d(0), 4, StampMode::Updates);
        let s1 = single(&mut a, d(1));
        // First message to d1: one entry modified so far.
        assert_eq!(s1.entry_count(), 1);
        let s2 = single(&mut a, d(1));
        // Second message: only the (0,1) cell changed again.
        assert_eq!(s2.entry_count(), 1);
        // Send to a different peer: both prior modifications are news to d2.
        let s3 = single(&mut a, d(2));
        assert_eq!(s3.entry_count(), 2);
        // Now d1 already knows everything except the newest cells.
        let s4 = single(&mut a, d(1));
        // Changed since last send to d1: (0,2) from s3 and (0,1) from s4.
        assert_eq!(s4.entry_count(), 2);
    }

    #[test]
    fn delta_smaller_than_full_matrix() {
        let n = 20;
        let mut a = CausalState::new(d(0), n, StampMode::Updates);
        let mut b = CausalState::new(d(1), n, StampMode::Updates);
        let mut total_delta = 0usize;
        for _ in 0..50 {
            let s = single(&mut a, d(1));
            total_delta += s.encoded_len();
            let p = b.on_frame(d(0), s);
            b.deliver(d(0), &p);
        }
        let full = Stamp::Full(MatrixClock::new(n)).encoded_len() * 50;
        assert!(
            total_delta < full / 10,
            "deltas ({total_delta}B) should be far below full stamps ({full}B)"
        );
    }

    #[test]
    fn bounded_modes_smaller_than_full_matrix() {
        let n = 40;
        for mode in [StampMode::Reduced, StampMode::Hybrid] {
            let mut a = CausalState::new(d(0), n, mode);
            let mut b = CausalState::new(d(1), n, mode);
            let mut total = 0usize;
            for _ in 0..50 {
                let s = single(&mut a, d(1));
                total += s.encoded_len();
                let p = b.on_frame(d(0), s);
                b.deliver(d(0), &p);
            }
            let full = Stamp::Full(MatrixClock::new(n)).encoded_len() * 50;
            assert!(
                total * 10 < full,
                "{mode}: {total}B should be >=10x below full stamps ({full}B)"
            );
        }
    }

    #[test]
    #[should_panic(expected = "bypass the causal protocol")]
    fn self_send_rejected() {
        let mut a = CausalState::new(d(0), 2, StampMode::Full);
        let _ = a.stamp_send(d(0), Batching::Single);
    }

    #[test]
    #[should_panic(expected = "out of causal order")]
    fn deliver_out_of_order_panics() {
        let (mut a, mut b) = pair(StampMode::Full);
        let _s1 = single(&mut a, d(1));
        let s2 = single(&mut a, d(1));
        let p2 = b.on_frame(d(0), s2);
        b.deliver(d(0), &p2);
    }

    #[test]
    #[should_panic(expected = "does not match configured mode")]
    fn mode_mismatch_panics() {
        let (mut a, mut b) = pair(StampMode::Full);
        let _ = single(&mut a, d(1));
        let bogus = Stamp::Delta(Vec::new());
        let _ = b.on_frame(d(0), bogus);
    }

    #[test]
    #[should_panic(expected = "does not match configured mode")]
    fn reduced_stamp_rejected_by_updates_engine() {
        let mut b = CausalState::new(d(1), 2, StampMode::Updates);
        let bogus = Stamp::Reduced {
            row: vec![0; 2],
            col: vec![0; 2],
            extra: Vec::new(),
        };
        let _ = b.on_frame(d(0), bogus);
    }

    #[test]
    fn deprecated_batched_alias_still_groups() {
        let mut a = CausalState::new(d(0), 2, StampMode::Updates);
        #[allow(deprecated)]
        let first = a.stamp_send(d(1), Batching::Grouped);
        assert!(!first.is_group_next());
        #[allow(deprecated)]
        let second = a.stamp_send(d(1), Batching::Grouped);
        assert!(second.is_group_next());
    }

    #[test]
    fn causal_state_bytes_roundtrip() {
        // Build a state with non-trivial bookkeeping in every mode,
        // persist it, and check the recovered state behaves identically.
        for mode in StampMode::ALL {
            let mut a = CausalState::new(d(0), 3, mode);
            let mut b = CausalState::new(d(1), 3, mode);
            for _ in 0..3 {
                let s = single(&mut a, d(1));
                let p = b.on_frame(d(0), s);
                b.deliver(d(0), &p);
            }
            let _ = single(&mut a, d(2)); // leaves an in-flight stamp

            let mut buf = Vec::new();
            b.write_bytes(&mut buf);
            let (b2, used) = CausalState::read_bytes(&buf).expect("roundtrip");
            assert_eq!(used, buf.len(), "{mode}");
            assert_eq!(b2, b, "{mode}: persisted state must round-trip");

            // The recovered state keeps working: a's next stamp must still
            // reconstruct correctly against b2's persisted image of a.
            let mut b2 = b2;
            let s = single(&mut a, d(1));
            let p = b2.on_frame(d(0), s);
            assert!(b2.can_deliver(d(0), &p), "{mode}");
            b2.deliver(d(0), &p);
            assert_eq!(b2.delivered_from(d(0)), 4, "{mode}");
        }
    }

    #[test]
    fn causal_state_read_rejects_garbage() {
        assert!(CausalState::read_bytes(&[]).is_none());
        assert!(CausalState::read_bytes(&[1, 2, 3]).is_none());
        for mode in StampMode::ALL {
            let mut buf = Vec::new();
            CausalState::new(d(0), 2, mode).write_bytes(&mut buf);
            buf.truncate(buf.len() - 1);
            assert!(CausalState::read_bytes(&buf).is_none(), "{mode}");
        }
        // An unknown mode byte (offset 6: me u16 + n u32) must be rejected.
        let mut buf = Vec::new();
        CausalState::new(d(0), 2, StampMode::Full).write_bytes(&mut buf);
        buf[6] = 9;
        assert!(CausalState::read_bytes(&buf).is_none());
    }

    #[test]
    fn singleton_domain_is_valid_but_inert() {
        let s = CausalState::new(d(0), 1, StampMode::Full);
        assert_eq!(s.n(), 1);
        assert_eq!(s.delivered_total(), 0);
    }

    #[test]
    fn batched_first_send_is_never_a_continuation() {
        for mode in StampMode::ALL {
            let mut a = CausalState::new(d(0), 3, mode);
            let s = grouped(&mut a, d(1));
            assert!(
                !s.is_group_next(),
                "{mode}: first frame must carry a real stamp"
            );
        }
    }

    #[test]
    fn batched_burst_collapses_to_continuations() {
        for mode in StampMode::ALL {
            let mut a = CausalState::new(d(0), 3, mode);
            let mut b = CausalState::new(d(1), 3, mode);
            let mut wire_bytes = 0usize;
            for i in 0..32 {
                let s = grouped(&mut a, d(1));
                assert_eq!(s.is_group_next(), i > 0, "mode {mode}, frame {i}");
                wire_bytes += s.encoded_len();
                let p = b.on_frame(d(0), s);
                assert!(b.can_deliver(d(0), &p));
                b.deliver(d(0), &p);
            }
            assert_eq!(b.delivered_from(d(0)), 32);
            assert_eq!(b.sent().get(0, 1), 32);
            // Only the first frame pays stamp bytes.
            let first = match mode {
                StampMode::Full => Stamp::Full(MatrixClock::new(3)).encoded_len(),
                StampMode::Updates | StampMode::Hybrid => 4 + UpdateEntry::WIRE_LEN,
                StampMode::Reduced => 4 + 2 * 3 * 8 + 4,
            };
            assert_eq!(wire_bytes, first, "{mode}");
        }
    }

    #[test]
    fn continuation_reconstructs_exact_stamp() {
        // Drive an identical schedule through Single (reference) and
        // Grouped batching, and check the reconstructed matrices agree.
        for mode in StampMode::ALL {
            let mut a_ref = CausalState::new(d(0), 2, mode);
            let mut b_ref = CausalState::new(d(1), 2, mode);
            let mut a = CausalState::new(d(0), 2, mode);
            let mut b = CausalState::new(d(1), 2, mode);
            for _ in 0..5 {
                let sr = single(&mut a_ref, d(1));
                let pr = b_ref.on_frame(d(0), sr);
                let s = grouped(&mut a, d(1));
                let p = b.on_frame(d(0), s);
                assert_eq!(p.matrix(), pr.matrix(), "{mode}");
                b_ref.deliver(d(0), &pr);
                b.deliver(d(0), &p);
            }
            assert_eq!(b.sent(), b_ref.sent(), "{mode}");
        }
    }

    #[test]
    fn intervening_traffic_breaks_the_group() {
        for mode in StampMode::ALL {
            let mut a = CausalState::new(d(0), 3, mode);
            let mut b = CausalState::new(d(1), 3, mode);
            let s1 = grouped(&mut a, d(1));
            assert!(!s1.is_group_next(), "{mode}");
            let s2 = grouped(&mut a, d(1));
            assert!(s2.is_group_next(), "{mode}");
            // A send to another peer changes the matrix: the next frame to
            // d1 must fall back to a real stamp that conveys it.
            let _ = grouped(&mut a, d(2));
            let s3 = grouped(&mut a, d(1));
            assert!(!s3.is_group_next(), "{mode}");
            for s in [s1, s2, s3] {
                let p = b.on_frame(d(0), s);
                assert!(b.can_deliver(d(0), &p), "{mode}");
                b.deliver(d(0), &p);
            }
            assert_eq!(b.sent().get(0, 1), 3, "{mode}");
            assert_eq!(b.sent().get(0, 2), 1, "{mode}");
        }
    }

    #[test]
    fn delivery_breaks_the_group() {
        for mode in StampMode::ALL {
            let (mut a, mut b) = pair(mode);
            let s1 = grouped(&mut a, d(1));
            let p1 = b.on_frame(d(0), s1);
            b.deliver(d(0), &p1);
            // b replies; a delivers — a's matrix changed, so a's next frame
            // to b must be a real stamp again.
            let r = grouped(&mut b, d(0));
            let pr = a.on_frame(d(1), r);
            a.deliver(d(1), &pr);
            let s2 = grouped(&mut a, d(1));
            assert!(!s2.is_group_next(), "{mode}");
            let p2 = b.on_frame(d(0), s2);
            assert!(b.can_deliver(d(0), &p2), "{mode}");
            b.deliver(d(0), &p2);
        }
    }

    #[test]
    fn images_survive_persistence_mid_group() {
        // A receiver's per-sender image (needed for GroupNext) must
        // round-trip through write_bytes/read_bytes mid-group, whatever
        // the engine.
        for mode in StampMode::ALL {
            let mut a = CausalState::new(d(0), 2, mode);
            let mut b = CausalState::new(d(1), 2, mode);
            let s1 = grouped(&mut a, d(1));
            let p1 = b.on_frame(d(0), s1);
            b.deliver(d(0), &p1);

            let mut buf = Vec::new();
            b.write_bytes(&mut buf);
            let (mut b2, used) = CausalState::read_bytes(&buf).expect("roundtrip");
            assert_eq!(used, buf.len(), "{mode}");

            let s2 = grouped(&mut a, d(1));
            assert!(s2.is_group_next(), "{mode}");
            let p2 = b2.on_frame(d(0), s2);
            assert!(b2.can_deliver(d(0), &p2), "{mode}");
            b2.deliver(d(0), &p2);
            assert_eq!(b2.delivered_from(d(0)), 2, "{mode}");
        }
    }

    #[test]
    fn hybrid_sender_state_survives_persistence() {
        // The knowledge model is sender-side state: persist the *sender*
        // mid-conversation and check its next stamp is still both pruned
        // and sufficient.
        let mut a = CausalState::new(d(0), 3, StampMode::Hybrid);
        let mut b = CausalState::new(d(1), 3, StampMode::Hybrid);
        let s1 = a.stamp_send(d(1), Batching::Single);
        let p1 = b.on_frame(d(0), s1);
        b.deliver(d(0), &p1);
        let r1 = b.stamp_send(d(0), Batching::Single);
        let pr1 = a.on_frame(d(1), r1);
        a.deliver(d(1), &pr1);

        let mut buf = Vec::new();
        a.write_bytes(&mut buf);
        let (mut a2, used) = CausalState::read_bytes(&buf).expect("roundtrip");
        assert_eq!(used, buf.len());
        assert_eq!(a2, a);

        let s2 = a2.stamp_send(d(1), Batching::Single);
        // Steady-state echo ping: the recovered knowledge model still
        // prunes b's own row.
        assert_eq!(s2.entry_count(), 1, "recovered model must keep pruning");
        let p2 = b.on_frame(d(0), s2);
        assert!(b.can_deliver(d(0), &p2));
        b.deliver(d(0), &p2);
    }

    #[test]
    #[should_panic(expected = "no prior frame")]
    fn continuation_without_predecessor_panics() {
        let mut b = CausalState::new(d(1), 2, StampMode::Full);
        let _ = b.on_frame(d(0), Stamp::GroupNext);
    }
}
